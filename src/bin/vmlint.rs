//! `vmlint` — static verification and dataflow lint over COM program
//! images, with stable diagnostic codes and a deny mode for CI.

use com_stc::{compile_com, CompileOptions};
use com_verify::{lint_image, DiagCode, Diagnostic, Severity, VerifyError};
use com_workloads as workloads;
use std::process::ExitCode;

const USAGE: &str = "\
vmlint — static verifier and dataflow lint for COM program images

USAGE:
    vmlint [OPTIONS] [FILE...]

Each FILE is COM source text, compiled (with the standard library) and
linted. With no FILE and no target option, lints the built-in workloads
and the bare standard library — the CI sweep.

OPTIONS:
    --workloads   Lint every built-in benchmark workload
    --stdlib      Lint the standard library compiled on its own
    --deny        Exit non-zero on warning-severity lints (verify
                  errors always fail, with or without --deny)
    --fuel        Also print each method's worst-case fuel estimate (I001)
    --verbose     Also print info-severity lints (L001/L002)
    --help        Print this help

EXIT STATUS:
    0  every image verified; no denied diagnostics
    1  a verify error, or (with --deny) a warning-severity lint
    2  usage or I/O error

DIAGNOSTICS:
  Verify errors (always fatal — the image is refused at load time):
    V001  opcode not interned in the image
    V002  wild branch: target not provably in-bounds on a boundary
    V003  operand slot beyond the context geometry
    V004  constant operand beyond the method's constant table
    V005  trap handler (doesNotUnderstand:/badOperands:) with wrong arity
    V006  method declares more args than the context geometry holds
    V007  instruction word does not decode

  Lints (from the dataflow analyses; severity in brackets):
    L001  [info]     unreachable code: no path from the method entry
    L002  [info]     dead store: overwritten on every path before any read
    L003  [warning]  use of a context slot that may be uninitialised
    L004  [warning]  send with constant operands that provably traps
    I001  [info]     worst-case own-frame fuel estimate
";

struct Options {
    workloads: bool,
    stdlib: bool,
    deny: bool,
    fuel: bool,
    verbose: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        workloads: false,
        stdlib: false,
        deny: false,
        fuel: false,
        verbose: false,
        files: Vec::new(),
    };
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--workloads" => opts.workloads = true,
            "--stdlib" => opts.stdlib = true,
            "--deny" => opts.deny = true,
            "--fuel" => opts.fuel = true,
            "--verbose" | "-v" => opts.verbose = true,
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other}"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.workloads && !opts.stdlib && opts.files.is_empty() {
        opts.workloads = true;
        opts.stdlib = true;
    }
    Ok(Some(opts))
}

/// One target's outcome: the lint findings, or the verify rejection.
struct Report {
    name: String,
    methods: usize,
    outcome: Result<Vec<Diagnostic>, VerifyError>,
}

fn lint_source(name: &str, source: &str, options: CompileOptions) -> Result<Report, String> {
    let image = compile_com(source, options).map_err(|e| format!("{name}: compile error: {e}"))?;
    Ok(Report {
        name: name.to_string(),
        methods: image.methods.len(),
        outcome: lint_image(&image),
    })
}

fn shown(d: &Diagnostic, opts: &Options) -> bool {
    match d.severity() {
        Severity::Warning => true,
        Severity::Info if d.code == DiagCode::FuelBound => opts.fuel,
        Severity::Info => opts.verbose,
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("vmlint: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    let mut reports: Vec<Report> = Vec::new();
    if opts.stdlib {
        match lint_source("stdlib", "", CompileOptions::default()) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("vmlint: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if opts.workloads {
        for w in workloads::all() {
            match lint_source(
                &format!("workload {}", w.name),
                w.source,
                CompileOptions::default(),
            ) {
                Ok(r) => reports.push(r),
                Err(e) => {
                    eprintln!("vmlint: {e}");
                    return ExitCode::from(2);
                }
            }
        }
    }
    for file in &opts.files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vmlint: {file}: {e}");
                return ExitCode::from(2);
            }
        };
        match lint_source(file, &source, CompileOptions::default()) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("vmlint: {e}");
                return ExitCode::from(2);
            }
        }
    }

    let mut verify_errors = 0usize;
    let mut warnings = 0usize;
    let mut infos = 0usize;
    for report in &reports {
        match &report.outcome {
            Err(e) => {
                verify_errors += 1;
                println!("{}: error{e}", report.name);
            }
            Ok(diags) => {
                let mut header = false;
                for d in diags {
                    match d.severity() {
                        Severity::Warning => warnings += 1,
                        Severity::Info => infos += 1,
                    }
                    if shown(d, &opts) {
                        if !header {
                            println!("{} ({} methods):", report.name, report.methods);
                            header = true;
                        }
                        println!("  {d}");
                    }
                }
            }
        }
    }

    let images = reports.len();
    println!(
        "vmlint: {images} image{} checked, {verify_errors} verify error{}, \
         {warnings} warning{}, {infos} info finding{}",
        if images == 1 { "" } else { "s" },
        if verify_errors == 1 { "" } else { "s" },
        if warnings == 1 { "" } else { "s" },
        if infos == 1 { "" } else { "s" },
    );
    if verify_errors > 0 || (opts.deny && warnings > 0) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
