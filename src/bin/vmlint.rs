//! `vmlint` — static verification, dataflow lint, and whole-image
//! analysis over COM program images, with stable diagnostic codes, a
//! deny mode for CI, machine-readable output, and a facts artifact for
//! downstream consumers (ITLB pre-seeding, a future JIT).

use com_stc::{compile_com, CompileOptions};
use com_verify::{
    lint_image_with, DiagCode, Diagnostic, ImageFacts, LintConfig, Severity, VerifyError,
};
use com_workloads as workloads;
use std::process::ExitCode;

const USAGE: &str = "\
vmlint — static verifier, lint, and whole-image analysis for COM images

USAGE:
    vmlint [OPTIONS] [FILE...]

Each FILE is COM source text, compiled (with the standard library) and
linted. With no FILE and no target option, lints the built-in workloads
and the bare standard library — the CI sweep.

OPTIONS:
    --workloads          Lint every built-in benchmark workload (each
                         workload's entry selector seeds the L006 roots)
    --stdlib             Lint the standard library compiled on its own
    --entry NAME         Add an entry-point selector to the L006
                         call-graph roots (repeatable; applies to FILE
                         and stdlib targets)
    --deny               Exit 1 on warning-severity lints (verify
                         errors always exit 2, with or without --deny)
    --json               Emit findings as a JSON array (one object per
                         finding: image, code, severity, method,
                         method_index, offset, message) instead of text
    --emit-facts FILE    Write the whole-image analysis facts artifact
                         (per-site resolution, receiver sets, call
                         graph, fuel bounds) as JSON to FILE
    --fuel               Also print each method's fuel estimates
                         (I001 own-frame, I002 interprocedural)
    --verbose            Also print info-severity lints (L001/L002/L006)
    --help               Print this help

EXIT STATUS:
    0  every image verified; no denied diagnostics
    1  a warning-severity lint under --deny
    2  a verify error (the image would be refused at load time)
    3  usage or I/O error

DIAGNOSTICS:
  Verify errors (always fatal — the image is refused at load time):
    V001  opcode not interned in the image
    V002  wild branch: target not provably in-bounds on a boundary
    V003  operand slot beyond the context geometry
    V004  constant operand beyond the method's constant table
    V005  trap handler (doesNotUnderstand:/badOperands:) with wrong arity
    V006  method declares more args than the context geometry holds
    V007  instruction word does not decode

  Lints (dataflow + whole-image class inference; severity in brackets):
    L001  [info]     unreachable code: no path from the method entry
    L002  [info]     dead store: overwritten on every path before any read
    L003  [warning]  use of a context slot that may be uninitialised
    L004  [warning]  send with constant operands that provably traps
                     (suppressed only when the inferred receiver set
                     installs a badOperands: handler)
    L005  [warning]  send guaranteed to hit doesNotUnderstand: — no
                     inferred receiver class understands the selector
                     (suppressed when every receiver installs a handler)
    L006  [info]     method unreachable from any entry point or
                     engine-invoked trap handler (needs --entry or a
                     workload target)
    I001  [info]     worst-case own-frame fuel estimate
    I002  [info]     worst-case interprocedural fuel (call-graph
                     composition of the I001 bounds)
";

struct Options {
    workloads: bool,
    stdlib: bool,
    deny: bool,
    json: bool,
    fuel: bool,
    verbose: bool,
    entries: Vec<String>,
    emit_facts: Option<String>,
    files: Vec<String>,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut opts = Options {
        workloads: false,
        stdlib: false,
        deny: false,
        json: false,
        fuel: false,
        verbose: false,
        entries: Vec::new(),
        emit_facts: None,
        files: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => return Ok(None),
            "--workloads" => opts.workloads = true,
            "--stdlib" => opts.stdlib = true,
            "--deny" => opts.deny = true,
            "--json" => opts.json = true,
            "--fuel" => opts.fuel = true,
            "--verbose" | "-v" => opts.verbose = true,
            "--entry" => match args.next() {
                Some(name) => opts.entries.push(name),
                None => return Err("--entry needs a selector name".to_string()),
            },
            "--emit-facts" => match args.next() {
                Some(path) => opts.emit_facts = Some(path),
                None => return Err("--emit-facts needs a file path".to_string()),
            },
            other if other.starts_with('-') => {
                return Err(format!("unknown option: {other}"));
            }
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.workloads && !opts.stdlib && opts.files.is_empty() {
        opts.workloads = true;
        opts.stdlib = true;
    }
    Ok(Some(opts))
}

/// One target's outcome: the lint findings and analysis facts, or the
/// verify rejection.
struct Report {
    name: String,
    methods: usize,
    outcome: Result<(Vec<Diagnostic>, ImageFacts), VerifyError>,
}

fn lint_source(
    name: &str,
    source: &str,
    entries: &[String],
    options: CompileOptions,
) -> Result<Report, String> {
    let image = compile_com(source, options).map_err(|e| format!("{name}: compile error: {e}"))?;
    let config = LintConfig {
        entries: entries.to_vec(),
    };
    let outcome = lint_image_with(&image, &config).and_then(|diags| {
        let facts = ImageFacts::analyze_with(&image, entries)?;
        Ok((diags, facts))
    });
    Ok(Report {
        name: name.to_string(),
        methods: image.methods.len(),
        outcome,
    })
}

fn shown(d: &Diagnostic, opts: &Options) -> bool {
    match d.severity() {
        Severity::Warning => true,
        Severity::Info if matches!(d.code, DiagCode::FuelBound | DiagCode::InterFuel) => opts.fuel,
        Severity::Info => opts.verbose,
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn finding_json(image: &str, d: &Diagnostic) -> String {
    let severity = match d.severity() {
        Severity::Warning => "warning",
        Severity::Info => "info",
    };
    format!(
        "{{\"image\": {}, \"code\": \"{}\", \"severity\": \"{}\", \"method\": {}, \"method_index\": {}, \"offset\": {}, \"message\": {}}}",
        json_str(image),
        d.code.code(),
        severity,
        json_str(&d.method.name),
        d.method
            .index
            .map(|i| i.to_string())
            .unwrap_or_else(|| "null".to_string()),
        d.offset
            .map(|o| o.to_string())
            .unwrap_or_else(|| "null".to_string()),
        json_str(&d.message),
    )
}

fn verify_error_json(image: &str, e: &VerifyError) -> String {
    format!(
        "{{\"image\": {}, \"code\": \"{}\", \"severity\": \"error\", \"method\": {}, \"method_index\": {}, \"offset\": {}, \"message\": {}}}",
        json_str(image),
        e.kind.code(),
        json_str(&e.method.name),
        e.method
            .index
            .map(|i| i.to_string())
            .unwrap_or_else(|| "null".to_string()),
        e.offset
            .map(|o| o.to_string())
            .unwrap_or_else(|| "null".to_string()),
        json_str(&e.kind.to_string()),
    )
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("vmlint: {e}");
            eprint!("{USAGE}");
            return ExitCode::from(3);
        }
    };

    let mut reports: Vec<Report> = Vec::new();
    if opts.stdlib {
        match lint_source("stdlib", "", &opts.entries, CompileOptions::default()) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("vmlint: {e}");
                return ExitCode::from(3);
            }
        }
    }
    if opts.workloads {
        for w in workloads::all() {
            // The workload's own entry selector (plus any --entry) roots
            // its call graph.
            let mut entries = opts.entries.clone();
            entries.push(w.entry.to_string());
            match lint_source(
                &format!("workload {}", w.name),
                w.source,
                &entries,
                CompileOptions::default(),
            ) {
                Ok(r) => reports.push(r),
                Err(e) => {
                    eprintln!("vmlint: {e}");
                    return ExitCode::from(3);
                }
            }
        }
    }
    for file in &opts.files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("vmlint: {file}: {e}");
                return ExitCode::from(3);
            }
        };
        match lint_source(file, &source, &opts.entries, CompileOptions::default()) {
            Ok(r) => reports.push(r),
            Err(e) => {
                eprintln!("vmlint: {e}");
                return ExitCode::from(3);
            }
        }
    }

    // The facts artifact: one object per image, wrapped with a version.
    if let Some(path) = &opts.emit_facts {
        let mut out = String::from("{\n\"version\": 1,\n\"images\": [\n");
        let mut first = true;
        for report in &reports {
            if let Ok((_, facts)) = &report.outcome {
                if !first {
                    out.push_str(",\n");
                }
                first = false;
                out.push_str(&format!(
                    "{{\"name\": {}, \"facts\": {}}}",
                    json_str(&report.name),
                    facts.to_json()
                ));
            }
        }
        out.push_str("]\n}\n");
        if let Err(e) = std::fs::write(path, out) {
            eprintln!("vmlint: {path}: {e}");
            return ExitCode::from(3);
        }
    }

    let mut verify_errors = 0usize;
    let mut warnings = 0usize;
    let mut infos = 0usize;
    let mut total_sites = 0usize;
    let mut total_live = 0usize;
    let mut total_mono = 0usize;
    let mut json_findings: Vec<String> = Vec::new();
    for report in &reports {
        match &report.outcome {
            Err(e) => {
                verify_errors += 1;
                if opts.json {
                    json_findings.push(verify_error_json(&report.name, e));
                } else {
                    println!("{}: error{e}", report.name);
                }
            }
            Ok((diags, facts)) => {
                total_sites += facts.summary.sites;
                total_live += facts.summary.live_sites;
                total_mono += facts.summary.monomorphic;
                let mut header = false;
                for d in diags {
                    match d.severity() {
                        Severity::Warning => warnings += 1,
                        Severity::Info => infos += 1,
                    }
                    if opts.json {
                        if shown(d, &opts) || d.severity() == Severity::Warning {
                            json_findings.push(finding_json(&report.name, d));
                        }
                    } else if shown(d, &opts) {
                        if !header {
                            println!("{} ({} methods):", report.name, report.methods);
                            header = true;
                        }
                        println!("  {d}");
                    }
                }
            }
        }
    }

    if opts.json {
        println!("[");
        for (i, f) in json_findings.iter().enumerate() {
            println!(
                "  {f}{}",
                if i + 1 < json_findings.len() { "," } else { "" }
            );
        }
        println!("]");
    } else {
        let images = reports.len();
        let pct = if total_live > 0 {
            100.0 * total_mono as f64 / total_live as f64
        } else {
            0.0
        };
        println!(
            "vmlint: {images} image{} checked, {verify_errors} verify error{}, \
             {warnings} warning{}, {infos} info finding{}; \
             {total_mono}/{total_live} live send sites monomorphic ({pct:.1}%, \
             {total_sites} total)",
            if images == 1 { "" } else { "s" },
            if verify_errors == 1 { "" } else { "s" },
            if warnings == 1 { "" } else { "s" },
            if infos == 1 { "" } else { "s" },
        );
    }
    if verify_errors > 0 {
        ExitCode::from(2)
    } else if opts.deny && warnings > 0 {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
