//! **com-machine** — a reproduction of Dally & Kajiya, *An Object Oriented
//! Architecture* (ISCA 1985): the Caltech Object Machine (COM), its Fith
//! Machine precursor, a mini-Smalltalk compiler for both, and the paper's
//! full experimental apparatus.
//!
//! This facade crate re-exports every subsystem; see `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! The embedding API is the [`vm`] facade: compile once into a shared
//! immutable image, then spawn any number of cheap, isolated tenant
//! sessions with typed calls and resumable execution.
//!
//! ```
//! use com_machine::vm::Vm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let vm = Vm::new("class SmallInteger method double ^self + self end end")?;
//! let mut session = vm.session()?;
//! assert_eq!(session.call::<i64>("double", 21)?, 42);
//! # Ok(())
//! # }
//! ```
//!
//! The engine layer stays available for instrument-everything work:
//!
//! ```
//! use com_machine::stc::{compile_com, CompileOptions};
//! use com_machine::core::{Machine, MachineConfig};
//! use com_machine::mem::Word;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = compile_com(
//!     "class SmallInteger method double ^self + self end end",
//!     CompileOptions::default(),
//! )?;
//! let mut machine = Machine::new(MachineConfig::default());
//! machine.load(&image)?;
//! let out = machine.send("double", Word::Int(21), &[], 100_000)?;
//! assert_eq!(out.result, Word::Int(42));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Set-associative cache simulation (ITLB, ATLB, instruction cache).
pub use com_cache as cache;
/// The COM machine: registers, context cache, pipeline model.
pub use com_core as core;
/// The Fith stack-machine baseline (§5).
pub use com_fith as fith;
/// Floating point virtual addresses (§2.2).
pub use com_fpa as fpa;
/// The COM instruction set architecture (§3.3–3.5).
pub use com_isa as isa;
/// Tagged memory, segment tables, three-level addressing, GC.
pub use com_mem as mem;
/// Classes, message dictionaries, method lookup, the ITLB (§2.1).
pub use com_obj as obj;
/// The mini-Smalltalk compiler with COM and Fith backends (§4).
pub use com_stc as stc;
/// Instruction traces and cache replay (§5 methodology).
pub use com_trace as trace;
/// Static image verification and dataflow lint (the `vmlint` CLI).
pub use com_verify as verify;
/// The embedding facade: shared images, multi-tenant sessions, typed
/// calls, resumable execution, cooperative scheduling.
pub use com_vm as vm;
/// The benchmark workloads.
pub use com_workloads as workloads;
