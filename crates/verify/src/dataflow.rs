//! Reusable dataflow analyses over a method [`Cfg`]:
//! reaching definitions, liveness, and constant-slot propagation.
//!
//! The analysis domain is the method's current-context operand slots
//! `0..=MAX_SLOT` (30 slots), compactly represented as a [`SlotSet`]
//! bitmask. Next-context slots (a callee frame under construction) are
//! outside the domain: writes there never define a current slot, reads
//! there never use one.

use com_core::{data_op, MachineError};
use com_isa::{CodeObject, Instr, Opcode, Operand, PrimOp};
use com_mem::{ClassId, Word};

use crate::cfg::Cfg;
use crate::check::MAX_SLOT;

/// Number of slots in the analysis domain.
pub const N_SLOTS: usize = MAX_SLOT as usize + 1;

/// A set of current-context operand slots, bit `o` = slot `o`.
pub type SlotSet = u32;

/// The slots defined when a method activation begins: slot 0 is the
/// result pointer (arg0), slot 1 the receiver (arg1), and slots
/// `2..=n_args` any further declared arguments. The send microcode
/// always writes context words arg0..arg2 — even a unary send duplicates
/// the receiver into arg2 — so slots 0..=2 are entry-defined for every
/// method.
pub fn param_slots(n_args: u8) -> SlotSet {
    let top = n_args.clamp(2, MAX_SLOT);
    (1u32 << (top + 1)) - 1
}

/// The current-context slot this instruction writes, if any. Returning
/// instructions write the caller's frame through the result pointer, not
/// a current slot, so they define nothing here.
pub fn def_slot(instr: Instr) -> Option<u8> {
    if instr.returns() {
        return None;
    }
    match instr.destination() {
        Some(Operand::Cur(o)) if o <= MAX_SLOT => Some(o),
        _ => None,
    }
}

/// The current-context slots this instruction definitely reads: the B/C
/// sources, plus A for `at:put:` (the updated object) — the reads the
/// interpreter performs unconditionally, used for the use-before-def
/// lint.
pub fn use_slots(instr: Instr) -> SlotSet {
    let mut set = 0;
    let mut add = |op: Operand| {
        if let Operand::Cur(o) = op {
            if o <= MAX_SLOT {
                set |= 1 << o;
            }
        }
    };
    for s in instr.sources() {
        add(s);
    }
    if let Some([a, _, _]) = instr.operands() {
        if instr.opcode() == Opcode::ATPUT {
            add(a);
        }
    }
    set
}

/// Like [`use_slots`] but over-approximating for liveness: the A operand
/// also counts as a read whenever it is not the written destination (the
/// return bit's result pointer, a jump's placeholder, a store target).
/// More uses can only make more slots live, so the dead-store lint stays
/// conservative.
pub fn live_use_slots(instr: Instr) -> SlotSet {
    let mut set = use_slots(instr);
    if let Some([Operand::Cur(o), _, _]) = instr.operands() {
        if def_slot(instr) != Some(o) && o <= MAX_SLOT {
            set |= 1 << o;
        }
    }
    set
}

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

/// One definition site: a slot and the defining instruction — or the
/// method entry (`pc == None`), which "defines" every slot: parameters
/// with their argument values, the rest as *uninitialised*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefSite {
    /// The slot defined.
    pub slot: u8,
    /// The defining instruction, or `None` for the entry pseudo-def.
    pub pc: Option<usize>,
}

/// Reaching definitions: which [`DefSite`]s may reach each block entry.
///
/// Entry pseudo-defs make undefinedness first-class: the entry def of a
/// non-parameter slot reaching a use means some path reads the slot
/// before any write — exactly the interpreter's `UninitOperand` trap,
/// found statically.
#[derive(Debug, Clone)]
pub struct ReachingDefs {
    /// All definition sites: one entry pseudo-def per slot (ids
    /// `0..N_SLOTS`), then the real defs in pc order.
    pub sites: Vec<DefSite>,
    /// Per-block bitset over `sites` ids: definitions reaching the block
    /// entry.
    pub reach_in: Vec<Vec<u64>>,
}

fn set_bit(v: &mut [u64], i: usize) {
    v[i / 64] |= 1 << (i % 64);
}

fn get_bit(v: &[u64], i: usize) -> bool {
    v[i / 64] & (1 << (i % 64)) != 0
}

impl ReachingDefs {
    /// Runs the analysis over a verified method body.
    pub fn build(code: &CodeObject, cfg: &Cfg) -> ReachingDefs {
        let mut sites: Vec<DefSite> = (0..N_SLOTS as u8)
            .map(|slot| DefSite { slot, pc: None })
            .collect();
        for (pc, instr) in code.instrs.iter().enumerate() {
            if let Some(slot) = def_slot(*instr) {
                sites.push(DefSite { slot, pc: Some(pc) });
            }
        }
        let words = sites.len().div_ceil(64);
        let nb = cfg.blocks.len();
        // Per-block gen/kill: walk the block; a def of slot s kills every
        // other site of s and generates its own.
        let mut gen = vec![vec![0u64; words]; nb];
        let mut killed_slots = vec![0 as SlotSet; nb];
        for (bi, b) in cfg.blocks.iter().enumerate() {
            for pc in b.start..b.end {
                if let Some(slot) = def_slot(code.instrs[pc]) {
                    // Kill previous gens of this slot within the block.
                    for (si, site) in sites.iter().enumerate() {
                        if site.slot == slot {
                            gen[bi][si / 64] &= !(1 << (si % 64));
                        }
                    }
                    let id = sites
                        .iter()
                        .position(|s| s.pc == Some(pc))
                        .expect("site recorded above");
                    set_bit(&mut gen[bi], id);
                    killed_slots[bi] |= 1 << slot;
                }
            }
        }
        let mut reach_in = vec![vec![0u64; words]; nb];
        let mut reach_out = vec![vec![0u64; words]; nb];
        // Entry block starts from the pseudo-defs.
        let mut entry = vec![0u64; words];
        for i in 0..N_SLOTS {
            set_bit(&mut entry, i);
        }
        let mut work: Vec<usize> = (0..nb).collect();
        while let Some(bi) = work.pop() {
            let mut inn = if bi == 0 {
                entry.clone()
            } else {
                vec![0u64; words]
            };
            for &p in &cfg.blocks[bi].preds {
                for (w, pw) in inn.iter_mut().zip(&reach_out[p]) {
                    *w |= pw;
                }
            }
            let mut out = inn.clone();
            for (si, site) in sites.iter().enumerate() {
                if killed_slots[bi] & (1 << site.slot) != 0 {
                    out[si / 64] &= !(1 << (si % 64));
                }
            }
            for (w, gw) in out.iter_mut().zip(&gen[bi]) {
                *w |= gw;
            }
            if inn != reach_in[bi] || out != reach_out[bi] {
                reach_in[bi] = inn;
                reach_out[bi] = out;
                for &s in &cfg.blocks[bi].succs {
                    if !work.contains(&s) {
                        work.push(s);
                    }
                }
            }
        }
        ReachingDefs { sites, reach_in }
    }

    /// Per-instruction set of slots whose **entry pseudo-def still
    /// reaches** — slots that may be read uninitialised at that point.
    /// Parameter slots are excluded (their entry def carries a value).
    pub fn maybe_uninit(&self, code: &CodeObject, cfg: &Cfg) -> Vec<SlotSet> {
        let params = param_slots(code.n_args);
        let mut out = vec![0 as SlotSet; code.instrs.len()];
        for (bi, b) in cfg.blocks.iter().enumerate() {
            // Entry pseudo-defs occupy site ids 0..N_SLOTS.
            let mut uninit: SlotSet = 0;
            for slot in 0..N_SLOTS {
                if get_bit(&self.reach_in[bi], slot) {
                    uninit |= 1 << slot;
                }
            }
            uninit &= !params;
            for (pc, slot_out) in out.iter_mut().enumerate().take(b.end).skip(b.start) {
                *slot_out = uninit;
                if let Some(slot) = def_slot(code.instrs[pc]) {
                    uninit &= !(1 << slot);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

/// Backward liveness over current-context slots.
#[derive(Debug, Clone)]
pub struct Liveness {
    /// Slots live at each block entry.
    pub live_in: Vec<SlotSet>,
    /// Slots live at each block exit.
    pub live_out: Vec<SlotSet>,
}

impl Liveness {
    /// Runs the analysis over a verified method body.
    pub fn build(code: &CodeObject, cfg: &Cfg) -> Liveness {
        let nb = cfg.blocks.len();
        let mut live_in = vec![0 as SlotSet; nb];
        let mut live_out = vec![0 as SlotSet; nb];
        let mut work: Vec<usize> = (0..nb).collect();
        while let Some(bi) = work.pop() {
            let mut out = 0;
            for &s in &cfg.blocks[bi].succs {
                out |= live_in[s];
            }
            let mut live = out;
            for pc in (cfg.blocks[bi].start..cfg.blocks[bi].end).rev() {
                let instr = code.instrs[pc];
                if let Some(slot) = def_slot(instr) {
                    live &= !(1 << slot);
                }
                live |= live_use_slots(instr);
            }
            if live != live_in[bi] || out != live_out[bi] {
                live_in[bi] = live;
                live_out[bi] = out;
                for &p in &cfg.blocks[bi].preds {
                    if !work.contains(&p) {
                        work.push(p);
                    }
                }
            }
        }
        Liveness { live_in, live_out }
    }

    /// Per-instruction liveness *after* the instruction executes.
    pub fn live_after(&self, code: &CodeObject, cfg: &Cfg) -> Vec<SlotSet> {
        let mut out = vec![0 as SlotSet; code.instrs.len()];
        for (bi, b) in cfg.blocks.iter().enumerate() {
            let mut live = self.live_out[bi];
            for pc in (b.start..b.end).rev() {
                out[pc] = live;
                let instr = code.instrs[pc];
                if let Some(slot) = def_slot(instr) {
                    live &= !(1 << slot);
                }
                live |= live_use_slots(instr);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// Constant-slot propagation
// ---------------------------------------------------------------------

/// The per-slot constant lattice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstVal {
    /// Not yet visited (⊤).
    Unknown,
    /// Provably always this value at this point.
    Const(Word),
    /// Takes more than one value, or is not statically trackable (⊥).
    Varying,
}

impl ConstVal {
    fn meet(self, other: ConstVal) -> ConstVal {
        match (self, other) {
            (ConstVal::Unknown, x) | (x, ConstVal::Unknown) => x,
            (ConstVal::Const(a), ConstVal::Const(b)) if a == b => ConstVal::Const(a),
            _ => ConstVal::Varying,
        }
    }
}

/// Resolves the primitive a send will execute: given the receiver's class
/// and the selector, the [`PrimOp`] — or `None` when the send dispatches
/// to a defined method (or the resolution is unknown), which makes the
/// result untrackable. [`crate::lint_image`] builds this from the image's
/// class table, treating any selector with a defined method anywhere in
/// the image as unresolvable (a conservative override check).
pub type PrimResolver<'a> = dyn Fn(ClassId, Opcode) -> Option<PrimOp> + 'a;

/// Constant-slot propagation, with always-trapping sends as a byproduct.
#[derive(Debug, Clone)]
pub struct ConstSlots {
    /// Per-instruction slot values *before* the instruction executes.
    pub before: Vec<[ConstVal; N_SLOTS]>,
    /// Pure-data sends whose operands are provably constant and whose
    /// evaluation provably traps, with the trap each will raise.
    pub trap_sites: Vec<(usize, MachineError)>,
}

impl ConstSlots {
    /// Runs the analysis. `resolve` decides which sends execute a
    /// primitive function unit (see [`PrimResolver`]).
    pub fn build(code: &CodeObject, cfg: &Cfg, resolve: &PrimResolver) -> ConstSlots {
        let nb = cfg.blocks.len();
        let mut block_in = vec![[ConstVal::Unknown; N_SLOTS]; nb];
        if nb > 0 {
            // Entry: every slot untracked (parameters are runtime values).
            block_in[0] = [ConstVal::Varying; N_SLOTS];
        }
        let mut block_out = vec![[ConstVal::Unknown; N_SLOTS]; nb];
        let mut work: Vec<usize> = (0..nb).collect();
        while let Some(bi) = work.pop() {
            let mut state = block_in[bi];
            for pc in cfg.blocks[bi].start..cfg.blocks[bi].end {
                Self::transfer(code, pc, &mut state, resolve, None);
            }
            if state != block_out[bi] {
                block_out[bi] = state;
                for &s in &cfg.blocks[bi].succs {
                    let mut met = block_in[s];
                    for (m, v) in met.iter_mut().zip(state.iter()) {
                        *m = m.meet(*v);
                    }
                    if met != block_in[s] {
                        block_in[s] = met;
                        if !work.contains(&s) {
                            work.push(s);
                        }
                    }
                }
            }
        }
        // Final pass: record per-instruction states and trap sites.
        let mut before = vec![[ConstVal::Varying; N_SLOTS]; code.instrs.len()];
        let mut trap_sites = Vec::new();
        for (bi, b) in cfg.blocks.iter().enumerate() {
            let mut state = block_in[bi];
            for (pc, slot_before) in before.iter_mut().enumerate().take(b.end).skip(b.start) {
                *slot_before = state;
                Self::transfer(code, pc, &mut state, resolve, Some(&mut trap_sites));
            }
        }
        ConstSlots { before, trap_sites }
    }

    fn operand_val(code: &CodeObject, state: &[ConstVal; N_SLOTS], op: Operand) -> ConstVal {
        match op {
            Operand::Const(k) => match code.consts.get(k as usize) {
                Some(w) => ConstVal::Const(*w),
                None => ConstVal::Varying,
            },
            Operand::Cur(o) if (o as usize) < N_SLOTS => state[o as usize],
            _ => ConstVal::Varying,
        }
    }

    /// One instruction's effect on the slot state. Anything that is not a
    /// pure three-address data operation (calls, memory operations,
    /// allocation) may run arbitrary code — a callee can reach this frame
    /// through passed pointers — so it havocs every slot.
    fn transfer(
        code: &CodeObject,
        pc: usize,
        state: &mut [ConstVal; N_SLOTS],
        resolve: &PrimResolver,
        mut traps: Option<&mut Vec<(usize, MachineError)>>,
    ) {
        let instr = code.instrs[pc];
        let pure = instr
            .operands()
            .and_then(|[_, b, _]| {
                // Receiver class decides dispatch; it must be a known
                // constant for the send to resolve statically.
                let ConstVal::Const(bw) = Self::operand_val(code, state, b) else {
                    return None;
                };
                let class = bw.primitive_class()?;
                let prim = resolve(class, instr.opcode())?;
                prim.is_pure_data().then_some((prim, bw))
            })
            .and_then(|(prim, bw)| {
                let [_, _, c] = instr.operands()?;
                let ConstVal::Const(cw) = Self::operand_val(code, state, c) else {
                    return None;
                };
                Some((prim, bw, cw))
            });
        match pure {
            Some((prim, bw, cw)) => {
                let result = data_op(prim, instr.opcode(), bw, cw);
                if let (Err(e), Some(traps)) = (&result, traps.as_mut()) {
                    traps.push((pc, e.clone()));
                }
                if let Some(slot) = def_slot(instr) {
                    state[slot as usize] = match result {
                        Ok(w) => ConstVal::Const(w),
                        Err(_) => ConstVal::Varying,
                    };
                }
            }
            None => {
                let havoc = match instr.operands() {
                    // Jumps transfer control and write nothing.
                    Some(_) if instr.is_jump() => false,
                    // A three-address op we could not resolve to a pure
                    // primitive: it may be a call or a memory op.
                    Some(_) => true,
                    // Zero-address sends always call.
                    None => true,
                };
                if havoc {
                    *state = [ConstVal::Varying; N_SLOTS];
                } else if let Some(slot) = def_slot(instr) {
                    state[slot as usize] = ConstVal::Varying;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::Assembler;
    use com_obj::{install_standard_primitives, ClassTable};

    fn resolver(classes: &ClassTable) -> impl Fn(ClassId, Opcode) -> Option<PrimOp> + '_ {
        move |class, op| match com_obj::lookup_method(classes, class, op).method {
            Some(com_obj::MethodRef::Primitive(p)) => Some(p),
            _ => None,
        }
    }

    fn classes() -> ClassTable {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        t
    }

    #[test]
    fn params_and_defs_and_uses() {
        // arg0 (result pointer), arg1 (receiver) and arg2 are written by
        // the send microcode whatever the declared arity.
        assert_eq!(param_slots(0), 0b111);
        assert_eq!(param_slots(1), 0b111);
        assert_eq!(param_slots(2), 0b111);
        assert_eq!(param_slots(4), 0b11111);
        let add = Instr::three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(2),
        )
        .unwrap();
        assert_eq!(def_slot(add), Some(4));
        assert_eq!(use_slots(add), 0b110);
        let store = Instr::three(
            Opcode::ATPUT,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Cur(2),
        )
        .unwrap();
        assert_eq!(def_slot(store), None);
        assert_eq!(use_slots(store), 0b1110, "at:put: reads its A operand");
        let ret = Instr::three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
            true,
        )
        .unwrap();
        assert_eq!(def_slot(ret), None, "returning instructions define nothing");
        assert_eq!(live_use_slots(ret) & 1, 1, "the result pointer stays live");
    }

    #[test]
    fn maybe_uninit_tracks_paths() {
        // if c1 { c4 := c1 }; use c4  — c4 may be uninit on the false path.
        let mut asm = Assembler::new("t", 2);
        let end = asm.label();
        asm.jump_if(Operand::Cur(1), end); // 0: skip the def when true
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap(); // 1
        asm.bind(end);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap(); // 2
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        let rd = ReachingDefs::build(&code, &cfg);
        let uninit = rd.maybe_uninit(&code, &cfg);
        assert_ne!(uninit[2] & (1 << 4), 0, "slot 4 may be uninit at the use");
        // Parameters are never maybe-uninit.
        assert_eq!(uninit[2] & 0b11, 0);
        // After an unconditional def, the slot is definitely initialised.
        let mut asm = Assembler::new("t", 2);
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        let uninit = ReachingDefs::build(&code, &cfg).maybe_uninit(&code, &cfg);
        assert_eq!(uninit[1] & (1 << 4), 0);
    }

    #[test]
    fn liveness_sees_overwrites() {
        // c4 := c1; c4 := c2; ret c4 — the first store is dead.
        let mut asm = Assembler::new("t", 3);
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        let live = Liveness::build(&code, &cfg).live_after(&code, &cfg);
        assert_eq!(live[0] & (1 << 4), 0, "first store is dead");
        assert_ne!(live[1] & (1 << 4), 0, "second store is read by the ret");
    }

    #[test]
    fn const_prop_folds_and_finds_traps() {
        // c4 := 6 * 7; c5 := 1 / 0  — the division provably traps.
        let mut asm = Assembler::new("t", 1);
        let k6 = asm.intern_const(Word::Int(6));
        let k7 = asm.intern_const(Word::Int(7));
        let k1 = asm.intern_const(Word::Int(1));
        let k0 = asm.intern_const(Word::Int(0));
        asm.emit_three(
            Opcode::MUL,
            Operand::Cur(4),
            Operand::Const(k6),
            Operand::Const(k7),
        )
        .unwrap();
        asm.emit_three(
            Opcode::DIV,
            Operand::Cur(5),
            Operand::Const(k1),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        let classes = classes();
        let r = resolver(&classes);
        let cs = ConstSlots::build(&code, &cfg, &r);
        assert_eq!(cs.before[1][4], ConstVal::Const(Word::Int(42)));
        assert_eq!(cs.trap_sites.len(), 1);
        assert_eq!(cs.trap_sites[0].0, 1);
        // A call havocs everything.
        let mut asm = Assembler::new("t", 1);
        let k6 = asm.intern_const(Word::Int(6));
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Const(k6),
            Operand::Const(k6),
        )
        .unwrap();
        asm.emit_zero(Opcode(100), 0, false).unwrap(); // user send
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        let cs = ConstSlots::build(&code, &cfg, &r);
        assert_eq!(cs.before[1][4], ConstVal::Const(Word::Int(6)));
        assert_eq!(cs.before[2][4], ConstVal::Varying);
    }
}
