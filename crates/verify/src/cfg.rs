//! Control-flow graph construction over verified method bodies.
//!
//! Blocks are maximal straight-line instruction runs; edges follow the
//! machine's actual control transfers — conditional jumps (with
//! statically decided conditions folded to a single edge), the return
//! bit, and fall-through. Built only on code that already passed
//! [`verify_code`](crate::verify_code), so every jump target is known to
//! land in-bounds on an instruction boundary.

use com_isa::{CodeObject, Instr, Operand};
use com_obj::AtomTable;

use crate::check::jump_target;

/// One basic block: the instruction range `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index of the block.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block indices (within-method edges).
    pub succs: Vec<usize>,
    /// Predecessor block indices.
    pub preds: Vec<usize>,
    /// Whether the block can leave the method: its terminator returns, or
    /// execution falls off the end of the body (a typed trap at runtime).
    pub exits: bool,
}

/// A method's control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cfg {
    /// The blocks, ordered by `start`; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// The block index containing each instruction.
    pub block_of: Vec<usize>,
}

/// How the instruction at a given pc transfers control.
enum Flow {
    /// Fall through to `pc + 1`.
    Fall,
    /// Conditional jump; `cond` is the statically known condition, if any.
    Jump { target: usize, cond: Option<bool> },
    /// Return to the caller (the return bit).
    Ret,
}

fn flow(code: &CodeObject, pc: usize, instr: Instr) -> Flow {
    // The return bit dominates: a returning instruction leaves the method
    // whatever else it computed.
    if instr.returns() {
        return Flow::Ret;
    }
    match jump_target(code, pc, instr) {
        Some(target) => Flow::Jump {
            target,
            cond: static_cond(code, instr),
        },
        None => Flow::Fall,
    }
}

/// The statically known truth value of a jump's condition operand: a
/// constant integer (non-zero is true) or a boolean atom. The assembler
/// encodes unconditional jumps as conditional jumps on the constant
/// `true`, so folding these is what makes `ifTrue:`/loop lowerings
/// produce precise graphs.
fn static_cond(code: &CodeObject, instr: Instr) -> Option<bool> {
    let [_, b, _] = instr.operands()?;
    let Operand::Const(k) = b else { return None };
    match code.consts.get(k as usize)? {
        com_mem::Word::Int(i) => Some(*i != 0),
        com_mem::Word::Atom(a) => AtomTable::truthiness(*a),
        _ => None,
    }
}

impl Cfg {
    /// Builds the graph for a verified method body.
    pub fn build(code: &CodeObject) -> Cfg {
        let n = code.instrs.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        // Leaders: entry, every jump target, every instruction after a
        // control transfer.
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, instr) in code.instrs.iter().enumerate() {
            match flow(code, pc, *instr) {
                Flow::Jump { target, .. } => {
                    leader[target] = true;
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Flow::Ret => {
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Flow::Fall => {}
            }
        }
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0;
        for (pc, &lead) in leader.iter().enumerate() {
            if pc > start && lead {
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: Vec::new(),
                    preds: Vec::new(),
                    exits: false,
                });
                start = pc;
            }
        }
        blocks.push(Block {
            start,
            end: n,
            succs: Vec::new(),
            preds: Vec::new(),
            exits: false,
        });
        for (bi, b) in blocks.iter().enumerate() {
            for slot in &mut block_of[b.start..b.end] {
                *slot = bi;
            }
        }
        // Edges from each block's terminator.
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (bi, b) in blocks.iter().enumerate() {
            let last = b.end - 1;
            match flow(code, last, code.instrs[last]) {
                Flow::Ret => {}
                Flow::Fall => {
                    if b.end < n {
                        edges.push((bi, block_of[b.end]));
                    }
                }
                Flow::Jump { target, cond } => {
                    if cond != Some(false) {
                        edges.push((bi, block_of[target]));
                    }
                    if cond != Some(true) && b.end < n {
                        edges.push((bi, block_of[b.end]));
                    }
                }
            }
        }
        for (from, to) in edges {
            if !blocks[from].succs.contains(&to) {
                blocks[from].succs.push(to);
                blocks[to].preds.push(from);
            }
        }
        // Exit classification: return terminators, and untaken
        // fall-through off the end of the body.
        for b in &mut blocks {
            let last = b.end - 1;
            b.exits = match flow(code, last, code.instrs[last]) {
                Flow::Ret => true,
                Flow::Fall => b.end == n,
                Flow::Jump { cond, .. } => cond != Some(true) && b.end == n,
            };
        }
        Cfg { blocks, block_of }
    }

    /// Which blocks are reachable from the entry.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        if self.blocks.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Whether the reachable part of the graph contains a cycle
    /// (three-colour DFS). Cyclic methods have no static fuel bound.
    pub fn has_cycle(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum C {
            White,
            Grey,
            Black,
        }
        if self.blocks.is_empty() {
            return false;
        }
        let mut colour = vec![C::White; self.blocks.len()];
        // Iterative DFS with an explicit phase marker per frame.
        let mut stack = vec![(0usize, false)];
        while let Some((b, done)) = stack.pop() {
            if done {
                colour[b] = C::Black;
                continue;
            }
            if colour[b] == C::Black {
                continue;
            }
            colour[b] = C::Grey;
            stack.push((b, true));
            for &s in &self.blocks[b].succs {
                match colour[s] {
                    C::Grey => return true,
                    C::White => stack.push((s, false)),
                    C::Black => {}
                }
            }
        }
        false
    }

    /// The longest entry-to-exit path measured in instructions — the
    /// method's worst-case own-frame fuel (callee work excluded). `None`
    /// when the graph is cyclic (no static bound).
    pub fn fuel_bound(&self) -> Option<u64> {
        if self.blocks.is_empty() {
            return Some(0);
        }
        if self.has_cycle() {
            return None;
        }
        // Longest path over the DAG, memoised over blocks.
        fn longest(cfg: &Cfg, b: usize, memo: &mut [Option<u64>]) -> u64 {
            if let Some(v) = memo[b] {
                return v;
            }
            let own = (cfg.blocks[b].end - cfg.blocks[b].start) as u64;
            let rest = cfg.blocks[b]
                .succs
                .iter()
                .map(|&s| longest(cfg, s, memo))
                .max()
                .unwrap_or(0);
            memo[b] = Some(own + rest);
            own + rest
        }
        let mut memo = vec![None; self.blocks.len()];
        Some(longest(self, 0, &mut memo))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::{Assembler, Opcode};
    use com_mem::Word;

    fn add(asm: &mut Assembler) {
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(3),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
    }

    fn ret(asm: &mut Assembler) {
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut asm = Assembler::new("t", 1);
        add(&mut asm);
        add(&mut asm);
        ret(&mut asm);
        let cfg = Cfg::build(&asm.finish().unwrap());
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].exits);
        assert!(cfg.blocks[0].succs.is_empty());
        assert_eq!(cfg.fuel_bound(), Some(3));
    }

    #[test]
    fn diamond_joins_and_bounds() {
        // if c3 then [add] else [add add]; join; ret
        let mut asm = Assembler::new("t", 1);
        let then_l = asm.label();
        let end_l = asm.label();
        asm.jump_if(Operand::Cur(3), then_l); // 0
        add(&mut asm); // 1 (else)
        add(&mut asm); // 2
        asm.jump(end_l); // 3 (unconditional)
        asm.bind(then_l);
        add(&mut asm); // 4
        asm.bind(end_l);
        ret(&mut asm); // 5
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 4);
        // Entry branches both ways.
        assert_eq!(cfg.blocks[0].succs.len(), 2);
        // The unconditional jump has exactly one successor: the fold of
        // the constant-true condition.
        let jb = cfg.block_of[3];
        assert_eq!(cfg.blocks[jb].succs, vec![cfg.block_of[5]]);
        assert!(!cfg.has_cycle());
        // Worst case: 0,1,2,3,5 = 5 instructions.
        assert_eq!(cfg.fuel_bound(), Some(5));
        assert!(cfg.reachable().iter().all(|r| *r));
    }

    #[test]
    fn loops_cycle_and_are_unbounded() {
        let mut asm = Assembler::new("t", 1);
        let top = asm.label();
        asm.bind(top);
        add(&mut asm);
        asm.jump_if(Operand::Cur(3), top);
        ret(&mut asm);
        let cfg = Cfg::build(&asm.finish().unwrap());
        assert!(cfg.has_cycle());
        assert_eq!(cfg.fuel_bound(), None);
    }

    #[test]
    fn code_after_unconditional_jump_is_unreachable() {
        let mut asm = Assembler::new("t", 1);
        let end = asm.label();
        asm.jump(end); // 0: unconditional
        add(&mut asm); // 1: dead
        asm.bind(end);
        ret(&mut asm); // 2
        let cfg = Cfg::build(&asm.finish().unwrap());
        let reach = cfg.reachable();
        assert!(!reach[cfg.block_of[1]]);
        assert!(reach[cfg.block_of[2]]);
    }

    #[test]
    fn fall_off_end_is_an_exit() {
        let mut asm = Assembler::new("t", 1);
        add(&mut asm);
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].exits);
    }

    #[test]
    fn empty_body_builds_an_empty_graph() {
        let code = Assembler::new("t", 1).finish().unwrap();
        let cfg = Cfg::build(&code);
        assert!(cfg.blocks.is_empty());
        assert_eq!(cfg.fuel_bound(), Some(0));
        assert!(!cfg.has_cycle());
    }

    #[test]
    fn integer_conditions_fold() {
        let mut asm = Assembler::new("t", 1);
        let end = asm.label();
        let k = asm.intern_const(Word::Int(0)); // constant false
        asm.jump_if(Operand::Const(k), end); // never taken
        add(&mut asm);
        asm.bind(end);
        ret(&mut asm);
        let code = asm.finish().unwrap();
        let cfg = Cfg::build(&code);
        // The jump folds to fall-through only.
        assert_eq!(cfg.blocks[0].succs, vec![cfg.block_of[1]]);
    }
}
