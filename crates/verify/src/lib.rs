//! Static image verification and dataflow lint for COM program images.
//!
//! The machine (Dally & Kajiya's Caltech Object Machine) defends itself at
//! runtime with tagged words and typed traps; this crate moves the whole
//! class of *structurally* malformed images from runtime to load time. It
//! provides:
//!
//! - a structural **verifier** ([`verify_image`], [`verify_code`],
//!   [`verify_words`]) that checks every compiled method before the image
//!   is allowed near an engine: opcodes interned, branch targets
//!   in-bounds on instruction boundaries, operand slots inside the context
//!   geometry, constants resolvable, trap-handler arity correct. Failures
//!   are typed [`VerifyError`]s with method/offset provenance and stable
//!   `V00x` codes — never panics;
//! - reusable **dataflow analyses** over verified bodies ([`Cfg`],
//!   [`ReachingDefs`], [`Liveness`], [`ConstSlots`]);
//! - the **lints** behind the `vmlint` CLI ([`lint_image`]), with stable
//!   `L00x`/`I001` diagnostic codes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfg;
pub mod check;
pub mod dataflow;
mod error;
pub mod lint;

pub use cfg::{Block, Cfg};
pub use check::{verify_code, verify_image, verify_words, MAX_SLOT};
pub use dataflow::{ConstSlots, ConstVal, DefSite, Liveness, PrimResolver, ReachingDefs};
pub use error::{Provenance, VerifyError, VerifyErrorKind};
pub use lint::{lint_code, lint_image, DiagCode, Diagnostic, Severity};
