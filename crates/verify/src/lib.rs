//! Static image verification and dataflow lint for COM program images.
//!
//! The machine (Dally & Kajiya's Caltech Object Machine) defends itself at
//! runtime with tagged words and typed traps; this crate moves the whole
//! class of *structurally* malformed images from runtime to load time. It
//! provides:
//!
//! - a structural **verifier** ([`verify_image`], [`verify_code`],
//!   [`verify_words`]) that checks every compiled method before the image
//!   is allowed near an engine: opcodes interned, branch targets
//!   in-bounds on instruction boundaries, operand slots inside the context
//!   geometry, constants resolvable, trap-handler arity correct. Failures
//!   are typed [`VerifyError`]s with method/offset provenance and stable
//!   `V00x` codes — never panics;
//! - reusable **dataflow analyses** over verified bodies ([`Cfg`],
//!   [`ReachingDefs`], [`Liveness`], [`ConstSlots`]);
//! - the **lints** behind the `vmlint` CLI ([`lint_image`]), with stable
//!   `L00x`/`I00x` diagnostic codes;
//! - the **interprocedural tier**: whole-image class inference
//!   ([`infer_image`]) over the closed class world, a call graph with
//!   every send site classified monomorphic / polymorphic / unresolvable
//!   ([`CallGraph`]), and a machine-readable facts artifact
//!   ([`ImageFacts`]) that downstream consumers (the engine's ITLB
//!   pre-seeding, a future JIT) take as their input contract.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod callgraph;
pub mod cfg;
pub mod check;
pub mod dataflow;
mod error;
pub mod facts;
pub mod infer;
pub mod lint;

pub use callgraph::{CallGraph, FuelBound};
pub use cfg::{Block, Cfg};
pub use check::{verify_code, verify_image, verify_words, MAX_SLOT};
pub use dataflow::{ConstSlots, ConstVal, DefSite, Liveness, PrimResolver, ReachingDefs};
pub use error::{Provenance, VerifyError, VerifyErrorKind};
pub use facts::ImageFacts;
pub use infer::{
    infer_image, ClassSet, ClassUniverse, Inference, Site, SiteKind, StaticResolver, Target,
};
pub use lint::{
    lint_code, lint_image, lint_image_with, DiagCode, Diagnostic, LintConfig, Severity,
};
