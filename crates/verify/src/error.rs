//! The typed rejection: what was malformed, in which method, where.

use com_isa::{IsaError, Opcode};

/// Which compiled method a finding is about.
///
/// Carried by every [`VerifyError`] and lint
/// [`Diagnostic`](crate::Diagnostic) so a rejection names the offending
/// method instead of surfacing as a later interpreter trap with no
/// provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Index into [`ProgramImage::methods`](com_core::ProgramImage), when
    /// the finding came from whole-image verification (absent for a bare
    /// [`CodeObject`](com_isa::CodeObject) check).
    pub index: Option<usize>,
    /// The code object's diagnostic name (`Class ≫ selector`).
    pub name: String,
}

impl core::fmt::Display for Provenance {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.index {
            Some(i) => write!(f, "method #{i} `{}`", self.name),
            None => write!(f, "method `{}`", self.name),
        }
    }
}

/// The malformed-image classes the structural verifier rejects.
#[derive(Debug, Clone, PartialEq)]
pub enum VerifyErrorKind {
    /// The opcode field names a selector the image never interned: no
    /// class could possibly answer it, and the interpreter would raise an
    /// unprovenanced trap (or worse) on reaching it.
    UnknownOpcode(Opcode),
    /// A jump whose target cannot be statically shown to land in-bounds
    /// on an instruction boundary: a non-constant or non-integer
    /// displacement, a negative magnitude, a zero-address (dynamic) jump,
    /// or a resolved target outside the method body.
    WildBranch {
        /// What made the branch unverifiable.
        reason: &'static str,
        /// The resolved target instruction index, when one was computable.
        target: Option<i64>,
    },
    /// An operand names a context slot beyond the fixed context geometry
    /// (offset > [`MAX_SLOT`](crate::MAX_SLOT)): encodable in the operand
    /// field but guaranteed to trap at runtime.
    SlotOutOfRange {
        /// Which operand field (`'A'`, `'B'` or `'C'`).
        operand: char,
        /// The out-of-range operand offset.
        offset: u8,
    },
    /// A constant-mode operand indexes past the method's constant table.
    ConstOutOfRange {
        /// Which operand field (`'A'`, `'B'` or `'C'`).
        operand: char,
        /// The out-of-range constant index.
        index: u8,
        /// The method's constant-table length.
        table_len: usize,
    },
    /// A trap handler (`doesNotUnderstand:` / `badOperands:`) was
    /// declared with the wrong arity: the machine reifies the failed send
    /// into exactly one argument, so handlers take receiver + message.
    BadHandlerArity {
        /// The handler selector name.
        selector: &'static str,
        /// The declared arity (receiver included).
        n_args: u8,
    },
    /// The method declares more arguments than the context geometry can
    /// hold.
    TooManyArgs {
        /// The declared arity (receiver included).
        n_args: u8,
    },
    /// An instruction word does not decode at all (used by the word-level
    /// entry point [`verify_words`](crate::verify_words); compiled
    /// [`Instr`](com_isa::Instr) streams are decodable by construction).
    Undecodable(IsaError),
}

impl VerifyErrorKind {
    /// The stable diagnostic code (`V001`…`V007`) tools match on.
    pub fn code(&self) -> &'static str {
        match self {
            VerifyErrorKind::UnknownOpcode(_) => "V001",
            VerifyErrorKind::WildBranch { .. } => "V002",
            VerifyErrorKind::SlotOutOfRange { .. } => "V003",
            VerifyErrorKind::ConstOutOfRange { .. } => "V004",
            VerifyErrorKind::BadHandlerArity { .. } => "V005",
            VerifyErrorKind::TooManyArgs { .. } => "V006",
            VerifyErrorKind::Undecodable(_) => "V007",
        }
    }
}

impl core::fmt::Display for VerifyErrorKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            VerifyErrorKind::UnknownOpcode(op) => {
                write!(f, "opcode {op} (#{}) is not interned in the image", op.0)
            }
            VerifyErrorKind::WildBranch { reason, target } => match target {
                Some(t) => write!(f, "wild branch to instruction {t}: {reason}"),
                None => write!(f, "wild branch: {reason}"),
            },
            VerifyErrorKind::SlotOutOfRange { operand, offset } => {
                write!(
                    f,
                    "operand {operand} names context slot {offset}, beyond the context geometry"
                )
            }
            VerifyErrorKind::ConstOutOfRange {
                operand,
                index,
                table_len,
            } => {
                write!(
                    f,
                    "operand {operand} names constant {index}, beyond the {table_len}-entry table"
                )
            }
            VerifyErrorKind::BadHandlerArity { selector, n_args } => {
                write!(
                    f,
                    "trap handler {selector} declares {n_args} args, expected 2 (receiver + message)"
                )
            }
            VerifyErrorKind::TooManyArgs { n_args } => {
                write!(f, "{n_args} declared args exceed the context geometry")
            }
            VerifyErrorKind::Undecodable(e) => write!(f, "undecodable instruction word: {e}"),
        }
    }
}

/// A typed load-time rejection of a malformed method, with provenance.
///
/// Returned by [`verify_image`](crate::verify_image) and friends instead
/// of letting the interpreter trap (or panic) when it eventually reaches
/// the malformed instruction. The [`Error::source`](std::error::Error)
/// chain reaches the underlying [`IsaError`] for undecodable words.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    /// The offending method.
    pub method: Provenance,
    /// The offending instruction index within the method, when the fault
    /// is instruction-level (method-level faults such as arity carry
    /// `None`).
    pub offset: Option<usize>,
    /// What was malformed.
    pub kind: VerifyErrorKind,
}

impl VerifyError {
    /// The stable diagnostic code of the underlying kind (`V001`…`V007`).
    pub fn code(&self) -> &'static str {
        self.kind.code()
    }
}

impl core::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.kind.code(), self.method)?;
        if let Some(pc) = self.offset {
            write!(f, ", instruction {pc}")?;
        }
        write!(f, ": {}", self.kind)
    }
}

impl std::error::Error for VerifyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            VerifyErrorKind::Undecodable(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_code_provenance_and_offset() {
        let e = VerifyError {
            method: Provenance {
                index: Some(3),
                name: "Foo ≫ bar:".into(),
            },
            offset: Some(7),
            kind: VerifyErrorKind::UnknownOpcode(Opcode(40)),
        };
        let text = e.to_string();
        assert!(text.contains("V001"), "{text}");
        assert!(text.contains("method #3"), "{text}");
        assert!(text.contains("Foo ≫ bar:"), "{text}");
        assert!(text.contains("instruction 7"), "{text}");
        assert_eq!(e.code(), "V001");
    }

    #[test]
    fn undecodable_chains_to_the_isa_error() {
        use std::error::Error;
        let e = VerifyError {
            method: Provenance {
                index: None,
                name: "t".into(),
            },
            offset: Some(0),
            kind: VerifyErrorKind::Undecodable(IsaError::BadEncoding(1 << 36)),
        };
        assert!(e.source().is_some());
        // Non-wrapping kinds are the root cause.
        let e = VerifyError {
            method: Provenance {
                index: None,
                name: "t".into(),
            },
            offset: None,
            kind: VerifyErrorKind::TooManyArgs { n_args: 99 },
        };
        assert!(e.source().is_none());
    }

    #[test]
    fn codes_are_stable_and_distinct() {
        let kinds = [
            VerifyErrorKind::UnknownOpcode(Opcode(40)),
            VerifyErrorKind::WildBranch {
                reason: "x",
                target: None,
            },
            VerifyErrorKind::SlotOutOfRange {
                operand: 'B',
                offset: 63,
            },
            VerifyErrorKind::ConstOutOfRange {
                operand: 'C',
                index: 5,
                table_len: 2,
            },
            VerifyErrorKind::BadHandlerArity {
                selector: "doesNotUnderstand:",
                n_args: 1,
            },
            VerifyErrorKind::TooManyArgs { n_args: 31 },
            VerifyErrorKind::Undecodable(IsaError::BadEncoding(0)),
        ];
        let codes: Vec<_> = kinds.iter().map(|k| k.code()).collect();
        let mut unique = codes.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), codes.len(), "duplicate codes: {codes:?}");
        assert_eq!(codes[0], "V001");
    }
}
