//! The whole-image call graph and its interprocedural consequences:
//! method reachability (the L006 lint's substrate) and worst-case
//! interprocedural fuel (I002 — the call-graph composition of the
//! per-method I001 bounds).
//!
//! Edges come from the inference's site table: a method calls every
//! defined method any of its sites may resolve to, every
//! `doesNotUnderstand:` handler an unresolvable site may fall back to,
//! and every `badOperands:` handler a trappable primitive site may
//! divert into. Trap handlers are additionally *roots* — the engine
//! invokes them without any send site naming them.

use com_core::ProgramImage;
use com_obj::TrapSelector;

use crate::cfg::Cfg;
use crate::infer::{Inference, SiteKind, StaticResolver};

/// A worst-case instruction budget, or the admission that none exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuelBound {
    /// Execution from this method's entry retires at most this many
    /// instructions, across all calls it makes.
    Bounded(u64),
    /// No static bound: a CFG cycle, call-graph recursion, or an
    /// unbounded callee.
    Unbounded,
}

/// The image's call graph over defined methods, with per-method
/// interprocedural fuel bounds.
#[derive(Debug)]
pub struct CallGraph {
    /// Per-method callee lists (defined methods and trap handlers),
    /// deduplicated.
    pub edges: Vec<Vec<usize>>,
    /// Per-method interprocedural fuel.
    pub fuel: Vec<FuelBound>,
    /// Methods that are trap handlers (engine-invoked roots).
    pub handler_roots: Vec<usize>,
    degraded: bool,
}

impl CallGraph {
    /// Builds the call graph from an image and its inference.
    pub fn build(image: &ProgramImage, inference: &Inference) -> CallGraph {
        let n = image.methods.len();
        // Trap handlers are engine-invoked: roots regardless of sites.
        let mut handler_roots = Vec::new();
        let trap_sels: Vec<_> = TrapSelector::ALL
            .iter()
            .filter_map(|t| image.opcodes.get(t.name()))
            .collect();
        for (i, m) in image.methods.iter().enumerate() {
            if trap_sels.contains(&m.selector) {
                handler_roots.push(i);
            }
        }
        if inference.degraded {
            return CallGraph {
                edges: vec![Vec::new(); n],
                fuel: vec![FuelBound::Unbounded; n],
                handler_roots,
                degraded: true,
            };
        }
        let resolver = StaticResolver::new(image, &inference.universe);
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); n];
        // Per-method, per-pc callee lists for the fuel computation.
        let mut site_callees: Vec<Vec<Vec<usize>>> = vec![Vec::new(); n];
        for m in 0..n {
            let sites = inference.sites_of(m);
            let mut per_pc = Vec::with_capacity(sites.len());
            for site in sites {
                let mut callees: Vec<usize> = Vec::new();
                if site.kind != SiteKind::Dead {
                    for t in &site.methods {
                        if !callees.contains(t) {
                            callees.push(*t);
                        }
                    }
                    // A trappable primitive may divert into a
                    // `badOperands:` handler on the receiver's chain.
                    if !site.prims.is_empty() {
                        for rc in inference.universe.classes_in(&site.receivers) {
                            if let Some(h) = resolver.handler(rc, TrapSelector::BadOperands) {
                                if !callees.contains(&h) {
                                    callees.push(h);
                                }
                            }
                        }
                    }
                }
                for c in &callees {
                    if !edges[m].contains(c) {
                        edges[m].push(*c);
                    }
                }
                per_pc.push(callees);
            }
            site_callees[m] = per_pc;
        }

        // Interprocedural fuel: per-site cost = 1 + worst callee, block
        // weight = sum of site costs, method fuel = longest weighted
        // entry-to-exit path. Recursion and CFG cycles are unbounded.
        let mut fuel: Vec<Option<FuelBound>> = vec![None; n];
        let mut on_stack = vec![false; n];
        for m in 0..n {
            method_fuel(m, image, &site_callees, &mut fuel, &mut on_stack);
        }
        CallGraph {
            edges,
            fuel: fuel
                .into_iter()
                .map(|f| f.unwrap_or(FuelBound::Unbounded))
                .collect(),
            handler_roots,
            degraded: false,
        }
    }

    /// Which methods are reachable from `roots` (always including the
    /// engine-invoked trap handlers). On a degraded inference everything
    /// is considered reachable — no false unreachability claims.
    pub fn reachable_from(&self, roots: &[usize]) -> Vec<bool> {
        let n = self.edges.len();
        if self.degraded {
            return vec![true; n];
        }
        let mut seen = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        for r in roots.iter().chain(self.handler_roots.iter()) {
            if *r < n && !seen[*r] {
                seen[*r] = true;
                stack.push(*r);
            }
        }
        while let Some(m) = stack.pop() {
            for c in &self.edges[m] {
                if !seen[*c] {
                    seen[*c] = true;
                    stack.push(*c);
                }
            }
        }
        seen
    }

    /// Whether the graph was built from a degraded inference.
    pub fn degraded(&self) -> bool {
        self.degraded
    }
}

fn method_fuel(
    m: usize,
    image: &ProgramImage,
    site_callees: &[Vec<Vec<usize>>],
    fuel: &mut Vec<Option<FuelBound>>,
    on_stack: &mut Vec<bool>,
) -> FuelBound {
    if let Some(f) = fuel[m] {
        return f;
    }
    if on_stack[m] {
        // Call-graph recursion: no bound. (Leave the memo unset so the
        // other members of the cycle recompute to the same answer.)
        return FuelBound::Unbounded;
    }
    on_stack[m] = true;
    let code = &image.methods[m].code;
    let cfg = Cfg::build(code);
    let result = if cfg.has_cycle() {
        FuelBound::Unbounded
    } else {
        // Per-pc costs first (callees resolved recursively).
        let mut costs: Vec<Option<u64>> = Vec::with_capacity(code.instrs.len());
        let mut unbounded = false;
        for pc in 0..code.instrs.len() {
            let mut cost: u64 = 1;
            for callee in site_callees[m].get(pc).map(|v| v.as_slice()).unwrap_or(&[]) {
                match method_fuel(*callee, image, site_callees, fuel, on_stack) {
                    FuelBound::Bounded(f) => cost = cost.max(1 + f),
                    FuelBound::Unbounded => {
                        unbounded = true;
                        break;
                    }
                }
            }
            if unbounded {
                break;
            }
            costs.push(Some(cost));
        }
        if unbounded {
            FuelBound::Unbounded
        } else {
            // Longest weighted path over the acyclic block graph.
            fn longest(
                cfg: &Cfg,
                b: usize,
                costs: &[Option<u64>],
                memo: &mut [Option<u64>],
            ) -> u64 {
                if let Some(v) = memo[b] {
                    return v;
                }
                let own: u64 = (cfg.blocks[b].start..cfg.blocks[b].end)
                    .map(|pc| costs[pc].unwrap_or(1))
                    .sum();
                let rest = cfg.blocks[b]
                    .succs
                    .iter()
                    .map(|&s| longest(cfg, s, costs, memo))
                    .max()
                    .unwrap_or(0);
                memo[b] = Some(own + rest);
                own + rest
            }
            if cfg.blocks.is_empty() {
                FuelBound::Bounded(0)
            } else {
                let mut memo = vec![None; cfg.blocks.len()];
                FuelBound::Bounded(longest(&cfg, 0, &costs, &mut memo))
            }
        }
    };
    on_stack[m] = false;
    fuel[m] = Some(result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::infer::infer_image;
    use com_isa::{Assembler, Opcode, Operand};
    use com_mem::ClassId;

    fn ret_move(asm: &mut Assembler, src: u8) {
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(src),
            Operand::Cur(src),
        )
        .unwrap();
    }

    fn leaf_and_caller() -> ProgramImage {
        let mut img = ProgramImage::empty();
        let leaf = img.opcodes.intern("leaf");
        let caller = img.opcodes.intern("caller");
        let mut asm = Assembler::new("SmallInteger ≫ leaf", 1);
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        ret_move(&mut asm, 2);
        img.add_method(ClassId::SMALL_INT, leaf, asm.finish().unwrap());
        let mut asm = Assembler::new("SmallInteger ≫ caller", 1);
        asm.emit_three(
            Opcode(leaf.0),
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        ret_move(&mut asm, 2);
        img.add_method(ClassId::SMALL_INT, caller, asm.finish().unwrap());
        img
    }

    #[test]
    fn call_edges_and_composed_fuel() {
        let img = leaf_and_caller();
        let inf = infer_image(&img).unwrap();
        let cg = CallGraph::build(&img, &inf);
        assert_eq!(cg.edges[1], vec![0]);
        assert!(cg.edges[0].is_empty());
        // leaf: 2 instructions. caller: call (1 + 2) + ret (1) = 4.
        assert_eq!(cg.fuel[0], FuelBound::Bounded(2));
        assert_eq!(cg.fuel[1], FuelBound::Bounded(4));
    }

    #[test]
    fn recursion_is_unbounded() {
        let mut img = ProgramImage::empty();
        let looped = img.opcodes.intern("looped");
        let mut asm = Assembler::new("SmallInteger ≫ looped", 1);
        asm.emit_three(
            Opcode(looped.0),
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        ret_move(&mut asm, 2);
        img.add_method(ClassId::SMALL_INT, looped, asm.finish().unwrap());
        let inf = infer_image(&img).unwrap();
        let cg = CallGraph::build(&img, &inf);
        assert_eq!(cg.fuel[0], FuelBound::Unbounded);
    }

    #[test]
    fn reachability_from_entry_roots() {
        let img = leaf_and_caller();
        let inf = infer_image(&img).unwrap();
        let cg = CallGraph::build(&img, &inf);
        let from_caller = cg.reachable_from(&[1]);
        assert_eq!(from_caller, vec![true, true]);
        let from_leaf = cg.reachable_from(&[0]);
        assert_eq!(from_leaf, vec![true, false]);
    }

    #[test]
    fn trap_handlers_are_roots() {
        let mut img = leaf_and_caller();
        let dnu = img.opcodes.intern("doesNotUnderstand:");
        let mut asm = Assembler::new("Object ≫ doesNotUnderstand:", 2);
        ret_move(&mut asm, 1);
        img.add_method(com_obj::ClassTable::OBJECT, dnu, asm.finish().unwrap());
        let inf = infer_image(&img).unwrap();
        let cg = CallGraph::build(&img, &inf);
        assert_eq!(cg.handler_roots, vec![2]);
        // Even with no explicit roots the handler stays reachable.
        let seen = cg.reachable_from(&[]);
        assert!(seen[2]);
    }
}
