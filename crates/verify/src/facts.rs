//! The machine-readable facts artifact: everything the interprocedural
//! tier proved about an image, packaged as the input contract for
//! downstream consumers — the engine's ITLB pre-seeding today, a
//! baseline JIT tomorrow (`vmlint --emit-facts`).
//!
//! The JSON layout (`version` 1) is:
//!
//! ```json
//! {
//!   "version": 1,
//!   "degraded": false,
//!   "classes": [ {"id": 1, "name": "SmallInteger"}, ... ],
//!   "methods": [ {"index": 0, "name": "...", "class": "...",
//!                 "selector": "...", "fuel": 12, "may_write_ctx": false,
//!                 "reachable": true}, ... ],
//!   "call_graph": [ [1, 2], ... ],
//!   "sites": [ {"method": 0, "pc": 0, "selector": "+",
//!               "kind": "monomorphic", "receivers": ["SmallInteger"],
//!               "prims": ["Add"], "methods": []}, ... ],
//!   "fresh": [ {"method": 0, "pc": 3, "class": "Point",
//!               "escapes": false}, ... ],
//!   "summary": {"sites": 0, "live_sites": 0, "monomorphic": 0,
//!               "polymorphic": 0, "unresolvable": 0, "dead": 0,
//!               "resolved_pct": 0.0, "preseed_keys": 0}
//! }
//! ```
//!
//! `fuel` is `null` when unbounded; a ⊤ receiver set is abbreviated
//! `["*"]`.

use std::collections::HashMap;

use com_core::ProgramImage;
use com_mem::ClassId;
use com_obj::ItlbKey;

use crate::callgraph::{CallGraph, FuelBound};
use crate::error::VerifyError;
use crate::infer::{infer_image, Inference, SiteKind};

/// Per-method presentation metadata captured at analysis time, so the
/// facts stay self-contained once the image is gone.
#[derive(Debug, Clone)]
pub struct MethodMeta {
    /// The method's display name (`Class ≫ selector`).
    pub name: String,
    /// The owning class's name.
    pub class: String,
    /// The selector's name.
    pub selector: String,
}

/// Aggregate counters over the site table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FactsSummary {
    /// Total send sites (every instruction of every method).
    pub sites: usize,
    /// Sites whose receiver set is non-empty.
    pub live_sites: usize,
    /// Live sites with exactly one resolved target.
    pub monomorphic: usize,
    /// Live sites with several understood targets.
    pub polymorphic: usize,
    /// Live sites where some receiver does not understand the selector.
    pub unresolvable: usize,
    /// Provably never-executed sites.
    pub dead: usize,
    /// `monomorphic / live_sites`, as a percentage (0 when no live
    /// sites or the inference degraded).
    pub resolved_pct: f64,
}

/// The whole-image analysis bundle: inference, call graph, reachability
/// from the chosen entry roots, and presentation metadata.
#[derive(Debug)]
pub struct ImageFacts {
    /// The class inference.
    pub inference: Inference,
    /// The call graph with interprocedural fuel.
    pub callgraph: CallGraph,
    /// Per-method reachability from the entry roots (plus the
    /// engine-invoked trap handlers).
    pub reachable: Vec<bool>,
    /// The method indices used as entry roots.
    pub entry_roots: Vec<usize>,
    /// Per-method display metadata.
    pub methods: Vec<MethodMeta>,
    /// Class id → name, captured from the universe.
    pub class_names: HashMap<ClassId, String>,
    /// Selector opcode value → name.
    pub selector_names: HashMap<u16, String>,
    /// Aggregates.
    pub summary: FactsSummary,
}

impl ImageFacts {
    /// Analyzes an image with every method as an entry root (no
    /// unreachability claims — use [`ImageFacts::analyze_with`] to
    /// narrow the roots).
    ///
    /// # Errors
    ///
    /// The image's first [`VerifyError`], if it fails verification.
    pub fn analyze(image: &ProgramImage) -> Result<ImageFacts, VerifyError> {
        Self::analyze_with(image, &[])
    }

    /// Analyzes an image with the given entry selectors as call-graph
    /// roots. An empty list means "every method is a root". Trap
    /// handlers are always roots — the engine invokes them directly.
    ///
    /// # Errors
    ///
    /// The image's first [`VerifyError`], if it fails verification.
    pub fn analyze_with(
        image: &ProgramImage,
        entries: &[String],
    ) -> Result<ImageFacts, VerifyError> {
        let inference = infer_image(image)?;
        let callgraph = CallGraph::build(image, &inference);
        let entry_roots: Vec<usize> = if entries.is_empty() {
            (0..image.methods.len()).collect()
        } else {
            let sels: Vec<_> = entries
                .iter()
                .filter_map(|e| image.opcodes.get(e))
                .collect();
            image
                .methods
                .iter()
                .enumerate()
                .filter(|(_, m)| sels.contains(&m.selector))
                .map(|(i, _)| i)
                .collect()
        };
        let reachable = callgraph.reachable_from(&entry_roots);
        let methods = image
            .methods
            .iter()
            .map(|m| MethodMeta {
                name: m.code.name.clone(),
                class: inference
                    .universe
                    .classes
                    .get(m.class)
                    .map(|c| c.name.clone())
                    .unwrap_or_else(|| format!("class#{}", m.class.0)),
                selector: image.opcodes.name(m.selector).unwrap_or("?").to_string(),
            })
            .collect();
        let class_names: HashMap<ClassId, String> = inference
            .universe
            .classes
            .iter()
            .map(|(id, info)| (id, info.name.clone()))
            .collect();
        let selector_names: HashMap<u16, String> = image
            .opcodes
            .iter()
            .map(|(op, name)| (op.0, name.to_string()))
            .collect();
        let summary = summarize(&inference);
        Ok(ImageFacts {
            inference,
            callgraph,
            reachable,
            entry_roots,
            methods,
            class_names,
            selector_names,
            summary,
        })
    }

    /// The ITLB keys every statically monomorphic site can pre-seed —
    /// (selector, receiver class[, argument class]) triples whose lookup
    /// outcome is already known. Sites with wide key products are
    /// skipped (pre-seeding them would flood the cache).
    pub fn preseed_keys(&self) -> Vec<ItlbKey> {
        const MAX_KEYS_PER_SITE: usize = 8;
        let u = &self.inference.universe;
        let mut keys: Vec<ItlbKey> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for site in &self.inference.sites {
            if site.kind != SiteKind::Monomorphic {
                continue;
            }
            let op = com_isa::Opcode(site.selector.0);
            let receivers: Vec<ClassId> = u.classes_in(&site.receivers).collect();
            match &site.arg {
                Some(arg) => {
                    let args: Vec<ClassId> = u.classes_in(arg).collect();
                    if receivers.len() * args.len() > MAX_KEYS_PER_SITE {
                        continue;
                    }
                    for r in &receivers {
                        for a in &args {
                            let key = ItlbKey::binary(op, *r, *a);
                            if seen.insert(key) {
                                keys.push(key);
                            }
                        }
                    }
                }
                None => {
                    if receivers.len() > MAX_KEYS_PER_SITE {
                        continue;
                    }
                    for r in &receivers {
                        let key = ItlbKey::unary(op, *r);
                        if seen.insert(key) {
                            keys.push(key);
                        }
                    }
                }
            }
        }
        keys
    }

    /// Serializes the facts as the version-1 JSON artifact.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"version\": 1,\n");
        out.push_str(&format!("  \"degraded\": {},\n", self.inference.degraded));
        // Classes.
        out.push_str("  \"classes\": [");
        let mut ids: Vec<_> = self.class_names.keys().copied().collect();
        ids.sort_by_key(|c| c.0);
        for (i, id) in ids.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"id\": {}, \"name\": {}}}",
                id.0,
                json_str(&self.class_names[id])
            ));
        }
        out.push_str("],\n");
        // Methods.
        out.push_str("  \"methods\": [\n");
        for (i, m) in self.methods.iter().enumerate() {
            let fuel = match self.callgraph.fuel.get(i) {
                Some(FuelBound::Bounded(f)) => f.to_string(),
                _ => "null".to_string(),
            };
            out.push_str(&format!(
                "    {{\"index\": {}, \"name\": {}, \"class\": {}, \"selector\": {}, \"fuel\": {}, \"may_write_ctx\": {}, \"reachable\": {}}}{}\n",
                i,
                json_str(&m.name),
                json_str(&m.class),
                json_str(&m.selector),
                fuel,
                self.inference.may_write_ctx.get(i).copied().unwrap_or(true),
                self.reachable.get(i).copied().unwrap_or(true),
                if i + 1 < self.methods.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        // Call graph.
        out.push_str("  \"call_graph\": [");
        for (i, callees) in self.callgraph.edges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "[{}]",
                callees
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out.push_str("],\n");
        // Sites.
        out.push_str("  \"sites\": [\n");
        let n_sites = self.inference.sites.len();
        for (i, site) in self.inference.sites.iter().enumerate() {
            let kind = match site.kind {
                SiteKind::Monomorphic => "monomorphic",
                SiteKind::Polymorphic => "polymorphic",
                SiteKind::Unresolvable => "unresolvable",
                SiteKind::Dead => "dead",
            };
            let receivers = if self.inference.universe.is_top(&site.receivers) {
                "[\"*\"]".to_string()
            } else {
                let names: Vec<String> = self
                    .inference
                    .universe
                    .classes_in(&site.receivers)
                    .map(|c| json_str(self.class_names.get(&c).map(|s| s.as_str()).unwrap_or("?")))
                    .collect();
                format!("[{}]", names.join(", "))
            };
            let prims: Vec<String> = site
                .prims
                .iter()
                .map(|p| json_str(&p.to_string()))
                .collect();
            let methods: Vec<String> = site.methods.iter().map(|m| m.to_string()).collect();
            out.push_str(&format!(
                "    {{\"method\": {}, \"pc\": {}, \"selector\": {}, \"kind\": \"{}\", \"receivers\": {}, \"prims\": [{}], \"methods\": [{}]}}{}\n",
                site.method,
                site.pc,
                json_str(
                    self.selector_names
                        .get(&site.selector.0)
                        .map(|s| s.as_str())
                        .unwrap_or("?")
                ),
                kind,
                receivers,
                prims.join(", "),
                methods.join(", "),
                if i + 1 < n_sites { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        // Fresh-object escape facts.
        out.push_str("  \"fresh\": [");
        for (i, f) in self.inference.fresh.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let class = match f.class.and_then(|c| self.class_names.get(&c)) {
                Some(name) => json_str(name),
                None => "null".to_string(),
            };
            out.push_str(&format!(
                "{{\"method\": {}, \"pc\": {}, \"class\": {}, \"escapes\": {}}}",
                f.method, f.pc, class, f.escapes
            ));
        }
        out.push_str("],\n");
        // Summary.
        let s = &self.summary;
        out.push_str(&format!(
            "  \"summary\": {{\"sites\": {}, \"live_sites\": {}, \"monomorphic\": {}, \"polymorphic\": {}, \"unresolvable\": {}, \"dead\": {}, \"resolved_pct\": {:.1}, \"preseed_keys\": {}}}\n",
            s.sites,
            s.live_sites,
            s.monomorphic,
            s.polymorphic,
            s.unresolvable,
            s.dead,
            s.resolved_pct,
            self.preseed_keys().len()
        ));
        out.push_str("}\n");
        out
    }
}

fn summarize(inference: &Inference) -> FactsSummary {
    let mut s = FactsSummary {
        sites: inference.sites.len(),
        live_sites: 0,
        monomorphic: 0,
        polymorphic: 0,
        unresolvable: 0,
        dead: 0,
        resolved_pct: 0.0,
    };
    for site in &inference.sites {
        match site.kind {
            SiteKind::Monomorphic => s.monomorphic += 1,
            SiteKind::Polymorphic => s.polymorphic += 1,
            SiteKind::Unresolvable => s.unresolvable += 1,
            SiteKind::Dead => s.dead += 1,
        }
    }
    s.live_sites = s.sites - s.dead;
    if s.live_sites > 0 {
        s.resolved_pct = 100.0 * s.monomorphic as f64 / s.live_sites as f64;
    }
    s
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::{Assembler, Opcode, Operand};

    fn tiny_image() -> ProgramImage {
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("double");
        let mut asm = Assembler::new("SmallInteger ≫ double", 1);
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        img
    }

    #[test]
    fn summary_counts_and_json_shape() {
        let img = tiny_image();
        let facts = ImageFacts::analyze(&img).unwrap();
        assert_eq!(facts.summary.sites, 2);
        assert_eq!(facts.summary.dead, 0);
        assert_eq!(facts.summary.monomorphic, 2);
        assert!(facts.summary.resolved_pct > 99.0);
        let json = facts.to_json();
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"kind\": \"monomorphic\""));
        assert!(json.contains("\"resolved_pct\": 100.0"));
        // Every brace balances (cheap well-formedness check).
        let open = json.matches('{').count();
        let close = json.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn preseed_keys_cover_the_monomorphic_sites() {
        let img = tiny_image();
        let facts = ImageFacts::analyze(&img).unwrap();
        let keys = facts.preseed_keys();
        // `self + self` on a SmallInteger receiver: one binary key.
        assert!(keys.contains(&ItlbKey::binary(
            Opcode::ADD,
            ClassId::SMALL_INT,
            ClassId::SMALL_INT
        )));
    }

    #[test]
    fn entry_roots_narrow_reachability() {
        let mut img = tiny_image();
        let orphan = img.opcodes.intern("orphan");
        let mut asm = Assembler::new("SmallInteger ≫ orphan", 1);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, orphan, asm.finish().unwrap());
        let facts = ImageFacts::analyze_with(&img, &["double".to_string()]).unwrap();
        assert_eq!(facts.entry_roots, vec![0]);
        assert!(facts.reachable[0]);
        assert!(!facts.reachable[1], "orphan is unreachable from double");
    }
}
