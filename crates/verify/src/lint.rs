//! Dataflow lints with stable diagnostic codes, for the `vmlint` CLI.

use com_core::ProgramImage;
use com_isa::{CodeObject, Opcode, PrimOp};
use com_mem::ClassId;
use com_obj::{lookup_method, MethodRef, TrapSelector};
use std::collections::HashSet;

use crate::cfg::Cfg;
use crate::check::verify_image;
use crate::dataflow::{def_slot, use_slots, ConstSlots, Liveness, ReachingDefs};
use crate::error::{Provenance, VerifyError};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: reported, never denied. Covers findings that are
    /// routine in compiler-generated code (scratch-slot churn, join-block
    /// scaffolding) and pure estimates.
    Info,
    /// A warning: `vmlint --deny` fails on these.
    Warning,
}

/// The stable lint codes. Verify errors use `V001`–`V007`
/// (see [`VerifyErrorKind::code`](crate::VerifyErrorKind::code)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagCode {
    /// `L001`: instructions no path from the method entry can reach.
    Unreachable,
    /// `L002`: a slot store overwritten on every path before any read.
    DeadStore,
    /// `L003`: a slot read that may happen before any write on some path
    /// (the interpreter's `UninitOperand` trap, found statically).
    UseBeforeDef,
    /// `L004`: a send with provably constant operands that provably traps
    /// every time it executes.
    AlwaysTraps,
    /// `I001`: the method's worst-case own-frame fuel (or unbounded).
    FuelBound,
    /// `L005`: a send whose inferred receiver set provably never
    /// understands the selector — every execution lands in
    /// `doesNotUnderstand:`, and no receiver class installs a handler.
    GuaranteedDnu,
    /// `L006`: a method no entry point (or engine-invoked trap handler)
    /// can reach through the call graph.
    UnreachableMethod,
    /// `I002`: the method's worst-case *interprocedural* fuel — the
    /// call-graph composition of the per-method I001 bounds.
    InterFuel,
}

impl DiagCode {
    /// The stable code string tools match on.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::Unreachable => "L001",
            DiagCode::DeadStore => "L002",
            DiagCode::UseBeforeDef => "L003",
            DiagCode::AlwaysTraps => "L004",
            DiagCode::GuaranteedDnu => "L005",
            DiagCode::UnreachableMethod => "L006",
            DiagCode::FuelBound => "I001",
            DiagCode::InterFuel => "I002",
        }
    }

    /// The default severity. Unreachable code and dead stores are
    /// informational: the inlining compiler routinely emits both
    /// (join-block scaffolding after arms that return, scratch slots
    /// reused across statements), so they describe codegen quality, not
    /// malformation. Unreachable *methods* likewise: a library image
    /// legitimately ships more than one entry uses.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::Unreachable
            | DiagCode::DeadStore
            | DiagCode::FuelBound
            | DiagCode::UnreachableMethod
            | DiagCode::InterFuel => Severity::Info,
            DiagCode::UseBeforeDef | DiagCode::AlwaysTraps | DiagCode::GuaranteedDnu => {
                Severity::Warning
            }
        }
    }

    /// One-line description for the CLI's diagnostics table.
    pub fn describe(self) -> &'static str {
        match self {
            DiagCode::Unreachable => "unreachable code: no path from the method entry",
            DiagCode::DeadStore => "dead store: overwritten on every path before any read",
            DiagCode::UseBeforeDef => "use of a context slot that may be uninitialised",
            DiagCode::AlwaysTraps => "send with constant operands that provably traps",
            DiagCode::GuaranteedDnu => "send guaranteed to hit doesNotUnderstand: (no handler)",
            DiagCode::UnreachableMethod => "method unreachable from any entry point",
            DiagCode::FuelBound => "worst-case own-frame fuel estimate",
            DiagCode::InterFuel => "worst-case interprocedural fuel estimate",
        }
    }

    /// Every lint code, for the CLI's table.
    pub const ALL: [DiagCode; 8] = [
        DiagCode::Unreachable,
        DiagCode::DeadStore,
        DiagCode::UseBeforeDef,
        DiagCode::AlwaysTraps,
        DiagCode::GuaranteedDnu,
        DiagCode::UnreachableMethod,
        DiagCode::FuelBound,
        DiagCode::InterFuel,
    ];
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: DiagCode,
    /// The method it fired in.
    pub method: Provenance,
    /// The instruction it anchors to (absent for method-level findings
    /// such as the fuel estimate).
    pub offset: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// The finding's severity (the code's default).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let kind = match self.severity() {
            Severity::Warning => "warning",
            Severity::Info => "info",
        };
        write!(f, "{kind}[{}] {}", self.code.code(), self.method)?;
        if let Some(pc) = self.offset {
            write!(f, ", instruction {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Configuration for [`lint_image_with`]: the entry selectors that seed
/// the L006 call-graph reachability roots. With no entries, every method
/// is a root and L006 stays silent (a bare library image claims nothing
/// about which of its methods a client will use).
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    /// Entry-point selector names (`--entry` on the CLI; a workload's
    /// entry selector in the sweep).
    pub entries: Vec<String>,
}

/// Verifies `image`, then runs every lint over every method — the
/// intra-procedural tier plus the interprocedural lints (L004 sharpened
/// per receiver set, L005, L006, I002) when class inference succeeds.
///
/// Equivalent to [`lint_image_with`] with a default (empty) config.
///
/// # Errors
///
/// The first [`VerifyError`] — lints only run on verified images.
pub fn lint_image(image: &ProgramImage) -> Result<Vec<Diagnostic>, VerifyError> {
    lint_image_with(image, &LintConfig::default())
}

/// Verifies `image`, then runs every lint with explicit entry roots.
///
/// The `L004` always-traps lint is suppressed per site when every class
/// in the *inferred receiver set* reaches a `badOperands:` handler —
/// with a handler the trap is a routed feature (the trap workloads run
/// through theirs), not a latent fault. Only if inference is degraded
/// (an image beyond the class-set domain) does suppression fall back to
/// PR 7's image-global rule. Likewise `L005` is suppressed when every
/// never-understanding receiver class has a `doesNotUnderstand:`
/// handler (intentional proxying).
///
/// # Errors
///
/// The first [`VerifyError`] — lints only run on verified images.
pub fn lint_image_with(
    image: &ProgramImage,
    config: &LintConfig,
) -> Result<Vec<Diagnostic>, VerifyError> {
    verify_image(image)?;
    let inference = crate::infer::infer_image(image)?;
    let callgraph = crate::callgraph::CallGraph::build(image, &inference);
    let sharp = (!inference.degraded)
        .then(|| crate::infer::StaticResolver::new(image, &inference.universe));
    // Selectors any image method defines: sends of these may dispatch to
    // the defined method instead of the primitive, so constant folding
    // must not claim to know their result (conservative, class-insensitive).
    let overridden: HashSet<Opcode> = image.methods.iter().map(|m| m.selector).collect();
    let resolve = |class: ClassId, op: Opcode| -> Option<PrimOp> {
        if overridden.contains(&op) {
            return None;
        }
        match lookup_method(&image.classes, class, op).method {
            Some(MethodRef::Primitive(p)) => Some(p),
            _ => None,
        }
    };
    let image_global_suppress = image
        .opcodes
        .get(TrapSelector::BadOperands.name())
        .is_some_and(|sel| image.methods.iter().any(|m| m.selector == sel));
    let mut out = Vec::new();
    for (index, m) in image.methods.iter().enumerate() {
        let prov = Provenance {
            index: Some(index),
            name: m.code.name.clone(),
        };
        // Intra-procedural tier, with L004 deferred to the sharpened
        // per-site pass below.
        out.extend(lint_code(&m.code, &prov, &resolve, true));

        let cfg = Cfg::build(&m.code);
        let reachable = cfg.reachable();

        // L004 — provably always-trapping sends, suppressed only where
        // the inferred receiver set installs a badOperands: handler.
        let consts = ConstSlots::build(&m.code, &cfg, &resolve);
        for (pc, trap) in consts.trap_sites {
            if !reachable[cfg.block_of[pc]] {
                continue;
            }
            let suppressed = match &sharp {
                Some(r) => match inference.site(index, pc) {
                    Some(site) if !site.receivers.is_empty() => inference
                        .universe
                        .classes_in(&site.receivers)
                        .all(|c| r.handler(c, TrapSelector::BadOperands).is_some()),
                    Some(_) => true, // dead site: never executes
                    None => image_global_suppress,
                },
                None => image_global_suppress,
            };
            if !suppressed {
                out.push(Diagnostic {
                    code: DiagCode::AlwaysTraps,
                    method: prov.clone(),
                    offset: Some(pc),
                    message: format!("this send traps every time it executes: {trap}"),
                });
            }
        }

        // L005 — sends the receiver set provably never understands.
        if let Some(r) = &sharp {
            for site in inference.sites_of(index) {
                if site.receivers.is_empty() {
                    continue;
                }
                let mut all_dnu = true;
                let mut all_handled = true;
                for c in inference.universe.classes_in(&site.receivers) {
                    match r.resolve(c, site.selector) {
                        crate::infer::Target::Dnu { handled } => {
                            if !handled {
                                all_handled = false;
                            }
                        }
                        _ => {
                            all_dnu = false;
                            break;
                        }
                    }
                }
                if all_dnu && !all_handled {
                    let name = image.opcodes.name(site.selector).unwrap_or("?");
                    out.push(Diagnostic {
                        code: DiagCode::GuaranteedDnu,
                        method: prov.clone(),
                        offset: Some(site.pc),
                        message: format!(
                            "no inferred receiver class understands `{name}` \
                             and none installs a doesNotUnderstand: handler"
                        ),
                    });
                }
            }
        }

        // I002 — interprocedural fuel (call-graph composition of I001).
        let fuel = match callgraph.fuel[index] {
            crate::callgraph::FuelBound::Bounded(n) => {
                format!("worst-case interprocedural fuel: {n} instructions")
            }
            crate::callgraph::FuelBound::Unbounded => {
                "worst-case interprocedural fuel: unbounded (loops or recursion)".to_string()
            }
        };
        out.push(Diagnostic {
            code: DiagCode::InterFuel,
            method: prov,
            offset: None,
            message: fuel,
        });
    }

    // L006 — methods unreachable from the entry roots. Trap handlers
    // are engine-invoked and always count as roots.
    if !config.entries.is_empty() && !callgraph.degraded() {
        let sels: Vec<Opcode> = config
            .entries
            .iter()
            .filter_map(|e| image.opcodes.get(e))
            .collect();
        let roots: Vec<usize> = image
            .methods
            .iter()
            .enumerate()
            .filter(|(_, m)| sels.contains(&m.selector))
            .map(|(i, _)| i)
            .collect();
        let reached = callgraph.reachable_from(&roots);
        for (i, m) in image.methods.iter().enumerate() {
            if !reached[i] {
                out.push(Diagnostic {
                    code: DiagCode::UnreachableMethod,
                    method: Provenance {
                        index: Some(i),
                        name: m.code.name.clone(),
                    },
                    offset: None,
                    message: format!(
                        "no entry point ({}) or trap handler reaches this method",
                        config.entries.join(", ")
                    ),
                });
            }
        }
    }
    Ok(out)
}

/// Runs every lint over one verified code object.
pub fn lint_code(
    code: &CodeObject,
    prov: &Provenance,
    resolve: &crate::dataflow::PrimResolver,
    suppress_always_traps: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cfg = Cfg::build(code);
    let diag = |code: DiagCode, offset: Option<usize>, message: String| Diagnostic {
        code,
        method: prov.clone(),
        offset,
        message,
    };

    // L001 — unreachable blocks.
    let reachable = cfg.reachable();
    for (bi, b) in cfg.blocks.iter().enumerate() {
        if !reachable[bi] {
            out.push(diag(
                DiagCode::Unreachable,
                Some(b.start),
                format!("instructions {}..{} are unreachable", b.start, b.end),
            ));
        }
    }

    // L002 — dead stores: the stored slot is not live after the store
    // *and* some later store kills it (stores merely unread at exit are
    // not reported: method results and scratch tails land there).
    let live_after = Liveness::build(code, &cfg).live_after(code, &cfg);
    let stored_later: Vec<u32> = {
        // For each instruction, the set of slots stored at any reachable
        // later point (flow-insensitive over the method; conservative).
        let mut later = vec![0u32; code.instrs.len() + 1];
        for pc in (0..code.instrs.len()).rev() {
            later[pc] = later[pc + 1]
                | def_slot(code.instrs[pc])
                    .map(|s| 1u32 << s)
                    .unwrap_or_default();
        }
        later
    };
    for (pc, instr) in code.instrs.iter().enumerate() {
        if !reachable[cfg.block_of[pc]] {
            continue;
        }
        if let Some(slot) = def_slot(*instr) {
            if live_after[pc] & (1 << slot) == 0 && stored_later[pc + 1] & (1 << slot) != 0 {
                out.push(diag(
                    DiagCode::DeadStore,
                    Some(pc),
                    format!("store to slot {slot} is overwritten before any read"),
                ));
            }
        }
    }

    // L003 — use of a maybe-uninitialised slot.
    let uninit = ReachingDefs::build(code, &cfg).maybe_uninit(code, &cfg);
    for (pc, instr) in code.instrs.iter().enumerate() {
        if !reachable[cfg.block_of[pc]] {
            continue;
        }
        let bad = use_slots(*instr) & uninit[pc];
        for slot in 0..crate::dataflow::N_SLOTS {
            if bad & (1 << slot) != 0 {
                out.push(diag(
                    DiagCode::UseBeforeDef,
                    Some(pc),
                    format!("slot {slot} may be read before it is ever written"),
                ));
            }
        }
    }

    // L004 — provably always-trapping sends.
    if !suppress_always_traps {
        let consts = ConstSlots::build(code, &cfg, resolve);
        for (pc, trap) in consts.trap_sites {
            if reachable[cfg.block_of[pc]] {
                out.push(diag(
                    DiagCode::AlwaysTraps,
                    Some(pc),
                    format!("this send traps every time it executes: {trap}"),
                ));
            }
        }
    }

    // I001 — fuel estimate.
    let fuel = match cfg.fuel_bound() {
        Some(n) => format!("worst-case own-frame fuel: {n} instructions"),
        None => "worst-case own-frame fuel: unbounded (contains loops)".to_string(),
    };
    out.push(diag(DiagCode::FuelBound, None, fuel));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::{Assembler, Operand};
    use com_mem::Word;

    fn image_with(code: CodeObject) -> ProgramImage {
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("probe");
        img.add_method(ClassId::SMALL_INT, sel, code);
        img
    }

    fn warnings(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .collect()
    }

    #[test]
    fn clean_method_yields_only_the_fuel_info() {
        let mut asm = Assembler::new("t", 2);
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let diags = lint_image(&image_with(asm.finish().unwrap())).unwrap();
        assert!(warnings(&diags).is_empty(), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == DiagCode::FuelBound));
    }

    #[test]
    fn use_before_def_warns() {
        let mut asm = Assembler::new("t", 1);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(9),
            Operand::Cur(9),
        )
        .unwrap();
        let diags = lint_image(&image_with(asm.finish().unwrap())).unwrap();
        let w = warnings(&diags);
        assert_eq!(w.len(), 1, "{diags:?}");
        assert_eq!(w[0].code, DiagCode::UseBeforeDef);
        assert_eq!(w[0].offset, Some(0));
        assert!(w[0].to_string().contains("L003"));
    }

    #[test]
    fn always_trapping_send_warns_unless_handled() {
        let mut asm = Assembler::new("t", 1);
        let k1 = asm.intern_const(Word::Int(1));
        let k0 = asm.intern_const(Word::Int(0));
        asm.emit_three(
            Opcode::DIV,
            Operand::Cur(4),
            Operand::Const(k1),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        let diags = lint_image(&image_with(code.clone())).unwrap();
        let w = warnings(&diags);
        assert_eq!(w.len(), 1, "{diags:?}");
        assert_eq!(w[0].code, DiagCode::AlwaysTraps);
        // With a badOperands: handler installed, the trap is a routed
        // feature, not a fault.
        let mut img = image_with(code);
        let bo = img.opcodes.intern(TrapSelector::BadOperands.name());
        let mut asm = Assembler::new("Int ≫ badOperands:", 2);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, bo, asm.finish().unwrap());
        let diags = lint_image(&img).unwrap();
        assert!(
            !diags.iter().any(|d| d.code == DiagCode::AlwaysTraps),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_and_dead_store_are_informational() {
        // c4 := c1 (overwritten); jump over dead code; c4 := c1; ret.
        let mut asm = Assembler::new("t", 2);
        let end = asm.label();
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap(); // 0: dead store
        asm.jump(end); // 1: unconditional
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(5),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap(); // 2: unreachable
        asm.bind(end);
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap(); // 3
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap(); // 4
        let diags = lint_image(&image_with(asm.finish().unwrap())).unwrap();
        assert!(warnings(&diags).is_empty(), "{diags:?}");
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&DiagCode::Unreachable), "{diags:?}");
        assert!(codes.contains(&DiagCode::DeadStore), "{diags:?}");
    }

    #[test]
    fn codes_and_severities_are_stable() {
        assert_eq!(DiagCode::Unreachable.code(), "L001");
        assert_eq!(DiagCode::DeadStore.code(), "L002");
        assert_eq!(DiagCode::UseBeforeDef.code(), "L003");
        assert_eq!(DiagCode::AlwaysTraps.code(), "L004");
        assert_eq!(DiagCode::GuaranteedDnu.code(), "L005");
        assert_eq!(DiagCode::UnreachableMethod.code(), "L006");
        assert_eq!(DiagCode::FuelBound.code(), "I001");
        assert_eq!(DiagCode::InterFuel.code(), "I002");
        assert_eq!(DiagCode::GuaranteedDnu.severity(), Severity::Warning);
        assert_eq!(DiagCode::UnreachableMethod.severity(), Severity::Info);
        assert_eq!(DiagCode::InterFuel.severity(), Severity::Info);
        for c in DiagCode::ALL {
            assert!(!c.describe().is_empty());
        }
    }

    #[test]
    fn l004_suppression_is_per_receiver_not_image_global() {
        // A constant 1/0 on an Int receiver, in an image whose only
        // badOperands: handler lives on an unrelated class. PR 7's
        // image-global rule silenced this; the sharpened rule must not —
        // the Int chain has no handler.
        let mut asm = Assembler::new("t", 1);
        let k1 = asm.intern_const(Word::Int(1));
        let k0 = asm.intern_const(Word::Int(0));
        asm.emit_three(
            Opcode::DIV,
            Operand::Cur(4),
            Operand::Const(k1),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let mut img = image_with(asm.finish().unwrap());
        let elsewhere = img
            .classes
            .define("Elsewhere", Some(com_obj::ClassTable::OBJECT), 0)
            .unwrap();
        let bo = img.opcodes.intern(TrapSelector::BadOperands.name());
        let mut asm = Assembler::new("Elsewhere ≫ badOperands:", 2);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        img.add_method(elsewhere, bo, asm.finish().unwrap());
        let diags = lint_image(&img).unwrap();
        assert!(
            diags.iter().any(|d| d.code == DiagCode::AlwaysTraps),
            "a handler on an unrelated class must not silence L004: {diags:?}"
        );
    }

    #[test]
    fn guaranteed_dnu_warns_unless_every_receiver_has_a_handler() {
        // `self ghost` where no class installs `ghost`.
        let mut img = ProgramImage::empty();
        let ghost = img.opcodes.intern("ghost");
        let sel = img.opcodes.intern("haunt");
        let mut asm = Assembler::new("SmallInteger ≫ haunt", 1);
        asm.emit_three(
            Opcode(ghost.0),
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        img.add_method(ClassId::SMALL_INT, sel, code.clone());
        let diags = lint_image(&img).unwrap();
        let dnu: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::GuaranteedDnu)
            .collect();
        assert_eq!(dnu.len(), 1, "{diags:?}");
        assert_eq!(dnu[0].offset, Some(0));
        assert!(dnu[0].to_string().contains("ghost"));
        // With a doesNotUnderstand: handler on the receiver's chain the
        // send is intentional proxying (the dnu workload's pattern).
        let dnu_sel = img.opcodes.intern(TrapSelector::DoesNotUnderstand.name());
        let mut asm = Assembler::new("Object ≫ doesNotUnderstand:", 2);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        img.add_method(com_obj::ClassTable::OBJECT, dnu_sel, asm.finish().unwrap());
        let diags = lint_image(&img).unwrap();
        assert!(
            !diags.iter().any(|d| d.code == DiagCode::GuaranteedDnu),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_method_needs_entries_and_spares_handlers() {
        let mut img = ProgramImage::empty();
        let main = img.opcodes.intern("mainEntry");
        let orphan = img.opcodes.intern("orphan");
        let dnu_sel = img.opcodes.intern(TrapSelector::DoesNotUnderstand.name());
        for (sel, name) in [
            (main, "SmallInteger ≫ mainEntry"),
            (orphan, "SmallInteger ≫ orphan"),
        ] {
            let mut asm = Assembler::new(name, 1);
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(1),
                Operand::Cur(1),
            )
            .unwrap();
            img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        }
        let mut asm = Assembler::new("Object ≫ doesNotUnderstand:", 2);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        img.add_method(com_obj::ClassTable::OBJECT, dnu_sel, asm.finish().unwrap());

        // No entries: no unreachability claims.
        let diags = lint_image(&img).unwrap();
        assert!(!diags.iter().any(|d| d.code == DiagCode::UnreachableMethod));

        // With an entry, only the orphan is flagged — the handler is an
        // engine-invoked root, never dead.
        let config = LintConfig {
            entries: vec!["mainEntry".to_string()],
        };
        let diags = lint_image_with(&img, &config).unwrap();
        let dead: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::UnreachableMethod)
            .collect();
        assert_eq!(dead.len(), 1, "{diags:?}");
        assert_eq!(dead[0].method.index, Some(1));
    }

    #[test]
    fn interprocedural_fuel_is_reported_per_method() {
        let mut asm = Assembler::new("t", 1);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        let diags = lint_image(&image_with(asm.finish().unwrap())).unwrap();
        let inter: Vec<_> = diags
            .iter()
            .filter(|d| d.code == DiagCode::InterFuel)
            .collect();
        assert_eq!(inter.len(), 1, "{diags:?}");
        assert!(inter[0].message.contains("1 instructions"), "{inter:?}");
    }
}
