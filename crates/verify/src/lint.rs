//! Dataflow lints with stable diagnostic codes, for the `vmlint` CLI.

use com_core::ProgramImage;
use com_isa::{CodeObject, Opcode, PrimOp};
use com_mem::ClassId;
use com_obj::{lookup_method, MethodRef, TrapSelector};
use std::collections::HashSet;

use crate::cfg::Cfg;
use crate::check::verify_image;
use crate::dataflow::{def_slot, use_slots, ConstSlots, Liveness, ReachingDefs};
use crate::error::{Provenance, VerifyError};

/// Diagnostic severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: reported, never denied. Covers findings that are
    /// routine in compiler-generated code (scratch-slot churn, join-block
    /// scaffolding) and pure estimates.
    Info,
    /// A warning: `vmlint --deny` fails on these.
    Warning,
}

/// The stable lint codes. Verify errors use `V001`–`V007`
/// (see [`VerifyErrorKind::code`](crate::VerifyErrorKind::code)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiagCode {
    /// `L001`: instructions no path from the method entry can reach.
    Unreachable,
    /// `L002`: a slot store overwritten on every path before any read.
    DeadStore,
    /// `L003`: a slot read that may happen before any write on some path
    /// (the interpreter's `UninitOperand` trap, found statically).
    UseBeforeDef,
    /// `L004`: a send with provably constant operands that provably traps
    /// every time it executes.
    AlwaysTraps,
    /// `I001`: the method's worst-case own-frame fuel (or unbounded).
    FuelBound,
}

impl DiagCode {
    /// The stable code string tools match on.
    pub fn code(self) -> &'static str {
        match self {
            DiagCode::Unreachable => "L001",
            DiagCode::DeadStore => "L002",
            DiagCode::UseBeforeDef => "L003",
            DiagCode::AlwaysTraps => "L004",
            DiagCode::FuelBound => "I001",
        }
    }

    /// The default severity. Unreachable code and dead stores are
    /// informational: the inlining compiler routinely emits both
    /// (join-block scaffolding after arms that return, scratch slots
    /// reused across statements), so they describe codegen quality, not
    /// malformation.
    pub fn severity(self) -> Severity {
        match self {
            DiagCode::Unreachable | DiagCode::DeadStore | DiagCode::FuelBound => Severity::Info,
            DiagCode::UseBeforeDef | DiagCode::AlwaysTraps => Severity::Warning,
        }
    }

    /// One-line description for the CLI's diagnostics table.
    pub fn describe(self) -> &'static str {
        match self {
            DiagCode::Unreachable => "unreachable code: no path from the method entry",
            DiagCode::DeadStore => "dead store: overwritten on every path before any read",
            DiagCode::UseBeforeDef => "use of a context slot that may be uninitialised",
            DiagCode::AlwaysTraps => "send with constant operands that provably traps",
            DiagCode::FuelBound => "worst-case own-frame fuel estimate",
        }
    }

    /// Every lint code, for the CLI's table.
    pub const ALL: [DiagCode; 5] = [
        DiagCode::Unreachable,
        DiagCode::DeadStore,
        DiagCode::UseBeforeDef,
        DiagCode::AlwaysTraps,
        DiagCode::FuelBound,
    ];
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Which lint fired.
    pub code: DiagCode,
    /// The method it fired in.
    pub method: Provenance,
    /// The instruction it anchors to (absent for method-level findings
    /// such as the fuel estimate).
    pub offset: Option<usize>,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// The finding's severity (the code's default).
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }
}

impl core::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let kind = match self.severity() {
            Severity::Warning => "warning",
            Severity::Info => "info",
        };
        write!(f, "{kind}[{}] {}", self.code.code(), self.method)?;
        if let Some(pc) = self.offset {
            write!(f, ", instruction {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Verifies `image`, then runs every lint over every method.
///
/// The `L004` always-traps lint is suppressed image-wide when the image
/// installs a `badOperands:` handler: with a handler present a trapping
/// send is a *feature* (the trap workloads run through theirs), not a
/// latent fault.
///
/// # Errors
///
/// The first [`VerifyError`] — lints only run on verified images.
pub fn lint_image(image: &ProgramImage) -> Result<Vec<Diagnostic>, VerifyError> {
    verify_image(image)?;
    // Selectors any image method defines: sends of these may dispatch to
    // the defined method instead of the primitive, so constant folding
    // must not claim to know their result (conservative, class-insensitive).
    let overridden: HashSet<Opcode> = image.methods.iter().map(|m| m.selector).collect();
    let resolve = |class: ClassId, op: Opcode| -> Option<PrimOp> {
        if overridden.contains(&op) {
            return None;
        }
        match lookup_method(&image.classes, class, op).method {
            Some(MethodRef::Primitive(p)) => Some(p),
            _ => None,
        }
    };
    let suppress_l004 = image
        .opcodes
        .get(TrapSelector::BadOperands.name())
        .is_some_and(|sel| image.methods.iter().any(|m| m.selector == sel));
    let mut out = Vec::new();
    for (index, m) in image.methods.iter().enumerate() {
        let prov = Provenance {
            index: Some(index),
            name: m.code.name.clone(),
        };
        out.extend(lint_code(&m.code, &prov, &resolve, suppress_l004));
    }
    Ok(out)
}

/// Runs every lint over one verified code object.
pub fn lint_code(
    code: &CodeObject,
    prov: &Provenance,
    resolve: &crate::dataflow::PrimResolver,
    suppress_always_traps: bool,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let cfg = Cfg::build(code);
    let diag = |code: DiagCode, offset: Option<usize>, message: String| Diagnostic {
        code,
        method: prov.clone(),
        offset,
        message,
    };

    // L001 — unreachable blocks.
    let reachable = cfg.reachable();
    for (bi, b) in cfg.blocks.iter().enumerate() {
        if !reachable[bi] {
            out.push(diag(
                DiagCode::Unreachable,
                Some(b.start),
                format!("instructions {}..{} are unreachable", b.start, b.end),
            ));
        }
    }

    // L002 — dead stores: the stored slot is not live after the store
    // *and* some later store kills it (stores merely unread at exit are
    // not reported: method results and scratch tails land there).
    let live_after = Liveness::build(code, &cfg).live_after(code, &cfg);
    let stored_later: Vec<u32> = {
        // For each instruction, the set of slots stored at any reachable
        // later point (flow-insensitive over the method; conservative).
        let mut later = vec![0u32; code.instrs.len() + 1];
        for pc in (0..code.instrs.len()).rev() {
            later[pc] = later[pc + 1]
                | def_slot(code.instrs[pc])
                    .map(|s| 1u32 << s)
                    .unwrap_or_default();
        }
        later
    };
    for (pc, instr) in code.instrs.iter().enumerate() {
        if !reachable[cfg.block_of[pc]] {
            continue;
        }
        if let Some(slot) = def_slot(*instr) {
            if live_after[pc] & (1 << slot) == 0 && stored_later[pc + 1] & (1 << slot) != 0 {
                out.push(diag(
                    DiagCode::DeadStore,
                    Some(pc),
                    format!("store to slot {slot} is overwritten before any read"),
                ));
            }
        }
    }

    // L003 — use of a maybe-uninitialised slot.
    let uninit = ReachingDefs::build(code, &cfg).maybe_uninit(code, &cfg);
    for (pc, instr) in code.instrs.iter().enumerate() {
        if !reachable[cfg.block_of[pc]] {
            continue;
        }
        let bad = use_slots(*instr) & uninit[pc];
        for slot in 0..crate::dataflow::N_SLOTS {
            if bad & (1 << slot) != 0 {
                out.push(diag(
                    DiagCode::UseBeforeDef,
                    Some(pc),
                    format!("slot {slot} may be read before it is ever written"),
                ));
            }
        }
    }

    // L004 — provably always-trapping sends.
    if !suppress_always_traps {
        let consts = ConstSlots::build(code, &cfg, resolve);
        for (pc, trap) in consts.trap_sites {
            if reachable[cfg.block_of[pc]] {
                out.push(diag(
                    DiagCode::AlwaysTraps,
                    Some(pc),
                    format!("this send traps every time it executes: {trap}"),
                ));
            }
        }
    }

    // I001 — fuel estimate.
    let fuel = match cfg.fuel_bound() {
        Some(n) => format!("worst-case own-frame fuel: {n} instructions"),
        None => "worst-case own-frame fuel: unbounded (contains loops)".to_string(),
    };
    out.push(diag(DiagCode::FuelBound, None, fuel));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::{Assembler, Operand};
    use com_mem::Word;

    fn image_with(code: CodeObject) -> ProgramImage {
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("probe");
        img.add_method(ClassId::SMALL_INT, sel, code);
        img
    }

    fn warnings(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .collect()
    }

    #[test]
    fn clean_method_yields_only_the_fuel_info() {
        let mut asm = Assembler::new("t", 2);
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let diags = lint_image(&image_with(asm.finish().unwrap())).unwrap();
        assert!(warnings(&diags).is_empty(), "{diags:?}");
        assert!(diags.iter().any(|d| d.code == DiagCode::FuelBound));
    }

    #[test]
    fn use_before_def_warns() {
        let mut asm = Assembler::new("t", 1);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(9),
            Operand::Cur(9),
        )
        .unwrap();
        let diags = lint_image(&image_with(asm.finish().unwrap())).unwrap();
        let w = warnings(&diags);
        assert_eq!(w.len(), 1, "{diags:?}");
        assert_eq!(w[0].code, DiagCode::UseBeforeDef);
        assert_eq!(w[0].offset, Some(0));
        assert!(w[0].to_string().contains("L003"));
    }

    #[test]
    fn always_trapping_send_warns_unless_handled() {
        let mut asm = Assembler::new("t", 1);
        let k1 = asm.intern_const(Word::Int(1));
        let k0 = asm.intern_const(Word::Int(0));
        asm.emit_three(
            Opcode::DIV,
            Operand::Cur(4),
            Operand::Const(k1),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        let diags = lint_image(&image_with(code.clone())).unwrap();
        let w = warnings(&diags);
        assert_eq!(w.len(), 1, "{diags:?}");
        assert_eq!(w[0].code, DiagCode::AlwaysTraps);
        // With a badOperands: handler installed, the trap is a routed
        // feature, not a fault.
        let mut img = image_with(code);
        let bo = img.opcodes.intern(TrapSelector::BadOperands.name());
        let mut asm = Assembler::new("Int ≫ badOperands:", 2);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, bo, asm.finish().unwrap());
        let diags = lint_image(&img).unwrap();
        assert!(
            !diags.iter().any(|d| d.code == DiagCode::AlwaysTraps),
            "{diags:?}"
        );
    }

    #[test]
    fn unreachable_and_dead_store_are_informational() {
        // c4 := c1 (overwritten); jump over dead code; c4 := c1; ret.
        let mut asm = Assembler::new("t", 2);
        let end = asm.label();
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap(); // 0: dead store
        asm.jump(end); // 1: unconditional
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(5),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap(); // 2: unreachable
        asm.bind(end);
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap(); // 3
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap(); // 4
        let diags = lint_image(&image_with(asm.finish().unwrap())).unwrap();
        assert!(warnings(&diags).is_empty(), "{diags:?}");
        let codes: Vec<_> = diags.iter().map(|d| d.code).collect();
        assert!(codes.contains(&DiagCode::Unreachable), "{diags:?}");
        assert!(codes.contains(&DiagCode::DeadStore), "{diags:?}");
    }

    #[test]
    fn codes_and_severities_are_stable() {
        assert_eq!(DiagCode::Unreachable.code(), "L001");
        assert_eq!(DiagCode::DeadStore.code(), "L002");
        assert_eq!(DiagCode::UseBeforeDef.code(), "L003");
        assert_eq!(DiagCode::AlwaysTraps.code(), "L004");
        assert_eq!(DiagCode::FuelBound.code(), "I001");
        for c in DiagCode::ALL {
            assert!(!c.describe().is_empty());
        }
    }
}
