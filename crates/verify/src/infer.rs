//! Whole-image class inference: the interprocedural tier.
//!
//! An abstract interpretation over verified images that computes, for
//! every instruction (every instruction is a send), the set of classes
//! its dispatch can ever key on. The domain is a lattice of class sets
//! per context slot — the closed world of [`ClassTable`] ids — seeded
//! from constants, `new` sites and the dispatch invariant itself
//! (a method only runs when lookup on the receiver's class lands on it),
//! and propagated through the existing CFG with conservative havoc only
//! at truly-unknown joins (context-escaping callees, privileged retags).
//!
//! The machine semantics the transfer function mirrors (see
//! `com-core`'s `Machine`):
//!
//! * **Three-address** sends key on the B operand's class (and C's);
//!   a call writes the callee's `arg0` = pointer to the A slot,
//!   `arg1` = B, `arg2` = C.
//! * **Zero-address** sends key on `next[1]` (and `next[2]` when
//!   `nargs >= 2`); the caller stages arguments into the next context
//!   itself, so a callee may receive *any* staged slot — the only
//!   entry-state guarantee is the dispatch invariant on slot 1.
//! * After **every** call returns, the caller's next context is fresh
//!   (recycled contexts are cleared), so staged state resets to
//!   "uninitialised".
//! * A callee writes its result through the pointer in its `arg0` —
//!   possibly never (no-result returns), hence result joins are weak.
//! * Context addresses escape via `movea` (block homes, result
//!   pointers); a callee that may write through a context pointer can
//!   mutate its caller's frame, so calls into such callees havoc the
//!   caller's slots. The `may_write_ctx` fact is computed transitively
//!   as part of the global fixpoint.
//!
//! Soundness contract (tested by the differential suite): for every
//! site, every receiver class the interpreter ever dispatches on is
//! contained in the inferred receiver set.

use std::collections::HashMap;

use com_core::ProgramImage;
use com_isa::{CodeObject, Instr, Opcode, Operand, PrimOp, ResultShape};
use com_mem::{ClassId, Word};
use com_obj::{ClassTable, MethodRef, TrapSelector};

use crate::cfg::Cfg;
use crate::check::verify_image;
use crate::dataflow::N_SLOTS;
use crate::error::VerifyError;

/// The most classes the dense bitset domain can represent. Images beyond
/// this (none shipped are within two orders of magnitude) get a
/// [`degraded`](Inference::degraded) inference: trivially sound, no
/// sites resolved.
pub const MAX_CLASSES: usize = 256;
const SET_WORDS: usize = MAX_CLASSES / 64;

/// A set of classes, dense over a [`ClassUniverse`]'s index space.
///
/// Bit *i* means "the class at universe index *i* may occur". All
/// operations are pure bit algebra; interpreting members needs the
/// universe ([`ClassUniverse::classes_in`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ClassSet {
    bits: [u64; SET_WORDS],
}

impl ClassSet {
    /// The empty set (⊥ of the lattice).
    pub const EMPTY: ClassSet = ClassSet {
        bits: [0; SET_WORDS],
    };

    fn insert(&mut self, index: usize) {
        self.bits[index / 64] |= 1 << (index % 64);
    }

    fn contains_index(&self, index: usize) -> bool {
        self.bits[index / 64] & (1 << (index % 64)) != 0
    }

    /// Unions `other` in; reports whether the set grew.
    pub fn union(&mut self, other: &ClassSet) -> bool {
        let mut grew = false;
        for (w, o) in self.bits.iter_mut().zip(other.bits.iter()) {
            let next = *w | *o;
            grew |= next != *w;
            *w = next;
        }
        grew
    }

    /// Whether no class is in the set.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Number of classes in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether `self` is a subset of `other`.
    pub fn subset_of(&self, other: &ClassSet) -> bool {
        self.bits
            .iter()
            .zip(other.bits.iter())
            .all(|(a, b)| a & !b == 0)
    }

    fn indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..MAX_CLASSES).filter(move |i| self.contains_index(*i))
    }
}

impl core::fmt::Debug for ClassSet {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "ClassSet{:?}", self.indices().collect::<Vec<_>>())
    }
}

/// The closed world the inference ranges over: every class the image
/// registers, plus the machine's `Context` class (defined at adoption
/// if the image does not carry one — mirrored here).
#[derive(Debug, Clone)]
pub struct ClassUniverse {
    /// The image's class table with `Context` guaranteed present.
    pub classes: ClassTable,
    /// The class the machine tags context pointers with.
    pub context: ClassId,
    ids: Vec<ClassId>,
    index: HashMap<ClassId, usize>,
    top: ClassSet,
}

impl ClassUniverse {
    /// Builds the universe for an image, or `None` if it exceeds
    /// [`MAX_CLASSES`].
    pub fn for_image(image: &ProgramImage) -> Option<ClassUniverse> {
        let mut classes = image.classes.clone();
        let context = match classes.by_name("Context") {
            Some(c) => c,
            None => classes
                .define("Context", Some(ClassTable::OBJECT), 0)
                .ok()?,
        };
        let ids = classes.ids();
        if ids.len() > MAX_CLASSES {
            return None;
        }
        let index: HashMap<ClassId, usize> = ids.iter().enumerate().map(|(i, c)| (*c, i)).collect();
        let mut top = ClassSet::EMPTY;
        for i in 0..ids.len() {
            top.insert(i);
        }
        Some(ClassUniverse {
            classes,
            context,
            ids,
            index,
            top,
        })
    }

    /// Number of classes in the universe.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the universe is empty (never — primitives always exist).
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// All class ids, in index order.
    pub fn ids(&self) -> &[ClassId] {
        &self.ids
    }

    /// The full set (⊤ of the lattice).
    pub fn top(&self) -> ClassSet {
        self.top
    }

    /// Whether `set` is ⊤.
    pub fn is_top(&self, set: &ClassSet) -> bool {
        *set == self.top
    }

    /// The singleton set for one class (empty for a foreign id).
    pub fn singleton(&self, class: ClassId) -> ClassSet {
        let mut s = ClassSet::EMPTY;
        if let Some(i) = self.index.get(&class) {
            s.insert(*i);
        }
        s
    }

    /// Whether `set` contains `class`.
    pub fn contains(&self, set: &ClassSet, class: ClassId) -> bool {
        self.index
            .get(&class)
            .is_some_and(|i| set.contains_index(*i))
    }

    /// The classes in `set`, in index order.
    pub fn classes_in<'a>(&'a self, set: &'a ClassSet) -> impl Iterator<Item = ClassId> + 'a {
        set.indices().filter_map(move |i| self.ids.get(i).copied())
    }

    /// The superclass chain starting at `class` (cycle-guarded).
    fn chain(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut cur = Some(class);
        while let Some(c) = cur {
            if out.contains(&c) || out.len() > self.ids.len() {
                break;
            }
            out.push(c);
            cur = self.classes.get(c).and_then(|i| i.superclass);
        }
        out
    }
}

/// What a (receiver class, selector) pair statically resolves to —
/// mirroring the machine's lookup with the image's defined methods
/// taking precedence over dictionary primitives at each class (the
/// load-time install overwrites the dictionary entry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// A primitive function-unit operation.
    Primitive(PrimOp),
    /// The image method at this index.
    Method(usize),
    /// No class on the chain answers: `doesNotUnderstand:`. `handled`
    /// records whether the chain installs a defined handler for it.
    Dnu {
        /// Whether a `doesNotUnderstand:` handler is on the chain.
        handled: bool,
    },
}

/// The static resolver: the image's method installs over the class
/// dictionaries, plus trap-handler lookups.
#[derive(Debug)]
pub struct StaticResolver<'a> {
    universe: &'a ClassUniverse,
    defined: HashMap<(ClassId, Opcode), usize>,
    dnu: Option<Opcode>,
    bad: Option<Opcode>,
}

impl<'a> StaticResolver<'a> {
    /// Builds the resolver for an image over its universe.
    pub fn new(image: &ProgramImage, universe: &'a ClassUniverse) -> StaticResolver<'a> {
        // Last install wins, exactly as `ClassTable::install` overwrites.
        let mut defined = HashMap::new();
        for (i, m) in image.methods.iter().enumerate() {
            defined.insert((m.class, m.selector), i);
        }
        StaticResolver {
            universe,
            defined,
            dnu: image.opcodes.get(TrapSelector::DoesNotUnderstand.name()),
            bad: image.opcodes.get(TrapSelector::BadOperands.name()),
        }
    }

    /// Resolves a selector against a receiver class, walking the chain.
    pub fn resolve(&self, class: ClassId, selector: Opcode) -> Target {
        for c in self.universe.chain(class) {
            if let Some(i) = self.defined.get(&(c, selector)) {
                return Target::Method(*i);
            }
            if let Some(info) = self.universe.classes.get(c) {
                match info.dict.lookup(selector).0 {
                    Some(MethodRef::Primitive(p)) => return Target::Primitive(p),
                    // A pre-installed defined method in a bare image
                    // dictionary has no method index; treat it as an
                    // unanalyzable (but understood) target.
                    Some(MethodRef::Defined(_)) => return Target::Dnu { handled: false },
                    None => {}
                }
            }
        }
        Target::Dnu {
            handled: self
                .handler(class, TrapSelector::DoesNotUnderstand)
                .is_some(),
        }
    }

    /// The defined handler method for `trap` on `class`'s chain, if any
    /// (the machine only dispatches traps to *defined* handlers).
    pub fn handler(&self, class: ClassId, trap: TrapSelector) -> Option<usize> {
        let sel = match trap {
            TrapSelector::DoesNotUnderstand => self.dnu?,
            TrapSelector::BadOperands => self.bad?,
        };
        self.universe
            .chain(class)
            .into_iter()
            .find_map(|c| self.defined.get(&(c, sel)).copied())
    }
}

/// How a send site resolved over its inferred receiver set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// Every receiver class reaches the same single target.
    Monomorphic,
    /// Multiple distinct targets, all understood.
    Polymorphic,
    /// Some receiver class does not understand the selector (with or
    /// without a handler), or the inference is degraded.
    Unresolvable,
    /// The inferred receiver set is empty: the site can never execute
    /// (unreachable code, or a method no dispatch reaches).
    Dead,
}

/// One send site — one instruction — with its inferred dispatch facts.
#[derive(Debug, Clone)]
pub struct Site {
    /// Index into `image.methods`.
    pub method: usize,
    /// Instruction index within the method.
    pub pc: usize,
    /// The selector dispatched.
    pub selector: Opcode,
    /// Inferred receiver classes (the ITLB key's first class).
    pub receivers: ClassSet,
    /// Inferred argument classes (the ITLB key's second class), absent
    /// for unary zero-address keys.
    pub arg: Option<ClassSet>,
    /// The resolution classification.
    pub kind: SiteKind,
    /// Distinct primitive targets over the receiver set.
    pub prims: Vec<PrimOp>,
    /// Distinct defined-method targets over the receiver set.
    pub methods: Vec<usize>,
    /// Some receiver class hits `doesNotUnderstand:` with a handler.
    pub dnu_handled: bool,
    /// Some receiver class hits `doesNotUnderstand:` with no handler.
    pub dnu_unhandled: bool,
}

/// A `new` site's escape fact: whether the freshly allocated object can
/// leave the allocating method.
#[derive(Debug, Clone)]
pub struct FreshFact {
    /// Index into `image.methods`.
    pub method: usize,
    /// The `new` instruction's index.
    pub pc: usize,
    /// The allocated class, when the class operand is constant.
    pub class: Option<ClassId>,
    /// Whether the object may escape (stored, passed, returned, or
    /// aliased); `false` is a proof it never leaves the method.
    pub escapes: bool,
}

/// The whole-image inference result.
#[derive(Debug)]
pub struct Inference {
    /// The closed world analyzed.
    pub universe: ClassUniverse,
    /// Every send site of every method, in (method, pc) order.
    pub sites: Vec<Site>,
    /// Per-method: classes of results the method may write through its
    /// result pointer.
    pub returns: Vec<ClassSet>,
    /// Per-method: whether the method (transitively) may write through
    /// a context pointer — mutating a caller's frame behind its back.
    pub may_write_ctx: Vec<bool>,
    /// Per-method: the receiver classes whose dispatch lands on it.
    pub install_sets: Vec<ClassSet>,
    /// Escape facts for every `new` site.
    pub fresh: Vec<FreshFact>,
    /// True when the image exceeded [`MAX_CLASSES`]: every set is ⊤,
    /// `sites` is empty, and consumers must fall back to their
    /// pre-inference behaviour.
    pub degraded: bool,
    site_base: Vec<usize>,
}

impl Inference {
    /// The sites of one method, indexed by pc.
    pub fn sites_of(&self, method: usize) -> &[Site] {
        let start = self.site_base[method];
        let end = self
            .site_base
            .get(method + 1)
            .copied()
            .unwrap_or(self.sites.len());
        &self.sites[start..end]
    }

    /// The site at (method, pc), if the inference is not degraded.
    pub fn site(&self, method: usize, pc: usize) -> Option<&Site> {
        self.sites_of(method).get(pc)
    }
}

// ---------------------------------------------------------------------
// The abstract state
// ---------------------------------------------------------------------

/// Abstract frame state: class sets for the current and next context's
/// operand slots, plus where the staged zero-address result pointer
/// (`next[0]`) points when it is a tracked `movea` of a current slot.
#[derive(Clone, PartialEq, Eq)]
struct State {
    cur: [ClassSet; N_SLOTS],
    next: [ClassSet; N_SLOTS],
    zero_dst: Option<u8>,
}

impl State {
    fn entry(install: ClassSet, top: ClassSet, uninit: ClassSet) -> State {
        // The only entry guarantee is the dispatch invariant: slot 1
        // holds the receiver, whose class resolution landed here. Every
        // other slot may have been staged arbitrarily by a zero-address
        // caller. The next context is freshly cleared.
        let mut cur = [top; N_SLOTS];
        cur[1] = install;
        State {
            cur,
            next: [uninit; N_SLOTS],
            zero_dst: None,
        }
    }

    fn join(&mut self, other: &State) -> bool {
        let mut grew = false;
        for (a, b) in self.cur.iter_mut().zip(other.cur.iter()) {
            grew |= a.union(b);
        }
        for (a, b) in self.next.iter_mut().zip(other.next.iter()) {
            grew |= a.union(b);
        }
        if self.zero_dst != other.zero_dst && self.zero_dst.is_some() {
            self.zero_dst = None;
            grew = true;
        }
        grew
    }
}

// ---------------------------------------------------------------------
// The analysis
// ---------------------------------------------------------------------

struct Analyzer<'a> {
    image: &'a ProgramImage,
    universe: &'a ClassUniverse,
    resolver: &'a StaticResolver<'a>,
    install_sets: &'a [ClassSet],
    uninit: ClassSet,
    int: ClassSet,
    atom: ClassSet,
    context_set: ClassSet,
    // Cross-method summaries, grown monotonically to fixpoint.
    returns: Vec<ClassSet>,
    may_write_ctx: Vec<bool>,
    // Whether some reachable return of the method may *not* write a
    // result (a no-result return leaves the caller's slot untouched, so
    // call-result updates into such callees must be weak joins).
    may_skip_result: Vec<bool>,
    heap: Vec<ClassSet>,
    changed: bool,
}

impl<'a> Analyzer<'a> {
    fn new(
        image: &'a ProgramImage,
        universe: &'a ClassUniverse,
        resolver: &'a StaticResolver<'a>,
        install_sets: &'a [ClassSet],
    ) -> Analyzer<'a> {
        let mut heap = vec![ClassSet::EMPTY; universe.len()];
        // The engine reifies trap messages as 3-word objects of the root
        // class with arbitrary words inside; reads from an exactly-
        // `Object`-classed receiver must admit anything.
        if let Some(i) = universe.index.get(&ClassTable::OBJECT) {
            heap[*i] = universe.top();
        }
        Analyzer {
            image,
            universe,
            resolver,
            install_sets,
            uninit: universe.singleton(ClassId::UNINIT),
            int: universe.singleton(ClassId::SMALL_INT),
            atom: universe.singleton(ClassId::ATOM),
            context_set: universe.singleton(universe.context),
            returns: vec![ClassSet::EMPTY; image.methods.len()],
            may_write_ctx: vec![false; image.methods.len()],
            may_skip_result: vec![false; image.methods.len()],
            heap,
            changed: false,
        }
    }

    fn operand_classes(&self, code: &CodeObject, st: &State, op: Operand) -> ClassSet {
        match op {
            Operand::Cur(o) => st.cur[o as usize],
            Operand::Next(o) => st.next[o as usize],
            Operand::Const(k) => match code.consts.get(k as usize) {
                Some(w) => match w.primitive_class() {
                    Some(c) => self.universe.singleton(c),
                    // A pointer constant's class is unknowable here.
                    None => self.universe.top(),
                },
                None => self.universe.top(),
            },
        }
    }

    fn const_int(&self, code: &CodeObject, op: Operand) -> Option<i64> {
        match op {
            Operand::Const(k) => match code.consts.get(k as usize) {
                Some(Word::Int(i)) => Some(*i),
                _ => None,
            },
            _ => None,
        }
    }

    /// The result classes a *successful* primitive execution writes, or
    /// `None` when the primitive writes no data result.
    fn prim_result(
        &self,
        p: PrimOp,
        code: &CodeObject,
        instr: Instr,
        bset: &ClassSet,
        cset: &ClassSet,
    ) -> Option<ClassSet> {
        let u = self.universe;
        match p.result_shape() {
            ResultShape::Int => Some(self.int),
            ResultShape::Boolean => Some(self.atom),
            ResultShape::Numeric => {
                let fl = u.singleton(ClassId::FLOAT);
                let b_int = u.contains(bset, ClassId::SMALL_INT);
                let c_int = u.contains(cset, ClassId::SMALL_INT);
                let b_fl = u.contains(bset, ClassId::FLOAT);
                let c_fl = u.contains(cset, ClassId::FLOAT);
                let mut out = ClassSet::EMPTY;
                if b_int && c_int {
                    out.union(&self.int);
                }
                if b_fl || c_fl {
                    out.union(&fl);
                }
                if out.is_empty() {
                    // Non-numeric operands trap; no successful result.
                    out = self.int;
                }
                Some(out)
            }
            ResultShape::OfB => Some(*bset),
            ResultShape::OfC => Some(*cset),
            ResultShape::Pointer => match p {
                PrimOp::Movea => Some(self.context_set),
                PrimOp::New => {
                    let class = match instr {
                        Instr::Three { b, .. } => self
                            .const_int(code, b)
                            .map(|i| ClassId(i as u16))
                            .filter(|c| u.classes.get(*c).is_some()),
                        Instr::Zero { .. } => None,
                    };
                    Some(match class {
                        Some(c) => u.singleton(c),
                        None => u.top(),
                    })
                }
                _ => Some(u.top()),
            },
            ResultShape::None => None,
            ResultShape::Dynamic => match p {
                PrimOp::At => {
                    // Reading through a context pointer reaches any
                    // frame slot: ⊤. Otherwise the per-class heap
                    // summary plus never-written (uninit) words.
                    if u.contains(bset, u.context) {
                        return Some(u.top());
                    }
                    let mut out = self.uninit;
                    for c in u.classes_in(bset) {
                        if let Some(i) = u.index.get(&c) {
                            out.union(&self.heap[*i].clone());
                        }
                    }
                    Some(out)
                }
                _ => Some(u.top()),
            },
        }
    }

    /// Whether this primitive can raise an operand trap that software
    /// dispatch routes to a `badOperands:` handler. Only *pure data*
    /// function-unit failures are offered to trap dispatch; memory,
    /// control and privileged failures kill the engine outright (no
    /// handler state to model — the caller never resumes).
    fn prim_can_trap(&self, p: PrimOp) -> bool {
        p.is_pure_data() && !matches!(p, PrimOp::Move | PrimOp::Same | PrimOp::TagOf)
    }

    /// `badOperands:` handler methods over a receiver set.
    fn bad_handlers(&self, recv: &ClassSet) -> Vec<usize> {
        let mut out = Vec::new();
        for c in self.universe.classes_in(recv) {
            if let Some(m) = self.resolver.handler(c, TrapSelector::BadOperands) {
                if !out.contains(&m) {
                    out.push(m);
                }
            }
        }
        out
    }

    /// Applies the state effects of calling into `callees` (defined
    /// methods and/or trap handlers): havoc on context-writing callees,
    /// result join into the destination, next-context reset.
    ///
    /// The result update is *strong* (replaces the old slot value) when
    /// every callee provably writes a result on every normal return —
    /// otherwise a no-result return would leave the slot's previous
    /// value live, and only a weak join is sound.
    fn apply_call(
        &mut self,
        st: &mut State,
        dest: Option<Operand>,
        zero_result: bool,
        callees: &[usize],
        unresolved: bool,
    ) {
        let mut ret = ClassSet::EMPTY;
        let mut havoc = unresolved;
        let mut strong = !unresolved && !callees.is_empty();
        for m in callees {
            ret.union(&self.returns[*m].clone());
            havoc |= self.may_write_ctx[*m];
            strong &= !self.may_skip_result[*m];
        }
        if unresolved {
            ret = self.universe.top();
        }
        // Where does the callee's result-pointer write land? A
        // three-address call always passes a valid result pointer; a
        // zero-address call passes whatever the caller staged in
        // next[0] — the write only happens if that is a context
        // pointer, and only provably always-happens if it can be
        // nothing else.
        let zero_may_write =
            zero_result && self.universe.contains(&st.next[0], self.universe.context);
        let zero_definite = zero_may_write && st.next[0] == self.context_set;
        let zero_target = zero_may_write.then_some(st.zero_dst);
        if havoc {
            let top = self.universe.top();
            for s in st.cur.iter_mut() {
                *s = top;
            }
        }
        match dest {
            Some(Operand::Cur(o)) => {
                if strong {
                    st.cur[o as usize] = ret;
                } else {
                    st.cur[o as usize].union(&ret);
                }
            }
            // A result pointer into the next context targets the
            // callee's own recycled frame: nothing observable remains.
            Some(Operand::Next(_)) | Some(Operand::Const(_)) | None => {}
        }
        match zero_target {
            Some(Some(slot)) => {
                if strong && zero_definite {
                    st.cur[slot as usize] = ret;
                } else {
                    st.cur[slot as usize].union(&ret);
                }
            }
            Some(None) => {
                // next[0] may hold an untracked context pointer: the
                // result write could land in any caller slot.
                for s in st.cur.iter_mut() {
                    s.union(&ret);
                }
            }
            None => {}
        }
        // The next context is freshly allocated (cleared) after every
        // call returns.
        st.next = [self.uninit; N_SLOTS];
        st.zero_dst = None;
    }

    /// Executes one instruction over the abstract state. When `record`
    /// is given, also appends the site's dispatch facts.
    ///
    /// Returns the state to join into the *fall-through of a returning
    /// call* (the one control edge the CFG does not model: a return-bit
    /// send that resolves to a defined method pushes a continuation at
    /// pc+1).
    fn step(
        &mut self,
        mindex: usize,
        code: &CodeObject,
        pc: usize,
        st: &mut State,
        record: Option<&mut Vec<Site>>,
    ) -> Option<State> {
        let instr = code.instrs[pc];
        let selector = instr.opcode();
        let u_top = self.universe.top();

        // Dispatch key operand sets.
        let (bset, cset, arg, dest) = match instr {
            Instr::Three { b, c, a, .. } => {
                let bs = self.operand_classes(code, st, b);
                let cs = self.operand_classes(code, st, c);
                (bs, cs, Some(cs), Some(a))
            }
            Instr::Zero { nargs, .. } => {
                let bs = st.next[1];
                let cs = st.next[2];
                let arg = if nargs >= 2 { Some(cs) } else { None };
                (bs, cs, arg, None)
            }
        };

        // Resolve over the receiver set.
        let mut prims: Vec<PrimOp> = Vec::new();
        let mut methods: Vec<usize> = Vec::new();
        let mut dnu_handled = false;
        let mut dnu_unhandled = false;
        let receiver_classes: Vec<ClassId> = self.universe.classes_in(&bset).collect();
        for rc in &receiver_classes {
            match self.resolver.resolve(*rc, selector) {
                Target::Primitive(p) => {
                    if !prims.contains(&p) {
                        prims.push(p);
                    }
                }
                Target::Method(m) => {
                    if !methods.contains(&m) {
                        methods.push(m);
                    }
                }
                Target::Dnu { handled } => {
                    if handled {
                        dnu_handled = true;
                    } else {
                        dnu_unhandled = true;
                    }
                    if let Some(h) = self.resolver.handler(*rc, TrapSelector::DoesNotUnderstand) {
                        if !methods.contains(&h) {
                            methods.push(h);
                        }
                    }
                }
            }
        }

        if let Some(out) = record {
            let kind = if bset.is_empty() {
                SiteKind::Dead
            } else if dnu_handled || dnu_unhandled {
                SiteKind::Unresolvable
            } else if prims.len() + methods.len() == 1 {
                SiteKind::Monomorphic
            } else {
                SiteKind::Polymorphic
            };
            out.push(Site {
                method: mindex,
                pc,
                selector,
                receivers: bset,
                arg,
                kind,
                prims: prims.clone(),
                methods: methods.clone(),
                dnu_handled,
                dnu_unhandled,
            });
        }

        let returning = instr.returns();
        let zero_form = matches!(instr, Instr::Zero { .. });
        let mixed = !methods.is_empty() && !prims.is_empty();
        let mut ret_edge: Option<State> = None;

        // ---- defined-method / handler call effects -------------------
        if !methods.is_empty() {
            let callees = methods.clone();
            if returning {
                // The CFG treats a return-bit instruction as a block
                // exit, but a defined target turns it into a plain call
                // whose continuation is pc+1: model that edge.
                let mut post = st.clone();
                self.apply_call(&mut post, dest, false, &callees, false);
                ret_edge = Some(post);
            } else if mixed {
                // Some receivers call, some run a primitive: join the
                // called-path state into the straight-line one.
                let mut called = st.clone();
                self.apply_call(&mut called, dest, zero_form, &callees, false);
                st.join(&called);
            } else {
                self.apply_call(st, dest, zero_form, &callees, false);
            }
        }

        // ---- primitive effects ---------------------------------------
        if !prims.is_empty() && returning {
            // Results flow through the method's own result pointer into
            // the return summary. (An operand trap on a returning
            // instruction is refused by trap dispatch — the send dies —
            // so no handler effects here.)
            for p in prims.clone() {
                let writes = !zero_form
                    && !matches!(
                        p,
                        PrimOp::AtPut | PrimOp::Fjmp | PrimOp::Rjmp | PrimOp::Xfer
                    );
                match self.prim_result(p, code, instr, &bset, &cset) {
                    Some(r) if writes => {
                        self.changed |= self.returns[mindex].union(&r);
                    }
                    _ => {
                        // A no-result return: callers must weak-join.
                        if !self.may_skip_result[mindex] {
                            self.may_skip_result[mindex] = true;
                            self.changed = true;
                        }
                    }
                }
            }
        } else if !prims.is_empty() {
            // Side effects first.
            for p in prims.clone() {
                match p {
                    PrimOp::AtPut => {
                        // a at: b put: c — A holds the stored value.
                        if let Instr::Three { a, .. } = instr {
                            let vset = self.operand_classes(code, st, a);
                            if self.universe.contains(&bset, self.universe.context) {
                                // Writing through a context pointer:
                                // some frame, somewhere, mutates.
                                if !self.may_write_ctx[mindex] {
                                    self.may_write_ctx[mindex] = true;
                                    self.changed = true;
                                }
                            }
                            for rc in &receiver_classes {
                                if *rc == self.universe.context {
                                    continue;
                                }
                                if let Some(i) = self.universe.index.get(rc).copied() {
                                    self.changed |= self.heap[i].union(&vset);
                                }
                            }
                        }
                    }
                    PrimOp::Xfer => {
                        // Control surgery on the context graph: havoc
                        // everything and mark the method context-writing.
                        for s in st.cur.iter_mut() {
                            *s = u_top;
                        }
                        for s in st.next.iter_mut() {
                            *s = u_top;
                        }
                        st.zero_dst = None;
                        if !self.may_write_ctx[mindex] {
                            self.may_write_ctx[mindex] = true;
                            self.changed = true;
                        }
                    }
                    _ => {}
                }
            }
            // One destination write with the union of every primitive's
            // result (strong when no called path competes).
            let mut result: Option<ClassSet> = None;
            for p in prims.clone() {
                if let Some(r) = self.prim_result(p, code, instr, &bset, &cset) {
                    result = Some(match result {
                        Some(mut acc) => {
                            acc.union(&r);
                            acc
                        }
                        None => r,
                    });
                }
            }
            if let (Some(r), Some(a)) = (result, dest) {
                let is_movea = prims.contains(&PrimOp::Movea);
                match a {
                    Operand::Cur(o) => {
                        let o = o as usize;
                        if mixed {
                            st.cur[o].union(&r);
                        } else {
                            st.cur[o] = r;
                        }
                    }
                    Operand::Next(o) => {
                        let o = o as usize;
                        if mixed {
                            st.next[o].union(&r);
                        } else {
                            st.next[o] = r;
                        }
                        if o == 0 {
                            // Track the staged zero-address result
                            // pointer: `movea n0, cX`.
                            st.zero_dst = if is_movea && !mixed {
                                match instr {
                                    Instr::Three {
                                        b: Operand::Cur(x), ..
                                    } => Some(x),
                                    _ => None,
                                }
                            } else {
                                None
                            };
                        }
                    }
                    Operand::Const(_) => {}
                }
            }
            // Operand traps on pure data operations route to
            // `badOperands:` handlers, whose answer lands where the
            // primitive's result would have. Join the trapped path in.
            if prims.iter().any(|p| self.prim_can_trap(*p)) {
                let handlers = self.bad_handlers(&bset);
                if !handlers.is_empty() {
                    let mut trapped = st.clone();
                    self.apply_call(&mut trapped, dest, zero_form, &handlers, false);
                    st.join(&trapped);
                }
            }
        }

        // A receiver set that is ⊤ *and* includes classes we could not
        // enumerate never happens (the universe is closed); degradation
        // is handled before analysis starts. Nothing else to havoc.
        ret_edge
    }

    /// One full pass over a method: intra-method fixpoint with the
    /// current cross-method summaries. Records sites when asked.
    fn analyze_method(&mut self, mindex: usize, record: Option<&mut Vec<Site>>) {
        let code = &self.image.methods[mindex].code;
        if code.instrs.is_empty() {
            return;
        }
        let cfg = Cfg::build(code);
        let entry_state = State::entry(self.install_sets[mindex], self.universe.top(), self.uninit);
        let entry_block = cfg.block_of[0];
        let mut in_states: Vec<Option<State>> = vec![None; cfg.blocks.len()];
        in_states[entry_block] = Some(entry_state);
        let mut work: Vec<usize> = vec![entry_block];
        // Fixpoint without site recording.
        while let Some(bi) = work.pop() {
            let Some(mut st) = in_states[bi].clone() else {
                continue;
            };
            let block = &cfg.blocks[bi];
            let mut edges: Vec<(usize, State)> = Vec::new();
            for pc in block.start..block.end {
                if let Some(post) = self.step(mindex, code, pc, &mut st, None) {
                    if pc + 1 < code.instrs.len() {
                        edges.push((cfg.block_of[pc + 1], post));
                    }
                }
            }
            for succ in &cfg.blocks[bi].succs {
                edges.push((*succ, st.clone()));
            }
            for (target, state) in edges {
                let grew = match &mut in_states[target] {
                    Some(existing) => existing.join(&state),
                    slot @ None => {
                        *slot = Some(state);
                        true
                    }
                };
                if grew && !work.contains(&target) {
                    work.push(target);
                }
            }
        }
        // Site-recording replay over the converged block states.
        if let Some(out) = record {
            let mut sites: Vec<Option<Site>> = vec![None; code.instrs.len()];
            for (bi, block) in cfg.blocks.iter().enumerate() {
                let Some(mut st) = in_states[bi].clone() else {
                    // Unreachable block: dead sites.
                    for (pc, slot) in sites
                        .iter_mut()
                        .enumerate()
                        .take(block.end)
                        .skip(block.start)
                    {
                        *slot = Some(Site {
                            method: mindex,
                            pc,
                            selector: code.instrs[pc].opcode(),
                            receivers: ClassSet::EMPTY,
                            arg: None,
                            kind: SiteKind::Dead,
                            prims: Vec::new(),
                            methods: Vec::new(),
                            dnu_handled: false,
                            dnu_unhandled: false,
                        });
                    }
                    continue;
                };
                let mut rec = Vec::new();
                for pc in block.start..block.end {
                    let _ = self.step(mindex, code, pc, &mut st, Some(&mut rec));
                }
                for site in rec {
                    let pc = site.pc;
                    sites[pc] = Some(site);
                }
            }
            for (pc, s) in sites.into_iter().enumerate() {
                out.push(s.unwrap_or(Site {
                    method: mindex,
                    pc,
                    selector: code.instrs[pc].opcode(),
                    receivers: ClassSet::EMPTY,
                    arg: None,
                    kind: SiteKind::Dead,
                    prims: Vec::new(),
                    methods: Vec::new(),
                    dnu_handled: false,
                    dnu_unhandled: false,
                }));
            }
        }
    }
}

// ---------------------------------------------------------------------
// Escape facts
// ---------------------------------------------------------------------

fn fresh_facts(image: &ProgramImage, sites: &[Site], site_base: &[usize]) -> Vec<FreshFact> {
    let mut out = Vec::new();
    for (mindex, m) in image.methods.iter().enumerate() {
        let code = &m.code;
        for (pc, instr) in code.instrs.iter().enumerate() {
            // A `new` site: the site's sole primitive target is New.
            let base = site_base[mindex];
            let Some(site) = sites.get(base + pc) else {
                continue;
            };
            if site.kind == SiteKind::Dead || !site.prims.contains(&PrimOp::New) {
                continue;
            }
            let (dest, class_op) = match instr {
                Instr::Three { a, b, .. } if !instr.returns() => (*a, *b),
                _ => {
                    // A returning `new` hands the object straight out.
                    out.push(FreshFact {
                        method: mindex,
                        pc,
                        class: None,
                        escapes: true,
                    });
                    continue;
                }
            };
            let class = match class_op {
                Operand::Const(k) => match code.consts.get(k as usize) {
                    Some(Word::Int(i)) => Some(ClassId(*i as u16)),
                    _ => None,
                },
                _ => None,
            };
            let Operand::Cur(slot) = dest else {
                // Staged into the next context: passed to a callee.
                out.push(FreshFact {
                    method: mindex,
                    pc,
                    class,
                    escapes: true,
                });
                continue;
            };
            // Flow-insensitive use scan: the object stays local iff the
            // slot is never redefined elsewhere and every use is as the
            // receiver of a primitive at:/at:put:.
            let mut escapes = false;
            for (qc, other) in code.instrs.iter().enumerate() {
                if qc == pc {
                    continue;
                }
                if crate::dataflow::def_slot(*other) == Some(slot) {
                    escapes = true; // rebinding: tracking ends
                    break;
                }
                let uses = crate::dataflow::use_slots(*other) & (1 << slot);
                if uses == 0 {
                    continue;
                }
                let osite = &sites[base + qc];
                let pure_indexing = osite.methods.is_empty()
                    && !osite.dnu_handled
                    && !osite.dnu_unhandled
                    && osite
                        .prims
                        .iter()
                        .all(|p| matches!(p, PrimOp::At | PrimOp::AtPut));
                let as_receiver_only = match other {
                    Instr::Three { a, b, c, .. } => {
                        *b == Operand::Cur(slot)
                            && *a != Operand::Cur(slot)
                            && *c != Operand::Cur(slot)
                    }
                    Instr::Zero { .. } => false,
                };
                if !(pure_indexing && as_receiver_only) || other.returns() {
                    escapes = true;
                    break;
                }
            }
            out.push(FreshFact {
                method: mindex,
                pc,
                class,
                escapes,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------

/// Runs the whole-image class inference. Verifies the image first —
/// the analysis only trusts verified code.
///
/// # Errors
///
/// The first [`VerifyError`], as [`verify_image`].
pub fn infer_image(image: &ProgramImage) -> Result<Inference, VerifyError> {
    verify_image(image)?;
    let Some(universe) = ClassUniverse::for_image(image) else {
        // Degraded: too many classes for the dense domain. Trivially
        // sound (no claims), no sites.
        let big = image.classes.clone();
        let context = big.by_name("Context").unwrap_or(ClassTable::OBJECT);
        return Ok(Inference {
            universe: ClassUniverse {
                classes: big,
                context,
                ids: Vec::new(),
                index: HashMap::new(),
                top: ClassSet::EMPTY,
            },
            sites: Vec::new(),
            returns: vec![ClassSet::EMPTY; image.methods.len()],
            may_write_ctx: vec![true; image.methods.len()],
            install_sets: vec![ClassSet::EMPTY; image.methods.len()],
            fresh: Vec::new(),
            degraded: true,
            site_base: vec![0; image.methods.len() + 1],
        });
    };

    let resolver = StaticResolver::new(image, &universe);
    // Install sets: for each class, where does each method's selector
    // land? (The dispatch invariant that seeds every entry state.)
    let mut install_sets = vec![ClassSet::EMPTY; image.methods.len()];
    for class in universe.ids().to_vec() {
        for (i, m) in image.methods.iter().enumerate() {
            if resolver.resolve(class, m.selector) == Target::Method(i) {
                install_sets[i].union(&universe.singleton(class));
            }
        }
    }

    let mut analyzer = Analyzer::new(image, &universe, &resolver, &install_sets);
    // Global fixpoint over the cross-method summaries (returns, heap,
    // may_write_ctx) — all monotone, so this terminates.
    loop {
        analyzer.changed = false;
        for m in 0..image.methods.len() {
            analyzer.analyze_method(m, None);
        }
        if !analyzer.changed {
            break;
        }
    }
    // Final collection pass with converged summaries.
    let mut sites = Vec::new();
    let mut site_base = Vec::with_capacity(image.methods.len() + 1);
    for m in 0..image.methods.len() {
        site_base.push(sites.len());
        analyzer.analyze_method(m, Some(&mut sites));
    }
    site_base.push(sites.len());

    let returns = analyzer.returns.clone();
    let may_write_ctx = analyzer.may_write_ctx.clone();
    let fresh = fresh_facts(image, &sites, &site_base);
    Ok(Inference {
        universe,
        sites,
        returns,
        may_write_ctx,
        install_sets,
        fresh,
        degraded: false,
        site_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::Assembler;

    fn double_image() -> ProgramImage {
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("double");
        let mut asm = Assembler::new("SmallInteger ≫ double", 1);
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        img
    }

    #[test]
    fn install_set_seeds_the_receiver() {
        let img = double_image();
        let inf = infer_image(&img).unwrap();
        assert!(!inf.degraded);
        // `double` installs on SmallInteger with no subclasses: the
        // receiver of `self + self` is exactly SmallInteger.
        let site = inf.site(0, 0).unwrap();
        assert_eq!(site.selector, Opcode::ADD);
        assert_eq!(
            inf.universe.classes_in(&site.receivers).collect::<Vec<_>>(),
            vec![ClassId::SMALL_INT]
        );
        assert_eq!(site.kind, SiteKind::Monomorphic);
        assert_eq!(site.prims, vec![PrimOp::Add]);
        // The add's result is an integer; the return summary says so.
        assert_eq!(
            inf.universe.classes_in(&inf.returns[0]).collect::<Vec<_>>(),
            vec![ClassId::SMALL_INT]
        );
    }

    #[test]
    fn subclass_widens_the_install_set() {
        let mut img = double_image();
        // A subclass of SmallInteger inherits `double`; the receiver
        // set must include it.
        let sub = img
            .classes
            .define("CountedInt", Some(ClassId::SMALL_INT), 0)
            .unwrap();
        let inf = infer_image(&img).unwrap();
        let site = inf.site(0, 0).unwrap();
        assert!(inf.universe.contains(&site.receivers, ClassId::SMALL_INT));
        assert!(inf.universe.contains(&site.receivers, sub));
    }

    #[test]
    fn uninstalled_selector_is_guaranteed_dnu() {
        let mut img = double_image();
        let ghost = img.opcodes.intern("ghost");
        let sel = img.opcodes.intern("haunt");
        let mut asm = Assembler::new("SmallInteger ≫ haunt", 1);
        asm.emit_three(
            Opcode(ghost.0),
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        let inf = infer_image(&img).unwrap();
        let site = inf.site(1, 0).unwrap();
        assert_eq!(site.kind, SiteKind::Unresolvable);
        assert!(site.dnu_unhandled);
        assert!(!site.dnu_handled);
    }

    #[test]
    fn new_with_constant_class_is_tracked_and_local() {
        let mut img = ProgramImage::empty();
        let point = img
            .classes
            .define("Point", Some(ClassTable::OBJECT), 2)
            .unwrap();
        let sel = img.opcodes.intern("probe");
        let mut asm = Assembler::new("SmallInteger ≫ probe", 1);
        let kc = asm.intern_const(Word::Int(point.0 as i64));
        let k2 = asm.intern_const(Word::Int(2));
        let k0 = asm.intern_const(Word::Int(0));
        // c2 := Point new 2; c2 at: 0 put: self; c3 := c2 at: 0; ^c3
        asm.emit_three(
            Opcode::NEW,
            Operand::Cur(2),
            Operand::Const(kc),
            Operand::Const(k2),
        )
        .unwrap();
        asm.emit_three(
            Opcode::RAWATPUT,
            Operand::Cur(1),
            Operand::Cur(2),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three(
            Opcode::RAWAT,
            Operand::Cur(3),
            Operand::Cur(2),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        let inf = infer_image(&img).unwrap();
        // The new site's result class is the constant Point.
        let at_site = inf.site(0, 2).unwrap();
        assert!(inf.universe.contains(&at_site.receivers, point));
        assert!(!inf.universe.is_top(&at_site.receivers));
        // The heap summary: reading Point[0] yields what was stored
        // (the SmallInteger receiver) or uninit.
        let read = inf.site(0, 3).unwrap();
        let ret_classes: Vec<_> = inf.universe.classes_in(&inf.returns[0]).collect();
        assert!(ret_classes.contains(&ClassId::SMALL_INT), "{ret_classes:?}");
        assert!(ret_classes.contains(&ClassId::UNINIT), "{ret_classes:?}");
        assert!(!inf.universe.is_top(&read.receivers));
        // The fresh Point never leaves the method.
        let fact = inf
            .fresh
            .iter()
            .find(|f| f.method == 0 && f.pc == 0)
            .unwrap();
        assert_eq!(fact.class, Some(point));
        assert!(!fact.escapes, "pure at:/at:put: uses must not escape");
    }

    #[test]
    fn defined_call_joins_callee_returns_and_resets_staging() {
        let mut img = ProgramImage::empty();
        let double = img.opcodes.intern("double");
        let sel = img.opcodes.intern("quad");
        let mut asm = Assembler::new("SmallInteger ≫ double", 1);
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, double, asm.finish().unwrap());
        // quad: c2 := self double (three-address call), ^c2
        let mut asm = Assembler::new("SmallInteger ≫ quad", 1);
        asm.emit_three(
            Opcode(double.0),
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        let inf = infer_image(&img).unwrap();
        let call = inf.site(1, 0).unwrap();
        assert_eq!(call.kind, SiteKind::Monomorphic);
        assert_eq!(call.methods, vec![0]);
        // quad's return includes double's Int (weak join admits more).
        assert!(inf.universe.contains(&inf.returns[1], ClassId::SMALL_INT));
        assert!(!inf.may_write_ctx[0]);
        assert!(!inf.may_write_ctx[1]);
    }

    #[test]
    fn entry_state_trusts_only_the_dispatch_invariant() {
        // A method reading an argument slot (slot 2) must see ⊤ — any
        // zero-address caller can stage anything there.
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("first:");
        let mut asm = Assembler::new("SmallInteger ≫ first:", 2);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        let inf = infer_image(&img).unwrap();
        assert!(inf.universe.is_top(&inf.returns[0]));
    }
}
