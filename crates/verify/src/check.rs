//! The structural verifier: load-time rejection of malformed methods.
//!
//! Every check here mirrors a condition the interpreter would otherwise
//! discover mid-run — as a trap at best, and historically as a panic or
//! an unbounded allocation on the hot path. Verification moves the
//! discovery to image-build time and attaches provenance.

use com_core::{ProgramImage, CONTEXT_WORDS, OPERAND_BIAS};
use com_isa::{CodeObject, Instr, Opcode, OpcodeTable, Operand};
use com_obj::TrapSelector;

use crate::error::{Provenance, VerifyError, VerifyErrorKind};

/// The largest operand offset that names a context slot inside the fixed
/// context geometry: offsets are biased past the two linkage words, so
/// `MAX_SLOT + OPERAND_BIAS` is the last of the [`CONTEXT_WORDS`] words.
/// The operand *encoding* admits offsets up to
/// [`Operand::MAX_OFFSET`](com_isa::Operand::MAX_OFFSET) (63); anything
/// above `MAX_SLOT` is encodable but guaranteed to trap.
pub const MAX_SLOT: u8 = (CONTEXT_WORDS - OPERAND_BIAS - 1) as u8;

/// Verifies every compiled method of `image`, failing on the first
/// malformed one.
///
/// This is the load-time gate [`VmBuilder`](../com_vm) runs in strict
/// mode: an image that passes cannot make the interpreter read an
/// out-of-geometry context slot, index past a constant table, jump out
/// of a method body, or dispatch an un-interned opcode — and its trap
/// handlers have the arity the reified-send protocol requires.
///
/// # Errors
///
/// The first [`VerifyError`], with method and instruction provenance.
pub fn verify_image(image: &ProgramImage) -> Result<(), VerifyError> {
    let dnu = image.opcodes.get(TrapSelector::DoesNotUnderstand.name());
    let bad_ops = image.opcodes.get(TrapSelector::BadOperands.name());
    for (index, m) in image.methods.iter().enumerate() {
        let prov = Provenance {
            index: Some(index),
            name: m.code.name.clone(),
        };
        verify_code_at(&m.code, &image.opcodes, &prov)?;
        // Trap-handler arity: the machine reifies a failed send into one
        // message argument, so a handler is exactly receiver + message.
        for (sel, name) in [
            (dnu, TrapSelector::DoesNotUnderstand.name()),
            (bad_ops, TrapSelector::BadOperands.name()),
        ] {
            if sel == Some(m.selector) && m.code.n_args != 2 {
                return Err(VerifyError {
                    method: prov,
                    offset: None,
                    kind: VerifyErrorKind::BadHandlerArity {
                        selector: name,
                        n_args: m.code.n_args,
                    },
                });
            }
        }
    }
    Ok(())
}

/// Verifies a single code object against an opcode table (no handler
/// arity check — that needs the method's install selector, which a bare
/// code object does not carry).
///
/// # Errors
///
/// The first [`VerifyError`], with instruction provenance.
pub fn verify_code(code: &CodeObject, opcodes: &OpcodeTable) -> Result<(), VerifyError> {
    let prov = Provenance {
        index: None,
        name: code.name.clone(),
    };
    verify_code_at(code, opcodes, &prov)
}

/// Verifies raw 36-bit instruction words as a method body: each word must
/// decode ([`Instr::decode`]) and the decoded stream must pass
/// [`verify_code`]. This is the entry point for untrusted words (image
/// snapshots, the mutation suite) — compiled [`Instr`] streams are
/// decodable by construction, so [`verify_code`] never sees `V007`.
///
/// # Errors
///
/// [`VerifyErrorKind::Undecodable`] (chaining to the
/// [`IsaError`](com_isa::IsaError)) for a word that is not an
/// instruction, then anything [`verify_code`] rejects.
pub fn verify_words(
    name: &str,
    n_args: u8,
    words: &[u64],
    consts: &[com_mem::Word],
    opcodes: &OpcodeTable,
) -> Result<(), VerifyError> {
    let mut instrs = Vec::with_capacity(words.len());
    for (pc, w) in words.iter().enumerate() {
        match Instr::decode(*w) {
            Ok(i) => instrs.push(i),
            Err(e) => {
                return Err(VerifyError {
                    method: Provenance {
                        index: None,
                        name: name.to_string(),
                    },
                    offset: Some(pc),
                    kind: VerifyErrorKind::Undecodable(e),
                })
            }
        }
    }
    let code = CodeObject {
        name: name.to_string(),
        n_args,
        instrs,
        consts: consts.to_vec(),
    };
    verify_code(&code, opcodes)
}

fn verify_code_at(
    code: &CodeObject,
    opcodes: &OpcodeTable,
    prov: &Provenance,
) -> Result<(), VerifyError> {
    let fail = |offset: Option<usize>, kind: VerifyErrorKind| {
        Err(VerifyError {
            method: prov.clone(),
            offset,
            kind,
        })
    };
    // Declared args land in operand slots 0..n_args (receiver included),
    // so the last one must still be inside the geometry.
    if code.n_args > MAX_SLOT + 1 {
        return fail(
            None,
            VerifyErrorKind::TooManyArgs {
                n_args: code.n_args,
            },
        );
    }
    for (pc, instr) in code.instrs.iter().enumerate() {
        if let Err(kind) = verify_instr(code, pc, *instr, opcodes) {
            return fail(Some(pc), kind);
        }
    }
    Ok(())
}

/// The statically known jump target of the conditional jump at `pc`, if
/// the instruction is one (assumes the instruction already verified).
pub(crate) fn jump_target(code: &CodeObject, pc: usize, instr: Instr) -> Option<usize> {
    if !instr.is_jump() {
        return None;
    }
    let [_, _, c] = instr.operands()?;
    let Operand::Const(k) = c else { return None };
    let d = code.consts.get(k as usize)?.as_int()?;
    let t = if instr.opcode() == Opcode::FJMP {
        (pc as i64 + 1).checked_add(d)?
    } else {
        (pc as i64 + 1).checked_sub(d)?
    };
    usize::try_from(t).ok()
}

fn verify_instr(
    code: &CodeObject,
    pc: usize,
    instr: Instr,
    opcodes: &OpcodeTable,
) -> Result<(), VerifyErrorKind> {
    let op = instr.opcode();
    if !opcodes.contains(op) {
        return Err(VerifyErrorKind::UnknownOpcode(op));
    }
    match instr.operands() {
        Some(operands) => {
            // Constructors and decode both refuse a constant-mode
            // destination; re-checked here so even a hand-built `Instr`
            // enum value cannot slip one past the gate.
            if operands[0].is_const() {
                return Err(VerifyErrorKind::Undecodable(
                    com_isa::IsaError::MisplacedConstant { position: 0 },
                ));
            }
            for (name, operand) in ['A', 'B', 'C'].into_iter().zip(operands) {
                match operand {
                    Operand::Cur(o) | Operand::Next(o) if o > MAX_SLOT => {
                        return Err(VerifyErrorKind::SlotOutOfRange {
                            operand: name,
                            offset: o,
                        });
                    }
                    Operand::Const(i) if i as usize >= code.consts.len() => {
                        return Err(VerifyErrorKind::ConstOutOfRange {
                            operand: name,
                            index: i,
                            table_len: code.consts.len(),
                        });
                    }
                    _ => {}
                }
            }
            if instr.is_jump() {
                verify_jump(code, pc, instr, operands[2])?;
            }
        }
        None => {
            // Zero-address: operands are implicit next-context locals at
            // fixed small offsets (decode bounds nargs to 2), so only a
            // dynamic jump is rejectable here.
            if op == Opcode::FJMP || op == Opcode::RJMP {
                return Err(VerifyErrorKind::WildBranch {
                    reason: "zero-address jump takes its displacement from a context slot",
                    target: None,
                });
            }
        }
    }
    Ok(())
}

fn verify_jump(
    code: &CodeObject,
    pc: usize,
    instr: Instr,
    c: Operand,
) -> Result<(), VerifyErrorKind> {
    let wild = |reason, target| Err(VerifyErrorKind::WildBranch { reason, target });
    let Operand::Const(k) = c else {
        return wild("jump displacement must be a constant operand", None);
    };
    // In-range: checked above.
    let Some(d) = code.consts[k as usize].as_int() else {
        return wild("jump displacement must be an integer constant", None);
    };
    if d < 0 {
        return wild("jump displacement magnitude is negative", None);
    }
    // Displacement is measured from pc + 1 (the IP has already advanced).
    let target = if instr.opcode() == Opcode::FJMP {
        (pc as i64 + 1).checked_add(d)
    } else {
        (pc as i64 + 1).checked_sub(d)
    };
    let Some(target) = target else {
        return wild("branch target outside the method body", None);
    };
    if target < 0 || target as usize >= code.instrs.len() {
        return wild("branch target outside the method body", Some(target));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::Assembler;
    use com_mem::{ClassId, Word};

    fn table() -> OpcodeTable {
        OpcodeTable::new()
    }

    /// A minimal valid method: `c4 <- c3 + 1`, return.
    fn valid_code() -> CodeObject {
        let mut asm = Assembler::new("t", 1);
        let k = asm.intern_const(Word::Int(1));
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(3),
            Operand::Const(k),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        asm.finish().unwrap()
    }

    #[test]
    fn accepts_valid_code() {
        assert_eq!(verify_code(&valid_code(), &table()), Ok(()));
    }

    #[test]
    fn rejects_uninterned_opcode() {
        let mut code = valid_code();
        code.instrs[0] = Instr::three(
            Opcode(40), // the gap between standard selectors and USER_BASE
            Operand::Cur(4),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        let e = verify_code(&code, &table()).unwrap_err();
        assert_eq!(e.code(), "V001");
        assert_eq!(e.offset, Some(0));
    }

    #[test]
    fn rejects_out_of_geometry_slot() {
        let mut code = valid_code();
        // Offset 63 is encodable but beyond the 32-word context.
        code.instrs[0] = Instr::three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(63),
            Operand::Cur(3),
        )
        .unwrap();
        let e = verify_code(&code, &table()).unwrap_err();
        assert_eq!(e.code(), "V003");
        assert!(matches!(
            e.kind,
            VerifyErrorKind::SlotOutOfRange {
                operand: 'B',
                offset: 63
            }
        ));
        assert!(verify_code(&valid_code(), &table()).is_ok());
        // MAX_SLOT itself is fine.
        let mut code = valid_code();
        code.instrs[0] = Instr::three(
            Opcode::ADD,
            Operand::Cur(MAX_SLOT),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        assert!(verify_code(&code, &table()).is_ok());
    }

    #[test]
    fn rejects_out_of_range_constant() {
        let mut code = valid_code();
        code.instrs[0] = Instr::three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(3),
            Operand::Const(9),
        )
        .unwrap();
        let e = verify_code(&code, &table()).unwrap_err();
        assert_eq!(e.code(), "V004");
    }

    #[test]
    fn rejects_wild_branches() {
        // Forward jump past the end of the method.
        let mut code = valid_code();
        let k = code.consts.len() as u8;
        code.consts.push(Word::Int(50));
        code.instrs[0] = Instr::three(
            Opcode::FJMP,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Const(k),
        )
        .unwrap();
        let e = verify_code(&code, &table()).unwrap_err();
        assert_eq!(e.code(), "V002");
        // Backward jump before the start.
        code.consts[k as usize] = Word::Int(40);
        code.instrs[0] = Instr::three(
            Opcode::RJMP,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Const(k),
        )
        .unwrap();
        assert_eq!(verify_code(&code, &table()).unwrap_err().code(), "V002");
        // Non-integer displacement.
        code.consts[k as usize] = Word::Uninit;
        assert_eq!(verify_code(&code, &table()).unwrap_err().code(), "V002");
        // Non-constant displacement.
        code.instrs[0] = Instr::three(
            Opcode::FJMP,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(4),
        )
        .unwrap();
        assert_eq!(verify_code(&code, &table()).unwrap_err().code(), "V002");
        // Zero-address jump.
        code.instrs[0] = Instr::zero(Opcode::FJMP, 0, false).unwrap();
        assert_eq!(verify_code(&code, &table()).unwrap_err().code(), "V002");
    }

    #[test]
    fn valid_jumps_pass() {
        let mut asm = Assembler::new("loop", 1);
        let top = asm.label();
        asm.bind(top);
        asm.emit_three(
            Opcode::SUB,
            Operand::Cur(3),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        asm.jump_if(Operand::Cur(3), top);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        let code = asm.finish().unwrap();
        assert_eq!(verify_code(&code, &table()), Ok(()));
    }

    #[test]
    fn rejects_excess_arity() {
        let mut code = valid_code();
        code.n_args = MAX_SLOT + 2;
        assert_eq!(verify_code(&code, &table()).unwrap_err().code(), "V006");
    }

    #[test]
    fn word_level_entry_rejects_undecodable_words() {
        use std::error::Error;
        let e = verify_words("t", 1, &[1 << 36], &[], &table()).unwrap_err();
        assert_eq!(e.code(), "V007");
        assert!(e.source().is_some(), "V007 must chain to the IsaError");
        // Decodable words flow into the structural checks.
        let i = Instr::three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(63),
            Operand::Cur(3),
        )
        .unwrap();
        let e = verify_words("t", 1, &[i.encode()], &[], &table()).unwrap_err();
        assert_eq!(e.code(), "V003");
    }

    #[test]
    fn image_verification_checks_handler_arity() {
        let mut img = ProgramImage::empty();
        let dnu = img.opcodes.intern(TrapSelector::DoesNotUnderstand.name());
        let mut asm = Assembler::new("Thing ≫ doesNotUnderstand:", 1); // wrong: needs 2
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(0),
            Operand::Cur(0),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, dnu, asm.finish().unwrap());
        let e = verify_image(&img).unwrap_err();
        assert_eq!(e.code(), "V005");
        assert_eq!(e.method.index, Some(0));
        // Correct arity passes.
        let mut img = ProgramImage::empty();
        let dnu = img.opcodes.intern(TrapSelector::DoesNotUnderstand.name());
        let mut asm = Assembler::new("Thing ≫ doesNotUnderstand:", 2);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, dnu, asm.finish().unwrap());
        assert_eq!(verify_image(&img), Ok(()));
    }
}
