//! Acceptance: the strict verifier admits every image the repo already
//! ships — all benchmark workloads and the standard library, unchanged —
//! and refuses every malformed-image class with a typed error at the
//! load boundary. Turning strict verification on must not perturb
//! execution: run and run_stepwise stay bit-identical over a verified
//! image.

use com_core::{Machine, MachineConfig, ProgramImage};
use com_isa::{Assembler, Instr, Opcode, Operand};
use com_mem::{ClassId, Word};
use com_stc::{compile_com, CompileOptions};
use com_verify::{lint_image, verify_image, Severity};
use com_vm::{Vm, VmError};
use com_workloads as workloads;

#[test]
fn every_shipped_workload_verifies_unchanged() {
    for w in workloads::all() {
        let image = compile_com(w.source, CompileOptions::default())
            .unwrap_or_else(|e| panic!("workload {} does not compile: {e}", w.name));
        verify_image(&image)
            .unwrap_or_else(|e| panic!("workload {} fails verification: {e}", w.name));
    }
}

#[test]
fn the_standard_library_verifies_and_lints_warning_free() {
    let image = compile_com("", CompileOptions::default()).unwrap();
    assert!(!image.methods.is_empty());
    let diags = lint_image(&image).unwrap();
    let warnings: Vec<_> = diags
        .iter()
        .filter(|d| d.severity() == Severity::Warning)
        .collect();
    assert!(warnings.is_empty(), "stdlib warnings: {warnings:?}");
}

#[test]
fn every_workload_lints_warning_free() {
    for w in workloads::all() {
        let image = compile_com(w.source, CompileOptions::default()).unwrap();
        let diags = lint_image(&image).unwrap();
        let warnings: Vec<_> = diags
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
            .collect();
        assert!(warnings.is_empty(), "workload {}: {warnings:?}", w.name);
    }
}

/// One image per malformed-image class, all refused with the right code
/// at the `Vm::from_image` load boundary — typed, never a panic.
#[test]
fn every_malformed_class_is_refused_at_load_with_its_code() {
    fn image_with(code: com_isa::CodeObject) -> ProgramImage {
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("probe");
        img.add_method(ClassId::SMALL_INT, sel, code);
        img
    }
    fn ret(asm: &mut Assembler) {
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
    }

    // V001 — un-interned opcode.
    let mut asm = Assembler::new("t", 1);
    ret(&mut asm);
    let mut code = asm.finish().unwrap();
    code.instrs[0] = Instr::three_ret(
        Opcode(40),
        Operand::Cur(0),
        Operand::Cur(1),
        Operand::Cur(1),
        true,
    )
    .unwrap();
    let bad_opcode = image_with(code);

    // V002 — wild branch off the end of the body.
    let mut asm = Assembler::new("t", 1);
    let k = asm.intern_const(Word::Int(99));
    asm.emit_three(
        Opcode::FJMP,
        Operand::Cur(0),
        Operand::Cur(1),
        Operand::Const(k),
    )
    .unwrap();
    ret(&mut asm);
    let wild_branch = image_with(asm.finish().unwrap());

    // V003 — slot beyond the context geometry.
    let mut asm = Assembler::new("t", 1);
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(63),
        Operand::Cur(63),
    )
    .unwrap();
    let wild_slot = image_with(asm.finish().unwrap());

    // V004 — constant index past the table.
    let mut asm = Assembler::new("t", 1);
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Const(9),
        Operand::Const(9),
    )
    .unwrap();
    let wild_const = image_with(asm.finish().unwrap());

    // V005 — trap handler with the wrong arity.
    let mut img = ProgramImage::empty();
    let dnu = img.opcodes.intern("doesNotUnderstand:");
    let mut asm = Assembler::new("t", 1);
    ret(&mut asm);
    img.add_method(ClassId::SMALL_INT, dnu, asm.finish().unwrap());
    let bad_handler = img;

    for (image, want) in [
        (bad_opcode, "V001"),
        (wild_branch, "V002"),
        (wild_slot, "V003"),
        (wild_const, "V004"),
        (bad_handler, "V005"),
    ] {
        match Vm::from_image(image, MachineConfig::default()) {
            Err(VmError::Verify(e)) => assert_eq!(e.code(), want, "{e}"),
            other => panic!("expected {want} refusal, got {other:?}"),
        }
    }
}

/// Strict verification on the builder path changes nothing about
/// execution: run and run_stepwise remain bit-identical over a verified
/// workload, and results match the workload's calibrated expectation.
#[test]
fn verified_images_run_bit_identically_both_interpreters() {
    for w in workloads::all().into_iter().take(4) {
        let image = compile_com(w.source, CompileOptions::default()).unwrap();
        verify_image(&image).unwrap();
        let observe = |stepwise: bool| {
            let mut m = Machine::new(MachineConfig::default());
            m.load(&image).unwrap();
            let sel = m.opcodes().get(w.entry).unwrap();
            m.start_send(sel, Word::Int(w.size), &[]).unwrap();
            let r = if stepwise {
                m.run_stepwise(50_000_000)
            } else {
                m.run(50_000_000)
            }
            .unwrap();
            (r.result, r.steps, m.stats())
        };
        let fast = observe(false);
        let slow = observe(true);
        assert_eq!(fast, slow, "{} diverged between interpreters", w.name);
        assert_eq!(fast.0, Word::Int(w.expected), "{} result", w.name);
    }
}
