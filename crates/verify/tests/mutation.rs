//! Seeded mutation suite: flip bits in valid images' code words, by the
//! thousand, and require that **every** mutant is either rejected by the
//! static verifier or executes to a typed result under a fuel budget.
//! Zero interpreter panics, across the whole space the mutator reaches —
//! the verifier's soundness contract, falsified empirically.

use com_core::{Machine, MachineConfig};
use com_isa::Instr;
use com_stc::{compile_com, CompileOptions};
use com_verify::verify_words;
use com_vm::Word;

/// xorshift64*: deterministic, seedable, dependency-free.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const PROGRAM: &str = r#"
    class SmallInteger
      method mutTarget | a b |
        a := self + 3.
        b := a * 2.
        a < b ifTrue: [ b := b - self ].
        1 to: 5 do: [ :i | a := a + i ].
        ^a rem: 97
      end
    end
"#;

const MUTANTS: usize = 3000;
const FUEL: u64 = 20_000;

#[test]
fn thousands_of_bitflipped_images_never_panic_the_interpreter() {
    let image = compile_com(PROGRAM, CompileOptions::default()).unwrap();
    assert!(com_verify::verify_image(&image).is_ok());
    let mut rng = Rng(0x5eed_c0de_0b5e_55ed);
    let mut rejected = 0usize;
    let mut executed = 0usize;
    let mut trapped = 0usize;

    for _ in 0..MUTANTS {
        // Pick a method (bias towards the entry so mutants actually run),
        // encode its body, and flip 1–3 bits in one instruction word.
        let mi = if rng.below(2) == 0 {
            image
                .methods
                .iter()
                .position(|m| m.code.name.contains("mutTarget"))
                .unwrap()
        } else {
            rng.below(image.methods.len() as u64) as usize
        };
        let method = &image.methods[mi];
        if method.code.instrs.is_empty() {
            continue;
        }
        let mut words: Vec<u64> = method.code.instrs.iter().map(Instr::encode).collect();
        let wi = rng.below(words.len() as u64) as usize;
        for _ in 0..=rng.below(3) {
            // Mostly the 36 architectural bits; occasionally junk above
            // them, which must be rejected as undecodable (V007).
            let bit = if rng.below(16) == 0 {
                36 + rng.below(28)
            } else {
                rng.below(36)
            };
            words[wi] ^= 1u64 << bit;
        }

        let verdict = verify_words(
            &method.code.name,
            method.code.n_args,
            &words,
            &method.code.consts,
            &image.opcodes,
        );
        match verdict {
            Err(_) => rejected += 1,
            Ok(()) => {
                // The verifier admitted the mutant: it must run — to a
                // result or a *typed* trap — without panicking.
                let mut mutant = image.clone();
                mutant.methods[mi].code.instrs = words
                    .iter()
                    .map(|w| Instr::decode(*w).expect("verified words decode"))
                    .collect();
                let mut machine = Machine::new(MachineConfig::default());
                if machine.load(&mutant).is_err() {
                    // A typed load refusal is an acceptable outcome too.
                    trapped += 1;
                    continue;
                }
                match machine.send("mutTarget", Word::Int(7), &[], FUEL) {
                    Ok(_) => executed += 1,
                    Err(_) => trapped += 1,
                }
            }
        }
    }

    // The suite must actually exercise both sides of the contract.
    assert!(rejected > 100, "only {rejected} mutants rejected");
    assert!(
        executed + trapped > 100,
        "only {} mutants admitted (executed {executed}, trapped {trapped})",
        executed + trapped
    );
    println!(
        "mutation: {MUTANTS} mutants — {rejected} rejected, \
         {executed} ran to a result, {trapped} typed-trapped, 0 panics"
    );
}
