//! Virtual → absolute translation with an ATLB.
//!
//! §3.1: "A virtual address is translated to an absolute address aided by an
//! address translation lookaside buffer (ATLB). … Because virtual addresses
//! may be aliased and objects may move in physical memory, it is
//! prohibitively expensive to directly cache the translation from virtual to
//! physical space. For this reason, the translation proceeds in two steps."

use std::collections::HashMap;

use com_cache::{CacheConfig, CacheStats, FlatCache, SetAssocCache};
use com_fpa::{Fpa, FpaFormat, SegmentName};

use crate::{AbsAddr, ClassId, MemError, SegmentDescriptor, TeamId, TeamSpace};

/// The result of a successful virtual→absolute translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The absolute address of the referenced word.
    pub abs: AbsAddr,
    /// The object's class (from the segment descriptor) — the 16-bit class
    /// tag cached alongside words in the context cache.
    pub class: ClassId,
    /// Whether the descriptor came from the ATLB (vs the segment table).
    pub atlb_hit: bool,
}

/// ATLB storage: the flat probe array, or the pre-overhaul generic cache
/// (kept for the bench baseline). Architecturally interchangeable.
#[derive(Debug, Clone)]
enum Atlb {
    Flat(FlatCache<(TeamId, SegmentName), SegmentDescriptor>),
    Reference(SetAssocCache<(TeamId, SegmentName), SegmentDescriptor>),
}

impl Atlb {
    #[inline]
    fn lookup(&mut self, key: &(TeamId, SegmentName)) -> Option<&SegmentDescriptor> {
        match self {
            Atlb::Flat(c) => c.lookup(key),
            Atlb::Reference(c) => c.lookup(key),
        }
    }

    fn fill(&mut self, key: (TeamId, SegmentName), desc: SegmentDescriptor) {
        match self {
            Atlb::Flat(c) => {
                c.fill(key, desc);
            }
            Atlb::Reference(c) => {
                c.fill(key, desc);
            }
        }
    }

    fn invalidate(&mut self, key: &(TeamId, SegmentName)) {
        match self {
            Atlb::Flat(c) => {
                c.invalidate(key);
            }
            Atlb::Reference(c) => {
                c.invalidate(key);
            }
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            Atlb::Flat(c) => c.stats(),
            Atlb::Reference(c) => c.stats(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            Atlb::Flat(c) => c.reset_stats(),
            Atlb::Reference(c) => c.reset_stats(),
        }
    }
}

/// The memory management unit: team spaces plus the ATLB.
#[derive(Debug, Clone)]
pub struct Mmu {
    format: FpaFormat,
    teams: HashMap<TeamId, TeamSpace>,
    atlb: Atlb,
    bounds_traps: u64,
    forward_traps: u64,
}

impl Mmu {
    /// Default ATLB geometry: 64 entries, 2-way (a "modest" buffer in the
    /// spirit of §5's translation caches).
    pub const DEFAULT_ATLB_ENTRIES: usize = 64;

    /// Creates an MMU with no teams and the default ATLB.
    pub fn new(format: FpaFormat) -> Self {
        let cfg = CacheConfig::new(Self::DEFAULT_ATLB_ENTRIES, 2).expect("valid default");
        Self::with_atlb(format, cfg)
    }

    /// Creates an MMU with a custom ATLB geometry.
    pub fn with_atlb(format: FpaFormat, atlb: CacheConfig) -> Self {
        Mmu {
            format,
            teams: HashMap::new(),
            // The ATLB is probed on every translation — it lives in a
            // flat probe array with the fast hash. The exact conflict
            // mapping is not a recorded figure (unlike the trace-replay
            // caches), so the hash change is fair game.
            atlb: Atlb::Flat(FlatCache::new(atlb)),
            bounds_traps: 0,
            forward_traps: 0,
        }
    }

    /// Switches the ATLB to the pre-overhaul generic cache storage (the
    /// wall-clock bench baseline). Drops current ATLB contents.
    pub fn set_reference_paths(&mut self, reference: bool) {
        let cfg = match &self.atlb {
            Atlb::Flat(c) => c.config(),
            Atlb::Reference(c) => c.config(),
        };
        self.atlb = if reference {
            Atlb::Reference(SetAssocCache::new(cfg))
        } else {
            Atlb::Flat(FlatCache::new(cfg))
        };
    }

    /// The address format in use.
    pub fn format(&self) -> FpaFormat {
        self.format
    }

    /// Creates a team space; replaces any existing team of the same id.
    pub fn create_team(&mut self, id: TeamId) -> &mut TeamSpace {
        self.teams.insert(id, TeamSpace::new(id, self.format));
        self.teams.get_mut(&id).expect("just inserted")
    }

    /// Borrows a team space.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownTeam`] if the team does not exist.
    pub fn team(&self, id: TeamId) -> Result<&TeamSpace, MemError> {
        self.teams.get(&id).ok_or(MemError::UnknownTeam(id))
    }

    /// Mutably borrows a team space.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownTeam`] if the team does not exist.
    pub fn team_mut(&mut self, id: TeamId) -> Result<&mut TeamSpace, MemError> {
        self.teams.get_mut(&id).ok_or(MemError::UnknownTeam(id))
    }

    /// Fetches the descriptor for `(team, segment)`, consulting the ATLB
    /// first and filling it from the segment table on a miss.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownTeam`] or [`MemError::UnknownSegment`].
    pub fn descriptor(
        &mut self,
        team: TeamId,
        segment: SegmentName,
    ) -> Result<(SegmentDescriptor, bool), MemError> {
        if let Some(d) = self.atlb.lookup(&(team, segment)) {
            return Ok((*d, true));
        }
        let space = self.teams.get(&team).ok_or(MemError::UnknownTeam(team))?;
        let desc = *space
            .table
            .get(segment)
            .ok_or(MemError::UnknownSegment { team, segment })?;
        self.atlb.fill((team, segment), desc);
        Ok((desc, false))
    }

    /// Translates a virtual address to an absolute address, performing the
    /// bounds check of §3.1. "All segments are aligned on absolute addresses
    /// which are multiples of their sizes so no add is required" — the
    /// offset is OR-ed into the base.
    ///
    /// # Errors
    ///
    /// * [`MemError::GrowthForward`] — *recoverable trap*: the object grew;
    ///   the returned `new` address names the same word under the new, wider
    ///   segment. Callers repair the faulting pointer and retry.
    /// * [`MemError::Bounds`] — offset beyond the object's length with no
    ///   forwarding installed.
    /// * [`MemError::UnknownTeam`] / [`MemError::UnknownSegment`].
    pub fn translate(&mut self, team: TeamId, addr: Fpa) -> Result<Translation, MemError> {
        let (desc, atlb_hit) = self.descriptor(team, addr.segment())?;
        let offset = addr.offset();
        if offset < desc.length {
            return Ok(Translation {
                // Alignment invariant: base is a multiple of the segment
                // capacity, so OR is equivalent to ADD.
                abs: AbsAddr(desc.base.0 | offset),
                class: desc.class,
                atlb_hit,
            });
        }
        if let Some(fwd) = desc.forward {
            self.forward_traps += 1;
            let new = fwd.with_offset(offset).unwrap_or_else(|_| fwd.base());
            return Err(MemError::GrowthForward { old: addr, new });
        }
        self.bounds_traps += 1;
        Err(MemError::Bounds {
            addr,
            offset,
            length: desc.length,
        })
    }

    /// Translation that transparently follows growth forwarding (bounded
    /// chain), returning the final translation and the repaired pointer if
    /// any forwarding occurred. This is the software analogue of the trap
    /// handler that "replaces the old segment number with the new segment
    /// number" (§2.2).
    ///
    /// # Errors
    ///
    /// Same as [`translate`](Self::translate), except `GrowthForward` is
    /// followed (up to 64 hops) rather than surfaced.
    pub fn translate_following(
        &mut self,
        team: TeamId,
        addr: Fpa,
    ) -> Result<(Translation, Option<Fpa>), MemError> {
        let mut current = addr;
        let mut repaired = None;
        for _ in 0..64 {
            match self.translate(team, current) {
                Ok(t) => return Ok((t, repaired)),
                Err(MemError::GrowthForward { new, .. }) => {
                    current = new;
                    repaired = Some(new);
                }
                Err(e) => return Err(e),
            }
        }
        Err(MemError::Bounds {
            addr: current,
            offset: current.offset(),
            length: 0,
        })
    }

    /// Invalidates any ATLB entry for `(team, segment)` — required when a
    /// descriptor changes (growth, free, GC).
    pub fn invalidate(&mut self, team: TeamId, segment: SegmentName) {
        self.atlb.invalidate(&(team, segment));
    }

    /// ATLB statistics.
    pub fn atlb_stats(&self) -> CacheStats {
        self.atlb.stats()
    }

    /// Resets ATLB statistics (warmup boundary).
    pub fn reset_atlb_stats(&mut self) {
        self.atlb.reset_stats();
    }

    /// Bounds traps taken (non-recoverable).
    pub fn bounds_traps(&self) -> u64 {
        self.bounds_traps
    }

    /// Growth-forwarding traps taken (recoverable, §2.2).
    pub fn forward_traps(&self) -> u64 {
        self.forward_traps
    }

    /// Iterates over all team ids.
    pub fn team_ids(&self) -> impl Iterator<Item = TeamId> + '_ {
        self.teams.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_fpa::FpaFormat;

    fn setup() -> (Mmu, TeamId, Fpa) {
        let mut mmu = Mmu::new(FpaFormat::COM);
        let team = TeamId(0);
        mmu.create_team(team);
        let ts = mmu.team_mut(team).unwrap();
        let addr = ts.names.alloc_for_size(20).unwrap(); // exp 5, cap 32
        ts.table.insert(
            addr.segment(),
            SegmentDescriptor::new(AbsAddr(0x40), 20, ClassId(9)),
        );
        (mmu, team, addr)
    }

    #[test]
    fn translate_ors_offset_into_base() {
        let (mut mmu, team, addr) = setup();
        let t = mmu.translate(team, addr.with_offset(5).unwrap()).unwrap();
        assert_eq!(t.abs, AbsAddr(0x45));
        assert_eq!(t.class, ClassId(9));
        assert!(!t.atlb_hit, "first access misses the ATLB");
        let t2 = mmu.translate(team, addr.with_offset(6).unwrap()).unwrap();
        assert!(t2.atlb_hit, "second access hits the ATLB");
    }

    #[test]
    fn bounds_check_uses_length_not_capacity() {
        let (mut mmu, team, addr) = setup();
        // length is 20, capacity 32: offset 25 is in capacity but OOB.
        let bad = addr.with_offset(25).unwrap();
        assert!(matches!(
            mmu.translate(team, bad),
            Err(MemError::Bounds {
                offset: 25,
                length: 20,
                ..
            })
        ));
        assert_eq!(mmu.bounds_traps(), 1);
    }

    #[test]
    fn unknown_segment_and_team() {
        let (mut mmu, team, addr) = setup();
        let stray = Fpa::from_segment(SegmentName::new(7, 99), 0, FpaFormat::COM).unwrap();
        assert!(matches!(
            mmu.translate(team, stray),
            Err(MemError::UnknownSegment { .. })
        ));
        assert!(matches!(
            mmu.translate(TeamId(42), addr),
            Err(MemError::UnknownTeam(TeamId(42)))
        ));
    }

    #[test]
    fn growth_forwarding_trap_carries_new_address() {
        let (mut mmu, team, addr) = setup();
        // Install forwarding to a wider segment as grow() would.
        let new_base = {
            let ts = mmu.team_mut(team).unwrap();
            let new = ts.names.alloc_for_size(64).unwrap();
            ts.table.insert(
                new.segment(),
                SegmentDescriptor::new(AbsAddr(0x100), 50, ClassId(9)),
            );
            let old = ts.table.get_mut(addr.segment()).unwrap();
            old.forward = Some(new);
            new
        };
        mmu.invalidate(team, addr.segment());
        // In-bounds accesses through the old name still work.
        assert!(mmu.translate(team, addr.with_offset(10).unwrap()).is_ok());
        // Out-of-old-bounds access traps with the repaired pointer.
        let stale = addr.with_offset(25).unwrap();
        match mmu.translate(team, stale) {
            Err(MemError::GrowthForward { old, new }) => {
                assert_eq!(old, stale);
                assert_eq!(new.segment(), new_base.segment());
                assert_eq!(new.offset(), 25);
            }
            other => panic!("expected GrowthForward, got {other:?}"),
        }
        assert_eq!(mmu.forward_traps(), 1);
        // The following variant repairs transparently.
        let (t, repaired) = mmu.translate_following(team, stale).unwrap();
        assert_eq!(t.abs, AbsAddr(0x100 | 25));
        assert_eq!(repaired.unwrap().segment(), new_base.segment());
    }

    #[test]
    fn invalidate_forces_table_walk() {
        let (mut mmu, team, addr) = setup();
        mmu.translate(team, addr).unwrap();
        mmu.invalidate(team, addr.segment());
        let t = mmu.translate(team, addr).unwrap();
        assert!(!t.atlb_hit);
    }
}
