//! Per-team segment descriptor tables.

use std::collections::HashMap;

use com_cache::FxBuildHasher;

use com_fpa::{Fpa, FpaFormat, NameAllocator, SegmentName};

use crate::{AbsAddr, ClassId};

/// Identifier of a team of processes; the machine's SN register holds the
/// current team (§3.2). Virtual space "is a name space local to a team of
/// processes" (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TeamId(pub u16);

impl core::fmt::Display for TeamId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "team#{}", self.0)
    }
}

/// One entry of a segment descriptor table: "base address, length and object
/// class" (§3.1), plus the forwarding pointer installed when an object
/// outgrows this name's exponent (§2.2 aliasing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentDescriptor {
    /// Base of the segment in absolute space (aligned to its size).
    pub base: AbsAddr,
    /// Current object length in words (bounds checks use this, not the
    /// name's power-of-two capacity).
    pub length: u64,
    /// The object's class, cached here so a single table access yields the
    /// 16-bit class tag for the ITLB key.
    pub class: ClassId,
    /// When the object has been grown out of this name's range: the new,
    /// wider name. Accesses within the old bounds proceed normally; beyond
    /// them, the trap handler replaces the pointer's segment number.
    pub forward: Option<Fpa>,
}

impl SegmentDescriptor {
    /// Creates a descriptor with no forwarding.
    pub fn new(base: AbsAddr, length: u64, class: ClassId) -> Self {
        SegmentDescriptor {
            base,
            length,
            class,
            forward: None,
        }
    }
}

/// A team's segment descriptor table: segment name → descriptor.
#[derive(Debug, Clone, Default)]
pub struct SegmentTable {
    entries: HashMap<SegmentName, SegmentDescriptor, FxBuildHasher>,
}

impl SegmentTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a descriptor.
    pub fn get(&self, name: SegmentName) -> Option<&SegmentDescriptor> {
        self.entries.get(&name)
    }

    /// Looks up a descriptor mutably.
    pub fn get_mut(&mut self, name: SegmentName) -> Option<&mut SegmentDescriptor> {
        self.entries.get_mut(&name)
    }

    /// Installs (or replaces) a descriptor.
    pub fn insert(&mut self, name: SegmentName, desc: SegmentDescriptor) {
        self.entries.insert(name, desc);
    }

    /// Removes a descriptor, returning it.
    pub fn remove(&mut self, name: SegmentName) -> Option<SegmentDescriptor> {
        self.entries.remove(&name)
    }

    /// Number of descriptors ("segment table entries need only be kept for
    /// those segments actually allocated", §2.2).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, descriptor)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (SegmentName, &SegmentDescriptor)> {
        self.entries.iter().map(|(k, v)| (*k, v))
    }
}

/// A team space: its id, segment descriptor table and virtual-name
/// allocator.
#[derive(Debug, Clone)]
pub struct TeamSpace {
    id: TeamId,
    /// The team's segment descriptor table.
    pub table: SegmentTable,
    /// Allocator of fresh virtual names for this team.
    pub names: NameAllocator,
}

impl TeamSpace {
    /// Creates a team space drawing names from `format`.
    pub fn new(id: TeamId, format: FpaFormat) -> Self {
        TeamSpace {
            id,
            table: SegmentTable::new(),
            names: NameAllocator::new(format),
        }
    }

    /// The team's identifier.
    pub fn id(&self) -> TeamId {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_fpa::FpaFormat;

    #[test]
    fn table_crud() {
        let mut t = SegmentTable::new();
        assert!(t.is_empty());
        let name = SegmentName::new(5, 1);
        t.insert(name, SegmentDescriptor::new(AbsAddr(64), 20, ClassId(9)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(name).unwrap().length, 20);
        t.get_mut(name).unwrap().length = 25;
        assert_eq!(t.get(name).unwrap().length, 25);
        let d = t.remove(name).unwrap();
        assert_eq!(d.base, AbsAddr(64));
        assert!(t.get(name).is_none());
    }

    #[test]
    fn team_space_allocates_names() {
        let mut ts = TeamSpace::new(TeamId(3), FpaFormat::COM);
        assert_eq!(ts.id(), TeamId(3));
        let a = ts.names.alloc_for_size(10).unwrap();
        assert_eq!(a.segment().exponent(), 4);
    }
}
