//! The object allocation and access API used by the machines.

use std::collections::{HashMap, HashSet};

use com_cache::FxBuildHasher;
use com_fpa::{Fpa, SegmentName};

use crate::{
    AbsAddr, AbsoluteMemory, ClassId, MemError, Mmu, SegmentDescriptor, TeamId, Translation, Word,
};

/// What an allocation is for — drives the T5 statistics ("85% of all object
/// allocations and deallocations involve contexts", §2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// A method activation record (32-word context).
    Context,
    /// An ordinary data object.
    Object,
    /// A compiled-method code object.
    Code,
}

impl AllocKind {
    /// All kinds, for iteration in reports.
    pub const ALL: [AllocKind; 3] = [AllocKind::Context, AllocKind::Object, AllocKind::Code];
}

impl core::fmt::Display for AllocKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocKind::Context => write!(f, "context"),
            AllocKind::Object => write!(f, "object"),
            AllocKind::Code => write!(f, "code"),
        }
    }
}

/// Allocation / deallocation / reference counters per [`AllocKind`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocations performed.
    pub allocs: [u64; 3],
    /// Deallocations performed.
    pub frees: [u64; 3],
    /// Words allocated.
    pub words: [u64; 3],
    /// Reads + writes through each kind's segments.
    pub references: [u64; 3],
}

impl AllocStats {
    fn idx(kind: AllocKind) -> usize {
        match kind {
            AllocKind::Context => 0,
            AllocKind::Object => 1,
            AllocKind::Code => 2,
        }
    }

    /// Allocations of `kind`.
    pub fn allocs_of(&self, kind: AllocKind) -> u64 {
        self.allocs[Self::idx(kind)]
    }

    /// Frees of `kind`.
    pub fn frees_of(&self, kind: AllocKind) -> u64 {
        self.frees[Self::idx(kind)]
    }

    /// References (reads + writes) through segments of `kind`.
    pub fn references_of(&self, kind: AllocKind) -> u64 {
        self.references[Self::idx(kind)]
    }

    /// Fraction of all allocations that are contexts (paper cites 85%).
    pub fn context_alloc_fraction(&self) -> Option<f64> {
        let total: u64 = self.allocs.iter().sum();
        if total == 0 {
            None
        } else {
            Some(self.allocs_of(AllocKind::Context) as f64 / total as f64)
        }
    }

    /// Fraction of all references that touch contexts (paper cites 91%).
    pub fn context_reference_fraction(&self) -> Option<f64> {
        let total: u64 = self.references.iter().sum();
        if total == 0 {
            None
        } else {
            Some(self.references_of(AllocKind::Context) as f64 / total as f64)
        }
    }
}

/// Generational bookkeeping shared between [`ObjectSpace`] and the
/// collector in [`crate::gc`].
///
/// The heap is split in two generations. Everything allocated since the
/// last collection's *promotion* step is the **nursery**; everything that
/// survived a collection is **tenured**. A minor collection traverses only
/// nursery segments (plus roots, pinned segments, and the remembered set)
/// and sweeps only nursery segments, so its cost is proportional to young
/// data, not to the whole heap. The soundness invariant: *every tenured
/// segment that may hold a pointer into the nursery is in the remembered
/// set* — maintained by the write barrier in [`ObjectSpace::write_abs`] /
/// [`ObjectSpace::write_kind`] (context-cache-resident contexts bypass the
/// barrier and are instead pinned by the machine at collection time).
///
/// The book is space-global while collections are per-team, so the
/// generational split currently assumes a **single collected team** (the
/// machine's arrangement): one team's promotion clears the other's
/// nursery/remembered state. Multi-team generational collection would need
/// the book keyed by team — see the doc note on [`crate::gc::collect`].
#[derive(Debug, Clone, Default)]
pub(crate) struct GcBook {
    /// Segment names allocated since the last promotion — the minor-sweep
    /// candidates.
    pub(crate) nursery_segs: HashSet<SegmentName, FxBuildHasher>,
    /// Absolute block bases allocated since the last promotion. A segment
    /// based in one of these blocks is traversed fully during a minor
    /// mark (this includes grow-aliases re-pointed at a fresh block).
    pub(crate) nursery_bases: HashSet<u64, FxBuildHasher>,
    /// The remembered set: tenured segments possibly holding pointers
    /// into the nursery, dirtied by the write barrier since the last
    /// collection.
    pub(crate) remembered: HashSet<SegmentName, FxBuildHasher>,
    /// Block base → every live segment name sharing that block, canonical
    /// (widest, newest) name first. Lets an absolute-addressed store find
    /// the segment to remember, and lets the sweep free a block exactly
    /// when its last name dies.
    pub(crate) base_names: HashMap<u64, Vec<SegmentName>, FxBuildHasher>,
    /// Pointer stores that consulted the barrier.
    pub(crate) barrier_stores: u64,
    /// Barrier consultations that newly remembered a tenured segment.
    pub(crate) barrier_remembers: u64,
}

impl GcBook {
    /// A fresh segment in a fresh block just entered the heap.
    pub(crate) fn on_create(&mut self, seg: SegmentName, base: AbsAddr) {
        self.nursery_segs.insert(seg);
        self.nursery_bases.insert(base.0);
        self.base_names.insert(base.0, vec![seg]);
    }

    /// A descriptor was removed (explicit free or sweep).
    pub(crate) fn on_drop_name(&mut self, seg: SegmentName, base: AbsAddr) {
        self.nursery_segs.remove(&seg);
        self.remembered.remove(&seg);
        if let Some(names) = self.base_names.get_mut(&base.0) {
            names.retain(|n| *n != seg);
        }
    }

    /// A block's storage was returned to the allocator.
    pub(crate) fn on_block_freed(&mut self, base: AbsAddr) {
        self.base_names.remove(&base.0);
        self.nursery_bases.remove(&base.0);
    }
}

/// Read-only snapshot of the generational bookkeeping (reports, benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierStats {
    /// Live nursery segments.
    pub nursery_segments: usize,
    /// Tenured segments currently in the remembered set.
    pub remembered_segments: usize,
    /// Pointer stores that consulted the write barrier.
    pub pointer_stores: u64,
    /// Stores that newly remembered a tenured segment.
    pub remembers: u64,
}

/// The storage system the machines allocate from: absolute memory + MMU,
/// with per-kind accounting and automatic growth forwarding.
///
/// ```
/// use com_fpa::FpaFormat;
/// use com_mem::{AllocKind, ClassId, ObjectSpace, TeamId, Word};
///
/// # fn main() -> Result<(), com_mem::MemError> {
/// let mut space = ObjectSpace::new(24, FpaFormat::COM);
/// let team = TeamId(0);
/// let obj = space.create(team, ClassId(9), 10, AllocKind::Object)?;
/// space.write(team, obj.with_offset(3)?, Word::Int(7))?;
/// assert_eq!(space.read(team, obj.with_offset(3)?)?, Word::Int(7));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ObjectSpace {
    mem: AbsoluteMemory,
    mmu: Mmu,
    stats: AllocStats,
    /// Pointers repaired by following growth forwards during read/write.
    repairs: u64,
    /// Generational GC bookkeeping (nursery, remembered set, base index).
    book: GcBook,
}

impl ObjectSpace {
    /// Creates a space of `2^space_log2` absolute words with one team
    /// (`TeamId(0)`) pre-created.
    pub fn new(space_log2: u8, format: com_fpa::FpaFormat) -> Self {
        let mut mmu = Mmu::new(format);
        mmu.create_team(TeamId(0));
        ObjectSpace {
            mem: AbsoluteMemory::new(space_log2),
            mmu,
            stats: AllocStats::default(),
            repairs: 0,
            book: GcBook::default(),
        }
    }

    /// The generational bookkeeping (collector-internal).
    pub(crate) fn book(&self) -> &GcBook {
        &self.book
    }

    /// Mutable generational bookkeeping (collector-internal).
    pub(crate) fn book_mut(&mut self) -> &mut GcBook {
        &mut self.book
    }

    /// Write-barrier and generation counters.
    pub fn barrier_stats(&self) -> BarrierStats {
        BarrierStats {
            nursery_segments: self.book.nursery_segs.len(),
            remembered_segments: self.book.remembered.len(),
            pointer_stores: self.book.barrier_stores,
            remembers: self.book.barrier_remembers,
        }
    }

    /// The canonical (widest, newest) live segment based at absolute block
    /// `base` — how the machine maps a context-cache-resident block back to
    /// the segment it pins at collection time.
    pub fn segment_at_base(&self, base: AbsAddr) -> Option<SegmentName> {
        self.book
            .base_names
            .get(&base.0)
            .and_then(|names| names.first())
            .copied()
    }

    /// The write barrier: a pointer word was stored at absolute address
    /// `abs`. Stores into nursery blocks need no record (the nursery is
    /// traversed in full by every collection); stores into tenured blocks
    /// add the block's canonical segment to the remembered set so a minor
    /// collection scans it.
    #[inline]
    fn note_pointer_store(&mut self, abs: AbsAddr) {
        self.book.barrier_stores += 1;
        let Some(base) = self.mem.containing_base(abs) else {
            return;
        };
        if self.book.nursery_bases.contains(&base.0) {
            return;
        }
        let Some(canon) = self.segment_at_base(base) else {
            return;
        };
        if self.book.remembered.insert(canon) {
            self.book.barrier_remembers += 1;
        }
    }

    /// The underlying MMU (teams, ATLB, trap counters).
    pub fn mmu(&self) -> &Mmu {
        &self.mmu
    }

    /// Mutable access to the MMU (team creation, invalidation).
    pub fn mmu_mut(&mut self) -> &mut Mmu {
        &mut self.mmu
    }

    /// The underlying absolute memory.
    pub fn memory(&self) -> &AbsoluteMemory {
        &self.mem
    }

    /// Mutable access to the absolute memory (the GC and the context cache
    /// write back through this).
    pub fn memory_mut(&mut self) -> &mut AbsoluteMemory {
        &mut self.mem
    }

    /// Switches the memory system's hot paths to their pre-overhaul forms
    /// (ATLB generic-cache storage, unmemoized bounds checks) — the
    /// wall-clock bench baseline. Architecturally identical either way.
    pub fn set_reference_paths(&mut self, reference: bool) {
        self.mem.set_reference_paths(reference);
        self.mmu.set_reference_paths(reference);
    }

    /// Allocation statistics for experiment T5.
    pub fn stats(&self) -> AllocStats {
        self.stats
    }

    /// Pointers repaired by growth forwarding during reads/writes.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    /// Creates an object of `words` words and class `class` in `team`,
    /// returning its base capability.
    ///
    /// # Errors
    ///
    /// Returns naming errors from `com-fpa` or
    /// [`MemError::OutOfAbsoluteSpace`].
    pub fn create(
        &mut self,
        team: TeamId,
        class: ClassId,
        words: u64,
        kind: AllocKind,
    ) -> Result<Fpa, MemError> {
        let base_abs = self.mem.alloc_block(words.max(1))?;
        let ts = self.mmu.team_mut(team)?;
        let addr = match ts.names.alloc_for_size(words.max(1)) {
            Ok(a) => a,
            Err(e) => {
                self.mem.free_block(base_abs)?;
                return Err(e.into());
            }
        };
        ts.table.insert(
            addr.segment(),
            SegmentDescriptor::new(base_abs, words.max(1), class),
        );
        self.book.on_create(addr.segment(), base_abs);
        let i = AllocStats::idx(kind);
        self.stats.allocs[i] += 1;
        self.stats.words[i] += words.max(1);
        Ok(addr)
    }

    /// Creates an object of `words` words and fills its first
    /// `contents.len()` words in one pass — the bulk load path (code
    /// stores, image boot). One translation and one bounds check cover the
    /// whole fill; reference accounting and the pointer-store barrier
    /// behave exactly as the equivalent sequence of per-word
    /// [`write_kind`](Self::write_kind) calls would.
    ///
    /// # Errors
    ///
    /// Propagates allocation and mapping errors; `contents` longer than
    /// `words` is a bounds error.
    pub fn create_filled(
        &mut self,
        team: TeamId,
        class: ClassId,
        words: u64,
        kind: AllocKind,
        contents: &[Word],
    ) -> Result<Fpa, MemError> {
        let addr = self.create(team, class, words, kind)?;
        if contents.is_empty() {
            return Ok(addr);
        }
        if contents.len() as u64 > words.max(1) {
            // Undo the allocation before reporting: the caller gets no
            // handle back, so an object left behind here would be
            // unfreeable.
            self.free(team, addr, kind)?;
            return Err(MemError::Bounds {
                addr,
                offset: contents.len() as u64 - 1,
                length: words.max(1),
            });
        }
        let abs = self.translate(team, addr)?.abs;
        self.mem.write_run(abs, contents)?;
        self.stats.references[AllocStats::idx(kind)] += contents.len() as u64;
        for (i, w) in contents.iter().enumerate() {
            if w.as_ptr().is_some() {
                self.note_pointer_store(abs.offset(i as u64));
            }
        }
        Ok(addr)
    }

    /// Frees the object named by `addr` (which must be a base capability),
    /// releasing its storage and descriptor.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnknownSegment`] for dangling names.
    pub fn free(&mut self, team: TeamId, addr: Fpa, kind: AllocKind) -> Result<(), MemError> {
        let segment = addr.segment();
        let ts = self.mmu.team_mut(team)?;
        let desc = ts
            .table
            .remove(segment)
            .ok_or(MemError::UnknownSegment { team, segment })?;
        ts.names.free(segment);
        self.mmu.invalidate(team, segment);
        self.book.on_drop_name(segment, desc.base);
        // Aliased (forwarded-from) names may still reference this block; the
        // storage is freed only if this descriptor still owns a live block
        // at its base (forwarded old names share the new block).
        if self.mem.block_words(desc.base).is_some() && desc.forward.is_none() {
            self.mem.free_block(desc.base)?;
            self.book.on_block_freed(desc.base);
        }
        self.stats.frees[AllocStats::idx(kind)] += 1;
        Ok(())
    }

    /// Grows the object at `addr` to `new_words`, returning its new (wider)
    /// capability. Implements §2.2: a new segment is allocated, both old and
    /// new descriptors point at it, and the old descriptor forwards.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::GrowTooLarge`], naming errors, or
    /// [`MemError::UnknownSegment`].
    pub fn grow(&mut self, team: TeamId, addr: Fpa, new_words: u64) -> Result<Fpa, MemError> {
        let segment = addr.segment();
        let old_desc = {
            let ts = self.mmu.team(team)?;
            *ts.table
                .get(segment)
                .ok_or(MemError::UnknownSegment { team, segment })?
        };
        if new_words <= old_desc.length {
            return Ok(addr); // nothing to do
        }
        let new_abs = self.mem.alloc_block(new_words)?;
        let ts = self.mmu.team_mut(team)?;
        let new_addr = match ts.names.alloc_for_size(new_words) {
            Ok(a) => a,
            Err(com_fpa::FpaError::ObjectTooLarge { .. }) => {
                self.mem.free_block(new_abs)?;
                return Err(MemError::GrowTooLarge { addr, new_words });
            }
            Err(e) => {
                self.mem.free_block(new_abs)?;
                return Err(e.into());
            }
        };
        // Copy contents to the new block.
        for off in 0..old_desc.length {
            let w = self.mem.peek(old_desc.base.offset(off))?;
            self.mem.write(new_abs.offset(off), w)?;
        }
        let old_base = old_desc.base;
        let ts = self.mmu.team_mut(team)?;
        // "The segment descriptors of both the old and the new pointers are
        // set to point to the new segment." Every alias of the old block —
        // names left behind by earlier grows included — is re-pointed and
        // forwarded to the newest name, so no alias can observe the freed
        // storage.
        ts.table.insert(
            new_addr.segment(),
            SegmentDescriptor::new(new_abs, new_words, old_desc.class),
        );
        let aliases: Vec<_> = ts
            .table
            .iter()
            .filter(|(name, d)| d.base == old_base && *name != new_addr.segment())
            .map(|(name, _)| name)
            .collect();
        for name in &aliases {
            let d = ts.table.get_mut(*name).expect("listed above");
            d.base = new_abs;
            d.forward = Some(new_addr);
        }
        // The new block (and its new name) enter the nursery; the aliases
        // move with the storage, so the base index keeps the canonical
        // (widest) name first, followed by every alias. A tenured alias
        // re-pointed here is scanned by minor collections through the
        // nursery-base rule, which keeps its forward edge live.
        self.book.on_create(new_addr.segment(), new_abs);
        if let Some(names) = self.book.base_names.get_mut(&new_abs.0) {
            names.extend(aliases.iter().copied());
        }
        for name in aliases {
            self.mmu.invalidate(team, name);
        }
        self.mem.free_block(old_base)?;
        self.book.on_block_freed(old_base);
        Ok(new_addr)
    }

    /// Translates an address, following growth forwarding transparently.
    ///
    /// # Errors
    ///
    /// Propagates translation errors other than recoverable forwarding.
    pub fn translate(&mut self, team: TeamId, addr: Fpa) -> Result<Translation, MemError> {
        let (t, repaired) = self.mmu.translate_following(team, addr)?;
        if repaired.is_some() {
            self.repairs += 1;
        }
        Ok(t)
    }

    /// Reads the word at `addr`, counting the reference against `kind`
    /// when known (contexts vs objects for T5).
    ///
    /// # Errors
    ///
    /// Propagates translation and mapping errors.
    pub fn read_kind(
        &mut self,
        team: TeamId,
        addr: Fpa,
        kind: AllocKind,
    ) -> Result<Word, MemError> {
        let t = self.translate(team, addr)?;
        self.stats.references[AllocStats::idx(kind)] += 1;
        self.mem.read(t.abs)
    }

    /// Reads the word at `addr` (counted as an object reference).
    ///
    /// # Errors
    ///
    /// Propagates translation and mapping errors.
    pub fn read(&mut self, team: TeamId, addr: Fpa) -> Result<Word, MemError> {
        self.read_kind(team, addr, AllocKind::Object)
    }

    /// Writes the word at `addr`, counting the reference against `kind`.
    ///
    /// # Errors
    ///
    /// Propagates translation and mapping errors.
    pub fn write_kind(
        &mut self,
        team: TeamId,
        addr: Fpa,
        word: Word,
        kind: AllocKind,
    ) -> Result<(), MemError> {
        let t = self.translate(team, addr)?;
        self.stats.references[AllocStats::idx(kind)] += 1;
        self.mem.write(t.abs, word)?;
        if word.as_ptr().is_some() {
            self.note_pointer_store(t.abs);
        }
        Ok(())
    }

    /// Writes the word at `addr` (counted as an object reference).
    ///
    /// # Errors
    ///
    /// Propagates translation and mapping errors.
    pub fn write(&mut self, team: TeamId, addr: Fpa, word: Word) -> Result<(), MemError> {
        self.write_kind(team, addr, word, AllocKind::Object)
    }

    /// Reads a word by absolute address (for callers that already hold a
    /// translation), counting the reference against `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] outside any live block.
    pub fn read_abs(&mut self, abs: crate::AbsAddr, kind: AllocKind) -> Result<Word, MemError> {
        self.stats.references[AllocStats::idx(kind)] += 1;
        self.mem.read(abs)
    }

    /// Writes a word by absolute address, counting the reference against
    /// `kind`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] outside any live block.
    pub fn write_abs(
        &mut self,
        abs: crate::AbsAddr,
        word: Word,
        kind: AllocKind,
    ) -> Result<(), MemError> {
        self.stats.references[AllocStats::idx(kind)] += 1;
        self.mem.write(abs, word)?;
        if word.as_ptr().is_some() {
            self.note_pointer_store(abs);
        }
        Ok(())
    }

    /// The class of the object at `addr` (one descriptor access).
    ///
    /// # Errors
    ///
    /// Propagates descriptor-lookup errors.
    pub fn class_of(&mut self, team: TeamId, addr: Fpa) -> Result<ClassId, MemError> {
        let (d, _) = self.mmu.descriptor(team, addr.segment())?;
        Ok(d.class)
    }

    /// The length in words of the object at `addr`.
    ///
    /// # Errors
    ///
    /// Propagates descriptor-lookup errors.
    pub fn length_of(&mut self, team: TeamId, addr: Fpa) -> Result<u64, MemError> {
        let (d, _) = self.mmu.descriptor(team, addr.segment())?;
        Ok(d.length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_fpa::FpaFormat;

    const TEAM: TeamId = TeamId(0);

    fn space() -> ObjectSpace {
        ObjectSpace::new(20, FpaFormat::COM)
    }

    #[test]
    fn create_read_write_free() {
        let mut s = space();
        let obj = s.create(TEAM, ClassId(9), 8, AllocKind::Object).unwrap();
        s.write(TEAM, obj.with_offset(2).unwrap(), Word::Int(5))
            .unwrap();
        assert_eq!(
            s.read(TEAM, obj.with_offset(2).unwrap()).unwrap(),
            Word::Int(5)
        );
        assert_eq!(s.class_of(TEAM, obj).unwrap(), ClassId(9));
        assert_eq!(s.length_of(TEAM, obj).unwrap(), 8);
        s.free(TEAM, obj, AllocKind::Object).unwrap();
        assert!(s.read(TEAM, obj).is_err());
    }

    #[test]
    fn stats_track_kinds() {
        let mut s = space();
        let ctx = s.create(TEAM, ClassId(8), 32, AllocKind::Context).unwrap();
        let obj = s.create(TEAM, ClassId(9), 4, AllocKind::Object).unwrap();
        s.write_kind(TEAM, ctx, Word::Int(1), AllocKind::Context)
            .unwrap();
        s.write_kind(
            TEAM,
            ctx.with_offset(1).unwrap(),
            Word::Int(2),
            AllocKind::Context,
        )
        .unwrap();
        s.read_kind(TEAM, obj, AllocKind::Object).unwrap();
        let st = s.stats();
        assert_eq!(st.allocs_of(AllocKind::Context), 1);
        assert_eq!(st.allocs_of(AllocKind::Object), 1);
        assert_eq!(st.references_of(AllocKind::Context), 2);
        assert_eq!(st.references_of(AllocKind::Object), 1);
        assert!((st.context_alloc_fraction().unwrap() - 0.5).abs() < 1e-9);
        assert!((st.context_reference_fraction().unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn grow_preserves_contents_and_forwards() {
        let mut s = space();
        let obj = s.create(TEAM, ClassId(9), 4, AllocKind::Object).unwrap();
        for i in 0..4 {
            s.write(TEAM, obj.with_offset(i).unwrap(), Word::Int(i as i64 * 10))
                .unwrap();
        }
        let new = s.grow(TEAM, obj, 100).unwrap();
        assert!(new.capacity() >= 100);
        // Old data visible through both names.
        for i in 0..4 {
            assert_eq!(
                s.read(TEAM, new.with_offset(i).unwrap()).unwrap(),
                Word::Int(i as i64 * 10)
            );
            assert_eq!(
                s.read(TEAM, obj.with_offset(i).unwrap()).unwrap(),
                Word::Int(i as i64 * 10)
            );
        }
        // Writing through the old name is visible through the new one.
        s.write(TEAM, obj.with_offset(1).unwrap(), Word::Int(-1))
            .unwrap();
        assert_eq!(
            s.read(TEAM, new.with_offset(1).unwrap()).unwrap(),
            Word::Int(-1)
        );
    }

    #[test]
    fn stale_pointer_is_repaired_on_out_of_bounds_access() {
        let mut s = space();
        let obj = s.create(TEAM, ClassId(9), 4, AllocKind::Object).unwrap();
        let new = s.grow(TEAM, obj, 40).unwrap();
        s.write(TEAM, new.with_offset(20).unwrap(), Word::Int(99))
            .unwrap();
        // A stale pointer cannot even *encode* offset 20 (old capacity 4);
        // but offsets inside the old capacity beyond old length trap+forward.
        assert_eq!(s.repairs(), 0);
        // offset 3 < old length 4: no repair needed.
        s.read(TEAM, obj.with_offset(3).unwrap()).unwrap();
        assert_eq!(s.repairs(), 0);
    }

    #[test]
    fn grow_too_large_is_reported() {
        let mut s = ObjectSpace::new(20, FpaFormat::DEMO16);
        let obj = s.create(TEAM, ClassId(9), 4, AllocKind::Object).unwrap();
        // DEMO16 max segment = 2^12 words; growing beyond must fail.
        assert!(matches!(
            s.grow(TEAM, obj, 1 << 13),
            Err(MemError::GrowTooLarge { .. })
        ));
        // The object must remain intact after the failed grow.
        assert_eq!(s.length_of(TEAM, obj).unwrap(), 4);
    }

    #[test]
    fn grow_to_smaller_is_noop() {
        let mut s = space();
        let obj = s.create(TEAM, ClassId(9), 16, AllocKind::Object).unwrap();
        let same = s.grow(TEAM, obj, 8).unwrap();
        assert_eq!(same, obj);
    }

    #[test]
    fn freeing_grown_object_via_new_name_releases_storage() {
        let mut s = space();
        let obj = s.create(TEAM, ClassId(9), 4, AllocKind::Object).unwrap();
        let new = s.grow(TEAM, obj, 64).unwrap();
        let live_before = s.memory().buddy().allocated_words();
        s.free(TEAM, new, AllocKind::Object).unwrap();
        assert!(s.memory().buddy().allocated_words() < live_before);
        // The stale alias now dangles; reads through it fail rather than
        // returning freed storage.
        assert!(s.read(TEAM, new).is_err());
    }
}
