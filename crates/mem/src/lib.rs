//! Tagged memory and three-level addressing for the Caltech Object Machine.
//!
//! §3.1 of the paper: "There are three address spaces in the COM: *virtual
//! space*, *absolute space*, and *physical space*. The issue of naming is
//! resolved in the translation from virtual space to absolute space. The
//! resource allocation problem is handled in the translation from absolute
//! space to physical space."
//!
//! This crate builds that memory system:
//!
//! * [`Word`] — every memory word carries a four-bit tag identifying
//!   "uninitialised, small integer, floating point number, atom, instruction
//!   and object pointer" (§3.2), realised as a Rust enum.
//! * [`AbsoluteMemory`] + [`BuddyAllocator`] — the global absolute space.
//!   Buddy allocation yields the paper's invariant that "all segments are
//!   aligned on absolute addresses which are multiples of their sizes so no
//!   add is required" (§3.1).
//! * [`SegmentTable`]/[`TeamSpace`] — per-team segment descriptor tables
//!   ("Each team space has its own segment descriptor table. Each entry …
//!   consists of three fields: base address, length and object class").
//! * [`Mmu`] — virtual→absolute translation through an ATLB, with bounds
//!   checks and the §2.2 growth/forwarding trap for aliased objects.
//! * [`ObjectSpace`] — the allocation API (create / grow / free / read /
//!   write) used by the machine, with [`AllocKind`]-keyed statistics that
//!   feed experiment T5.
//! * [`gc`] — generational collection over absolute space ("All object
//!   management, for example garbage collection, is performed in absolute
//!   space"): a nursery reclaimed by cheap minor collections guided by a
//!   write-barrier-maintained remembered set, and a tenured space swept
//!   only by full collections.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod absolute;
mod error;
pub mod gc;
mod mmu;
mod objspace;
mod segment;
mod word;

pub use absolute::{AbsAddr, AbsoluteMemory, BuddyAllocator};
pub use error::MemError;
pub use mmu::{Mmu, Translation};
pub use objspace::{AllocKind, AllocStats, BarrierStats, ObjectSpace};
pub use segment::{SegmentDescriptor, SegmentTable, TeamId, TeamSpace};
pub use word::{AtomId, ClassId, Tag, Word};
