//! Absolute space: the global name space backed by a buddy allocator.

use std::collections::{BTreeMap, HashMap};

use com_cache::FxBuildHasher;

use crate::{MemError, Word};

/// An address in absolute space — "a unique name identifying a particular
/// object" (§3.1). Word-granular.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct AbsAddr(pub u64);

impl AbsAddr {
    /// This address advanced by `delta` words.
    pub fn offset(self, delta: u64) -> AbsAddr {
        AbsAddr(self.0 + delta)
    }
}

impl core::fmt::Display for AbsAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "abs:{:#x}", self.0)
    }
}

/// A power-of-two buddy allocator over absolute space.
///
/// Buddy allocation guarantees the paper's alignment invariant: "All
/// segments are aligned on absolute addresses which are multiples of their
/// sizes so no add is required" (§3.1) — the virtual offset can be OR-ed
/// into the base instead of added.
///
/// ```
/// use com_mem::BuddyAllocator;
/// let mut buddy = BuddyAllocator::new(10); // 2^10 words of absolute space
/// let a = buddy.alloc(5).unwrap();         // a 32-word block
/// assert_eq!(a.0 % 32, 0);                 // aligned to its size
/// buddy.free(a, 5).unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct BuddyAllocator {
    space_log2: u8,
    /// Free block base addresses per order (order = log2 of block words).
    free_lists: Vec<Vec<u64>>,
    /// Base address → order, for every live allocation.
    live: HashMap<u64, u8, FxBuildHasher>,
    allocated_words: u64,
    peak_words: u64,
}

impl BuddyAllocator {
    /// Creates an allocator managing `2^space_log2` words (max 62).
    ///
    /// # Panics
    ///
    /// Panics if `space_log2 > 62`.
    pub fn new(space_log2: u8) -> Self {
        assert!(space_log2 <= 62, "absolute space too large to simulate");
        let mut free_lists = vec![Vec::new(); space_log2 as usize + 1];
        free_lists[space_log2 as usize].push(0);
        BuddyAllocator {
            space_log2,
            free_lists,
            live: HashMap::default(),
            allocated_words: 0,
            peak_words: 0,
        }
    }

    /// Allocates a block of `2^order` words aligned to its size.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfAbsoluteSpace`] when no block of sufficient
    /// order can be carved out.
    pub fn alloc(&mut self, order: u8) -> Result<AbsAddr, MemError> {
        if order > self.space_log2 {
            return Err(MemError::OutOfAbsoluteSpace {
                words: 1u64 << order.min(62),
            });
        }
        // Find the smallest order ≥ requested with a free block.
        let mut from = None;
        for o in order..=self.space_log2 {
            if !self.free_lists[o as usize].is_empty() {
                from = Some(o);
                break;
            }
        }
        let mut o = from.ok_or(MemError::OutOfAbsoluteSpace {
            words: 1u64 << order,
        })?;
        let base = self.free_lists[o as usize].pop().expect("nonempty");
        // Split down to the requested order, pushing upper buddies free.
        while o > order {
            o -= 1;
            let buddy = base + (1u64 << o);
            self.free_lists[o as usize].push(buddy);
        }
        self.live.insert(base, order);
        self.allocated_words += 1u64 << order;
        self.peak_words = self.peak_words.max(self.allocated_words);
        Ok(AbsAddr(base))
    }

    /// Frees a block previously returned by [`alloc`](Self::alloc) with the
    /// same `order`, coalescing buddies greedily.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] when `base` is not a live
    /// allocation of that order.
    pub fn free(&mut self, base: AbsAddr, order: u8) -> Result<(), MemError> {
        match self.live.get(&base.0) {
            Some(&o) if o == order => {}
            _ => return Err(MemError::UnmappedAbsolute(base)),
        }
        self.live.remove(&base.0);
        self.allocated_words -= 1u64 << order;
        let mut base = base.0;
        let mut order = order;
        // Coalesce while the buddy is free.
        while order < self.space_log2 {
            let buddy = base ^ (1u64 << order);
            let list = &mut self.free_lists[order as usize];
            match list.iter().position(|&b| b == buddy) {
                Some(i) => {
                    list.swap_remove(i);
                    base = base.min(buddy);
                    order += 1;
                }
                None => break,
            }
        }
        self.free_lists[order as usize].push(base);
        Ok(())
    }

    /// Words currently allocated.
    pub fn allocated_words(&self) -> u64 {
        self.allocated_words
    }

    /// High-water mark of allocated words.
    pub fn peak_words(&self) -> u64 {
        self.peak_words
    }

    /// Total words managed.
    pub fn capacity_words(&self) -> u64 {
        1u64 << self.space_log2
    }

    /// Number of live allocations.
    pub fn live_blocks(&self) -> usize {
        self.live.len()
    }
}

/// One live block's backing store.
#[derive(Debug, Clone)]
struct Block {
    /// Power-of-two size in words.
    words: u64,
    /// The block's contents, dense. Allocated with the block (absolute
    /// space is sparse at block granularity, not word granularity).
    data: Vec<Word>,
}

/// The global absolute memory: a sparse word store plus the buddy allocator
/// that places segments in it. Storage is dense *per block* (one `Vec` per
/// live block) in a slot-stable slab; the ordered base index only resolves
/// a containing block on a bounds-check memo miss, so word access is O(1)
/// — slot index plus offset — after the memoized lookup, and bulk fills
/// are a straight copy.
///
/// Reads and writes are bounds-checked against live blocks — the simulator
/// equivalent of "it is impossible to express an erroneous operation".
#[derive(Debug, Clone)]
pub struct AbsoluteMemory {
    buddy: BuddyAllocator,
    /// base → slab slot; BTreeMap so a containing block can be found by
    /// range query.
    index: BTreeMap<u64, u32>,
    /// Slot-stable block storage (freed slots are recycled, with their
    /// data dropped).
    slots: Vec<Block>,
    free_slots: Vec<u32>,
    /// The last block a bounds check hit: `(base, words, slot)`. Accesses
    /// have strong block locality (context words, the current method), so
    /// this memo removes the tree walk from nearly every access.
    /// Invalidated on any free (a memo hit must imply liveness;
    /// allocation only adds blocks, so it cannot stale the memo).
    last_block: std::cell::Cell<(u64, u64, u32)>,
    /// Disable the memo (pre-overhaul bounds checking: every access walks
    /// the tree). The wall-clock bench baseline opts in.
    reference: bool,
    reads: u64,
    writes: u64,
}

impl AbsoluteMemory {
    /// Creates a memory of `2^space_log2` words.
    pub fn new(space_log2: u8) -> Self {
        AbsoluteMemory {
            buddy: BuddyAllocator::new(space_log2),
            index: BTreeMap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            last_block: std::cell::Cell::new((0, 0, 0)),
            reference: false,
            reads: 0,
            writes: 0,
        }
    }

    /// Allocates a block of at least `words` words (rounded up to a power
    /// of two); contents read as [`Word::Uninit`].
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfAbsoluteSpace`] when absolute space is full.
    pub fn alloc_block(&mut self, words: u64) -> Result<AbsAddr, MemError> {
        let order = order_for(words);
        let base = self.buddy.alloc(order)?;
        let words = 1u64 << order;
        let block = Block {
            words,
            data: vec![Word::Uninit; words as usize],
        };
        let slot = match self.free_slots.pop() {
            Some(slot) => {
                self.slots[slot as usize] = block;
                slot
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("slab outgrew u32");
                self.slots.push(block);
                slot
            }
        };
        self.index.insert(base.0, slot);
        Ok(base)
    }

    /// Frees a block returned by [`alloc_block`](Self::alloc_block) and
    /// clears its contents.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] if `base` is not a live block.
    pub fn free_block(&mut self, base: AbsAddr) -> Result<(), MemError> {
        let slot = *self
            .index
            .get(&base.0)
            .ok_or(MemError::UnmappedAbsolute(base))?;
        let block = &mut self.slots[slot as usize];
        let order = order_for(block.words);
        self.buddy.free(base, order)?;
        *block = Block {
            words: 0,
            data: Vec::new(),
        };
        self.index.remove(&base.0);
        self.free_slots.push(slot);
        self.last_block.set((0, 0, 0));
        Ok(())
    }

    /// The power-of-two size of the live block at `base`.
    pub fn block_words(&self, base: AbsAddr) -> Option<u64> {
        self.index
            .get(&base.0)
            .map(|&slot| self.slots[slot as usize].words)
    }

    /// Selects the pre-overhaul bounds-check path (no memo).
    pub fn set_reference_paths(&mut self, reference: bool) {
        self.reference = reference;
        self.last_block.set((0, 0, 0));
    }

    /// Bounds-checks `addr` and returns its containing block's base and
    /// slab slot (the word's storage index is `addr - base`).
    #[inline]
    fn locate(&self, addr: AbsAddr) -> Result<(u64, u32), MemError> {
        let (base, words, slot) = self.last_block.get();
        if !self.reference && addr.0.wrapping_sub(base) < words {
            return Ok((base, slot));
        }
        match self.index.range(..=addr.0).next_back() {
            Some((&base, &slot)) if addr.0 < base + self.slots[slot as usize].words => {
                self.last_block
                    .set((base, self.slots[slot as usize].words, slot));
                Ok((base, slot))
            }
            _ => Err(MemError::UnmappedAbsolute(addr)),
        }
    }

    /// The base of the live block containing `addr`, if any. Shares the
    /// bounds-check memo with [`read`](Self::read)/[`write`](Self::write),
    /// so the write barrier's block lookup is O(1) on the hot path.
    pub fn containing_base(&self, addr: AbsAddr) -> Option<AbsAddr> {
        self.locate(addr).ok().map(|(base, _)| AbsAddr(base))
    }

    /// Reads the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] outside any live block.
    pub fn read(&mut self, addr: AbsAddr) -> Result<Word, MemError> {
        let (base, slot) = self.locate(addr)?;
        self.reads += 1;
        Ok(self.slots[slot as usize].data[(addr.0 - base) as usize])
    }

    /// Writes the word at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] outside any live block.
    pub fn write(&mut self, addr: AbsAddr, word: Word) -> Result<(), MemError> {
        let (base, slot) = self.locate(addr)?;
        self.writes += 1;
        self.slots[slot as usize].data[(addr.0 - base) as usize] = word;
        Ok(())
    }

    /// Writes a run of consecutive words starting at `base` — the bulk
    /// path for loading whole objects (code stores). One bounds check
    /// covers the run, which must lie inside a single live block (runs
    /// are only ever written into a block that was just allocated for
    /// them).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] if the run is not fully
    /// inside one live block.
    pub fn write_run(&mut self, base: AbsAddr, run: &[Word]) -> Result<(), MemError> {
        if run.is_empty() {
            return Ok(());
        }
        let (block_base, slot) = self.locate(base)?;
        let block = &mut self.slots[slot as usize];
        let start = (base.0 - block_base) as usize;
        let end = start + run.len();
        if end as u64 > block.words {
            return Err(MemError::UnmappedAbsolute(AbsAddr(
                base.0 + run.len() as u64 - 1,
            )));
        }
        self.writes += run.len() as u64;
        block.data[start..end].copy_from_slice(run);
        Ok(())
    }

    /// Non-recording read used by the garbage collector and diagnostics.
    pub fn peek(&self, addr: AbsAddr) -> Result<Word, MemError> {
        let (base, slot) = self.locate(addr)?;
        Ok(self.slots[slot as usize].data[(addr.0 - base) as usize])
    }

    /// Clears a whole block to [`Word::Uninit`] (the context cache's
    /// single-operation block clear, §3.6).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::UnmappedAbsolute`] if `base` is not a live block.
    pub fn clear_block(&mut self, base: AbsAddr) -> Result<(), MemError> {
        let slot = *self
            .index
            .get(&base.0)
            .ok_or(MemError::UnmappedAbsolute(base))?;
        self.slots[slot as usize].data.fill(Word::Uninit);
        Ok(())
    }

    /// The buddy allocator (for occupancy statistics).
    pub fn buddy(&self) -> &BuddyAllocator {
        &self.buddy
    }

    /// Total recorded reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Total recorded writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Iterates over live block bases and sizes.
    pub fn blocks(&self) -> impl Iterator<Item = (AbsAddr, u64)> + '_ {
        self.index
            .iter()
            .map(|(&b, &slot)| (AbsAddr(b), self.slots[slot as usize].words))
    }
}

/// Smallest order whose block holds `words` words.
fn order_for(words: u64) -> u8 {
    let words = words.max(1);
    (64 - (words - 1).leading_zeros()).min(62) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buddy_alignment_invariant() {
        let mut b = BuddyAllocator::new(12);
        for order in [0u8, 3, 5, 7] {
            let a = b.alloc(order).unwrap();
            assert_eq!(a.0 % (1 << order), 0, "block not aligned to its size");
        }
    }

    #[test]
    fn buddy_coalesces_back_to_full_space() {
        let mut b = BuddyAllocator::new(8);
        let blocks: Vec<_> = (0..8).map(|_| b.alloc(5).unwrap()).collect();
        assert_eq!(b.allocated_words(), 256);
        assert!(b.alloc(0).is_err(), "space must be full");
        for a in blocks {
            b.free(a, 5).unwrap();
        }
        assert_eq!(b.allocated_words(), 0);
        // After freeing everything the full-space block must be allocatable.
        assert!(b.alloc(8).is_ok());
    }

    #[test]
    fn buddy_rejects_double_free() {
        let mut b = BuddyAllocator::new(8);
        let a = b.alloc(3).unwrap();
        b.free(a, 3).unwrap();
        assert!(b.free(a, 3).is_err());
    }

    #[test]
    fn buddy_rejects_wrong_order_free() {
        let mut b = BuddyAllocator::new(8);
        let a = b.alloc(3).unwrap();
        assert!(b.free(a, 4).is_err());
        b.free(a, 3).unwrap();
    }

    #[test]
    fn buddy_tracks_peak() {
        let mut b = BuddyAllocator::new(8);
        let a = b.alloc(6).unwrap(); // 64 words
        let c = b.alloc(6).unwrap();
        b.free(a, 6).unwrap();
        b.free(c, 6).unwrap();
        assert_eq!(b.peak_words(), 128);
        assert_eq!(b.allocated_words(), 0);
    }

    #[test]
    fn memory_read_write_roundtrip() {
        let mut m = AbsoluteMemory::new(10);
        let base = m.alloc_block(10).unwrap(); // rounds to 16
        assert_eq!(m.block_words(base), Some(16));
        m.write(base.offset(3), Word::Int(42)).unwrap();
        assert_eq!(m.read(base.offset(3)).unwrap(), Word::Int(42));
        assert_eq!(m.read(base.offset(4)).unwrap(), Word::Uninit);
        assert_eq!(m.reads(), 2);
        assert_eq!(m.writes(), 1);
    }

    #[test]
    fn memory_rejects_unmapped_access() {
        let mut m = AbsoluteMemory::new(10);
        let base = m.alloc_block(4).unwrap();
        assert!(m.read(base.offset(4)).is_err(), "one past the block");
        assert!(m.write(AbsAddr(999), Word::Int(1)).is_err());
        m.free_block(base).unwrap();
        assert!(m.read(base).is_err(), "freed blocks are unmapped");
    }

    #[test]
    fn containing_base_finds_the_block() {
        let mut m = AbsoluteMemory::new(10);
        let a = m.alloc_block(8).unwrap();
        let b = m.alloc_block(8).unwrap();
        assert_eq!(m.containing_base(a.offset(7)), Some(a));
        assert_eq!(m.containing_base(b), Some(b));
        // Repeated queries hit the memo; a different block still resolves.
        assert_eq!(m.containing_base(a.offset(1)), Some(a));
        m.free_block(a).unwrap();
        assert_eq!(m.containing_base(a), None);
        assert_eq!(m.containing_base(AbsAddr(1 << 20)), None);
    }

    #[test]
    fn clear_block_resets_words() {
        let mut m = AbsoluteMemory::new(10);
        let base = m.alloc_block(8).unwrap();
        m.write(base, Word::Int(1)).unwrap();
        m.clear_block(base).unwrap();
        assert_eq!(m.read(base).unwrap(), Word::Uninit);
    }

    #[test]
    fn freed_storage_is_reusable() {
        let mut m = AbsoluteMemory::new(6); // 64 words
        let a = m.alloc_block(32).unwrap();
        m.write(a, Word::Int(7)).unwrap();
        m.free_block(a).unwrap();
        let b = m.alloc_block(64).unwrap();
        // stale data must not leak into the new block
        assert_eq!(m.read(b).unwrap(), Word::Uninit);
    }

    #[test]
    fn order_for_rounds_up() {
        assert_eq!(order_for(0), 0);
        assert_eq!(order_for(1), 0);
        assert_eq!(order_for(2), 1);
        assert_eq!(order_for(3), 2);
        assert_eq!(order_for(32), 5);
        assert_eq!(order_for(33), 6);
    }
}
