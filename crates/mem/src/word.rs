//! Tagged memory words.

use com_fpa::Fpa;

/// The four-bit primitive tag attached to every memory word (§3.2).
///
/// "Every word of memory has a four bit tag which is used to identify
/// primitive types: uninitialized, small integer, floating point number,
/// atom, instruction and object pointer."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Tag {
    /// A word that has never been written (fresh contexts read as this).
    Uninit = 0,
    /// A small (immediate) integer.
    Int = 1,
    /// An immediate floating point number.
    Float = 2,
    /// An interned symbol (message selectors, `#foo` literals).
    Atom = 3,
    /// An encoded machine instruction.
    Instr = 4,
    /// An object pointer: a floating point virtual address used as a
    /// capability.
    Ptr = 5,
}

impl core::fmt::Display for Tag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            Tag::Uninit => "uninit",
            Tag::Int => "int",
            Tag::Float => "float",
            Tag::Atom => "atom",
            Tag::Instr => "instr",
            Tag::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// An interned atom (symbol) identifier.
///
/// Atoms are immediate values; the interning table lives in the object
/// system (`com-obj`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl core::fmt::Display for AtomId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "atom#{}", self.0)
    }
}

/// A 16-bit object class tag (§3.2).
///
/// "When a word is cached in the context cache, a 16-bit tag identifying the
/// class of the object is cached with it. For primitives, this 16-bit tag is
/// the four bit tag zero extended. For object pointers, this 16-bit tag
/// identifies the object class and is used in the method lookup."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u16);

impl ClassId {
    /// Class of uninitialised words (zero-extended primitive tag).
    pub const UNINIT: ClassId = ClassId(Tag::Uninit as u16);
    /// Class of small integers.
    pub const SMALL_INT: ClassId = ClassId(Tag::Int as u16);
    /// Class of floating point numbers.
    pub const FLOAT: ClassId = ClassId(Tag::Float as u16);
    /// Class of atoms.
    pub const ATOM: ClassId = ClassId(Tag::Atom as u16);
    /// Class of instruction words.
    pub const INSTR: ClassId = ClassId(Tag::Instr as u16);
    /// First identifier available for user-defined object classes; the
    /// object system allocates class ids from here up.
    pub const FIRST_OBJECT: ClassId = ClassId(8);
    /// Sentinel for "no operand in this slot" in ITLB keys.
    pub const NONE: ClassId = ClassId(u16::MAX);

    /// Whether this class is one of the primitive (tag-derived) classes.
    pub fn is_primitive(self) -> bool {
        self.0 < Self::FIRST_OBJECT.0
    }
}

impl core::fmt::Display for ClassId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "class#{}", self.0)
    }
}

/// One tagged memory word.
///
/// The tag is the enum discriminant — the natural Rust rendering of a tagged
/// memory. Floating point words compare by bit pattern (memory identity),
/// so `Word` is `Eq` and `Hash` even though it carries `f64`s.
///
/// ```
/// use com_mem::{Word, Tag};
/// let w = Word::Int(42);
/// assert_eq!(w.tag(), Tag::Int);
/// assert_eq!(w.as_int(), Some(42));
/// assert_eq!(w.as_float(), None);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub enum Word {
    /// Never-written word; reading one into an operand is a machine trap.
    #[default]
    Uninit,
    /// Immediate small integer.
    Int(i64),
    /// Immediate float.
    Float(f64),
    /// Interned atom.
    Atom(AtomId),
    /// Encoded instruction payload (interpreted by `com-isa`).
    Instr(u64),
    /// Object pointer (capability).
    Ptr(Fpa),
}

impl Word {
    /// The word's four-bit primitive tag.
    pub fn tag(&self) -> Tag {
        match self {
            Word::Uninit => Tag::Uninit,
            Word::Int(_) => Tag::Int,
            Word::Float(_) => Tag::Float,
            Word::Atom(_) => Tag::Atom,
            Word::Instr(_) => Tag::Instr,
            Word::Ptr(_) => Tag::Ptr,
        }
    }

    /// The 16-bit class tag for *primitive* words: the four-bit tag zero
    /// extended. Object pointers return `None` — their class comes from the
    /// segment descriptor, not the word.
    pub fn primitive_class(&self) -> Option<ClassId> {
        match self {
            Word::Ptr(_) => None,
            other => Some(ClassId(other.tag() as u16)),
        }
    }

    /// The integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Word::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Word::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// The atom payload, if this is an `Atom`.
    pub fn as_atom(&self) -> Option<AtomId> {
        match self {
            Word::Atom(a) => Some(*a),
            _ => None,
        }
    }

    /// The pointer payload, if this is a `Ptr`.
    pub fn as_ptr(&self) -> Option<Fpa> {
        match self {
            Word::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// The instruction payload, if this is an `Instr`.
    pub fn as_instr(&self) -> Option<u64> {
        match self {
            Word::Instr(i) => Some(*i),
            _ => None,
        }
    }

    /// Whether the word is [`Word::Uninit`].
    pub fn is_uninit(&self) -> bool {
        matches!(self, Word::Uninit)
    }

    /// Numeric value as `f64` for mixed-mode arithmetic (§3.3 "some mixed
    /// mode instructions are primitive").
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Word::Int(i) => Some(*i as f64),
            Word::Float(x) => Some(*x),
            _ => None,
        }
    }
}

impl PartialEq for Word {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Word::Uninit, Word::Uninit) => true,
            (Word::Int(a), Word::Int(b)) => a == b,
            // Bit-pattern equality: memory words are bags of bits, so two
            // NaN words with identical bits are the same word.
            (Word::Float(a), Word::Float(b)) => a.to_bits() == b.to_bits(),
            (Word::Atom(a), Word::Atom(b)) => a == b,
            (Word::Instr(a), Word::Instr(b)) => a == b,
            (Word::Ptr(a), Word::Ptr(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Word {}

impl core::hash::Hash for Word {
    fn hash<H: core::hash::Hasher>(&self, state: &mut H) {
        core::mem::discriminant(self).hash(state);
        match self {
            Word::Uninit => {}
            Word::Int(i) => i.hash(state),
            Word::Float(x) => x.to_bits().hash(state),
            Word::Atom(a) => a.hash(state),
            Word::Instr(i) => i.hash(state),
            Word::Ptr(p) => p.hash(state),
        }
    }
}

impl core::fmt::Display for Word {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Word::Uninit => write!(f, "?"),
            Word::Int(i) => write!(f, "{i}"),
            Word::Float(x) => write!(f, "{x:?}"),
            Word::Atom(a) => write!(f, "{a}"),
            Word::Instr(i) => write!(f, "instr:{i:#x}"),
            Word::Ptr(p) => write!(f, "{p}"),
        }
    }
}

impl From<i64> for Word {
    fn from(i: i64) -> Self {
        Word::Int(i)
    }
}

impl From<f64> for Word {
    fn from(x: f64) -> Self {
        Word::Float(x)
    }
}

impl From<AtomId> for Word {
    fn from(a: AtomId) -> Self {
        Word::Atom(a)
    }
}

impl From<Fpa> for Word {
    fn from(p: Fpa) -> Self {
        Word::Ptr(p)
    }
}

impl From<bool> for Word {
    /// Booleans are represented as the atoms with reserved ids 1 (`true`)
    /// and 0 (`false`); the object system interns them at those ids.
    fn from(b: bool) -> Self {
        Word::Atom(if b { AtomId(1) } else { AtomId(0) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_fpa::FpaFormat;

    #[test]
    fn tags_match_variants() {
        assert_eq!(Word::Uninit.tag(), Tag::Uninit);
        assert_eq!(Word::Int(0).tag(), Tag::Int);
        assert_eq!(Word::Float(0.0).tag(), Tag::Float);
        assert_eq!(Word::Atom(AtomId(3)).tag(), Tag::Atom);
        assert_eq!(Word::Instr(0).tag(), Tag::Instr);
        let p = Fpa::from_raw(0x8345, FpaFormat::DEMO16).unwrap();
        assert_eq!(Word::Ptr(p).tag(), Tag::Ptr);
    }

    #[test]
    fn primitive_class_is_zero_extended_tag() {
        assert_eq!(Word::Int(7).primitive_class(), Some(ClassId::SMALL_INT));
        assert_eq!(Word::Float(1.5).primitive_class(), Some(ClassId::FLOAT));
        assert_eq!(Word::Uninit.primitive_class(), Some(ClassId::UNINIT));
        let p = Fpa::from_raw(0x8345, FpaFormat::DEMO16).unwrap();
        assert_eq!(Word::Ptr(p).primitive_class(), None);
    }

    #[test]
    fn float_words_compare_by_bits() {
        assert_eq!(Word::Float(f64::NAN), Word::Float(f64::NAN));
        assert_ne!(Word::Float(0.0), Word::Float(-0.0));
        assert_eq!(Word::Float(1.5), Word::Float(1.5));
    }

    #[test]
    fn accessors_are_typed() {
        assert_eq!(Word::Int(5).as_int(), Some(5));
        assert_eq!(Word::Int(5).as_float(), None);
        assert_eq!(Word::Int(5).as_number(), Some(5.0));
        assert_eq!(Word::Float(2.5).as_number(), Some(2.5));
        assert_eq!(Word::Atom(AtomId(2)).as_number(), None);
    }

    #[test]
    fn booleans_are_reserved_atoms() {
        assert_eq!(Word::from(true), Word::Atom(AtomId(1)));
        assert_eq!(Word::from(false), Word::Atom(AtomId(0)));
    }

    #[test]
    fn class_id_space() {
        assert!(ClassId::SMALL_INT.is_primitive());
        assert!(ClassId::ATOM.is_primitive());
        assert!(!ClassId::FIRST_OBJECT.is_primitive());
        assert!(!ClassId(100).is_primitive());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Word::Int(-3).to_string(), "-3");
        assert_eq!(Word::Uninit.to_string(), "?");
        assert_eq!(Word::Atom(AtomId(4)).to_string(), "atom#4");
    }
}
