//! Memory system errors and traps.

use com_fpa::{Fpa, FpaError, SegmentName};

use crate::{AbsAddr, TeamId};

/// Errors and traps raised by the memory system.
///
/// Variants marked *trap* correspond to conditions the COM hardware turns
/// into system traps; the machine (`com-core`) catches some of them (e.g.
/// [`MemError::GrowthForward`]) and repairs the faulting pointer, as §2.2
/// prescribes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// The team space named by a virtual address does not exist.
    UnknownTeam(TeamId),
    /// No descriptor for this segment in the team's table (dangling
    /// capability or GC'd object).
    UnknownSegment {
        /// The team whose table was consulted.
        team: TeamId,
        /// The missing segment.
        segment: SegmentName,
    },
    /// *Trap.* Access beyond the segment's length ("The offset field of the
    /// virtual address is compared to the segment length field … to check if
    /// the access is in bounds", §3.1).
    Bounds {
        /// The faulting address.
        addr: Fpa,
        /// The offset that was requested.
        offset: u64,
        /// The segment's current length in words.
        length: u64,
    },
    /// *Trap, recoverable.* The object grew and this (stale) pointer's
    /// bounds were exceeded; the handler must replace the old segment
    /// number with `new` and retry (§2.2 aliasing).
    GrowthForward {
        /// The stale address that faulted.
        old: Fpa,
        /// The object's current (larger) address.
        new: Fpa,
    },
    /// Absolute space is exhausted (buddy allocator failure).
    OutOfAbsoluteSpace {
        /// Words requested.
        words: u64,
    },
    /// Read or write to an absolute address outside any allocated block.
    UnmappedAbsolute(AbsAddr),
    /// An address-arithmetic or naming error bubbled up from `com-fpa`.
    Address(FpaError),
    /// Attempt to grow an object beyond the largest expressible segment.
    GrowTooLarge {
        /// The object being grown.
        addr: Fpa,
        /// Requested new length.
        new_words: u64,
    },
    /// Freeing or growing an object that was already freed.
    UseAfterFree(Fpa),
}

impl From<FpaError> for MemError {
    fn from(e: FpaError) -> Self {
        MemError::Address(e)
    }
}

impl core::fmt::Display for MemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MemError::UnknownTeam(t) => write!(f, "unknown team space {t}"),
            MemError::UnknownSegment { team, segment } => {
                write!(f, "no descriptor for {segment} in team {team}")
            }
            MemError::Bounds {
                addr,
                offset,
                length,
            } => write!(
                f,
                "bounds trap at {addr}: offset {offset} beyond segment length {length}"
            ),
            MemError::GrowthForward { old, new } => {
                write!(f, "growth forwarding trap: {old} must be replaced by {new}")
            }
            MemError::OutOfAbsoluteSpace { words } => {
                write!(f, "absolute space exhausted allocating {words} words")
            }
            MemError::UnmappedAbsolute(a) => write!(f, "unmapped absolute address {a}"),
            MemError::Address(e) => write!(f, "address error: {e}"),
            MemError::GrowTooLarge { addr, new_words } => {
                write!(f, "cannot grow {addr} to {new_words} words")
            }
            MemError::UseAfterFree(a) => write!(f, "use after free of {a}"),
        }
    }
}

impl std::error::Error for MemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MemError::Address(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_bounds() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MemError>();
    }

    #[test]
    fn fpa_errors_convert() {
        let e: MemError = FpaError::ClassExhausted { exponent: 3 }.into();
        assert!(matches!(e, MemError::Address(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
