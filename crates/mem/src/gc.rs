//! Mark-sweep garbage collection over absolute space.
//!
//! §3.1: "All object management, for example garbage collection, is
//! performed in absolute space." §2.3 motivates the cost model: "In current
//! Smalltalk implementations garbage collecting consumes approximately one
//! third of the execution time. Of this time, 82% of all allocations and
//! deallocations occur for contexts." The machine (`com-core`) frees LIFO
//! contexts eagerly; everything else — including captured (non-LIFO)
//! contexts — is reclaimed here.

use std::collections::{HashMap, HashSet};

use com_fpa::{Fpa, SegmentName};

use crate::{AllocKind, MemError, ObjectSpace, TeamId, Word};

/// Statistics from one collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Segments found reachable.
    pub marked_segments: u64,
    /// Segment descriptors reclaimed.
    pub swept_segments: u64,
    /// Absolute blocks returned to the buddy allocator.
    pub blocks_freed: u64,
    /// Words of storage freed.
    pub words_freed: u64,
    /// Words scanned during marking (the dominant cost term).
    pub words_scanned: u64,
}

impl GcStats {
    /// A simulated cycle cost for this collection: one cycle per word
    /// scanned plus ten per descriptor swept (table surgery).
    pub fn cost_cycles(&self) -> u64 {
        self.words_scanned + 10 * self.swept_segments
    }
}

/// Runs a stop-the-world mark-sweep collection of `team`, treating `roots`
/// (plus any additional `pinned` segments, e.g. contexts resident in the
/// context cache) as live.
///
/// # Errors
///
/// Returns [`MemError::UnknownTeam`] for a bad team id; dangling roots are
/// ignored rather than failing the collection.
pub fn collect(
    space: &mut ObjectSpace,
    team: TeamId,
    roots: &[Fpa],
    pinned: &[SegmentName],
) -> Result<GcStats, MemError> {
    let mut stats = GcStats::default();

    // --- Mark ---------------------------------------------------------
    let mut marked: HashSet<SegmentName> = HashSet::new();
    let mut work: Vec<SegmentName> = Vec::new();
    for r in roots {
        work.push(r.segment());
    }
    work.extend_from_slice(pinned);

    while let Some(seg) = work.pop() {
        if marked.contains(&seg) {
            continue;
        }
        let desc = {
            let ts = space.mmu().team(team)?;
            match ts.table.get(seg) {
                Some(d) => *d,
                None => continue, // dangling root: skip
            }
        };
        marked.insert(seg);
        if let Some(fwd) = desc.forward {
            work.push(fwd.segment());
        }
        for off in 0..desc.length {
            stats.words_scanned += 1;
            match space.memory().peek(desc.base.offset(off)) {
                Ok(Word::Ptr(p)) => {
                    let s = p.segment();
                    if !marked.contains(&s) {
                        work.push(s);
                    }
                }
                Ok(_) => {}
                // The block may have been freed through an alias; nothing to
                // scan there.
                Err(_) => break,
            }
        }
    }
    stats.marked_segments = marked.len() as u64;

    // --- Sweep --------------------------------------------------------
    // Bases still referenced by live names must not be freed even when an
    // aliased (dead) name also points at them.
    let mut live_bases: HashSet<u64> = HashSet::new();
    let mut dead: Vec<SegmentName> = Vec::new();
    {
        let ts = space.mmu().team(team)?;
        for (name, desc) in ts.table.iter() {
            if marked.contains(&name) {
                live_bases.insert(desc.base.0);
            } else {
                dead.push(name);
            }
        }
    }
    let mut dead_bases: HashMap<u64, u64> = HashMap::new(); // base -> block words
    for name in dead {
        let desc = {
            let ts = space.mmu_mut().team_mut(team)?;
            let d = ts.table.remove(name).expect("listed above");
            ts.names.free(name);
            d
        };
        space.mmu_mut().invalidate(team, name);
        stats.swept_segments += 1;
        if !live_bases.contains(&desc.base.0) {
            if let Some(words) = space.memory().block_words(desc.base) {
                dead_bases.insert(desc.base.0, words);
            }
        }
    }
    for (base, words) in dead_bases {
        space.memory_mut().free_block(crate::AbsAddr(base))?;
        stats.blocks_freed += 1;
        stats.words_freed += words;
    }
    Ok(stats)
}

/// Convenience: collect with object roots only.
///
/// # Errors
///
/// Same as [`collect`].
pub fn collect_simple(
    space: &mut ObjectSpace,
    team: TeamId,
    roots: &[Fpa],
) -> Result<GcStats, MemError> {
    collect(space, team, roots, &[])
}

/// Builds a linked list of `n` objects for tests and benchmarks: each node
/// is `[next_ptr, payload]` of class `class`.
///
/// # Errors
///
/// Propagates allocation errors.
pub fn build_list(
    space: &mut ObjectSpace,
    team: TeamId,
    class: crate::ClassId,
    n: usize,
) -> Result<Vec<Fpa>, MemError> {
    let mut nodes = Vec::with_capacity(n);
    let mut prev: Option<Fpa> = None;
    for i in 0..n {
        let node = space.create(team, class, 2, AllocKind::Object)?;
        space.write(team, node.with_offset(1)?, Word::Int(i as i64))?;
        if let Some(p) = prev {
            space.write(team, node, Word::Ptr(p))?;
        }
        prev = Some(node);
        nodes.push(node);
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassId;
    use com_fpa::FpaFormat;

    const TEAM: TeamId = TeamId(0);
    const CLS: ClassId = ClassId(9);

    fn space() -> ObjectSpace {
        ObjectSpace::new(20, FpaFormat::COM)
    }

    #[test]
    fn unreachable_objects_are_swept() {
        let mut s = space();
        let keep = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let _garbage = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let st = collect_simple(&mut s, TEAM, &[keep]).unwrap();
        assert_eq!(st.marked_segments, 1);
        assert_eq!(st.swept_segments, 1);
        assert_eq!(st.blocks_freed, 1);
        assert!(s.read(TEAM, keep).is_ok());
    }

    #[test]
    fn pointer_chains_stay_alive() {
        let mut s = space();
        let nodes = build_list(&mut s, TEAM, CLS, 10).unwrap();
        let head = *nodes.last().unwrap();
        let st = collect_simple(&mut s, TEAM, &[head]).unwrap();
        assert_eq!(st.marked_segments, 10);
        assert_eq!(st.swept_segments, 0);
        // Every node's payload survives.
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(
                s.read(TEAM, n.with_offset(1).unwrap()).unwrap(),
                Word::Int(i as i64)
            );
        }
    }

    #[test]
    fn dropping_the_head_reclaims_the_chain() {
        let mut s = space();
        let nodes = build_list(&mut s, TEAM, CLS, 10).unwrap();
        let mid = nodes[4]; // keep only the first half alive
        let st = collect_simple(&mut s, TEAM, &[mid]).unwrap();
        assert_eq!(st.marked_segments, 5);
        assert_eq!(st.swept_segments, 5);
        assert!(s.read(TEAM, nodes[9]).is_err());
        assert!(s.read(TEAM, nodes[0]).is_ok());
    }

    #[test]
    fn grown_objects_keep_shared_storage_until_both_names_die() {
        let mut s = space();
        let old = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        s.write(TEAM, old, Word::Int(7)).unwrap();
        let new = s.grow(TEAM, old, 64).unwrap();
        // Root via the *old* name only: forwarding edge must keep `new`
        // (and the shared storage) alive.
        let st = collect_simple(&mut s, TEAM, &[old]).unwrap();
        assert_eq!(st.swept_segments, 0, "forwarded target must survive");
        assert_eq!(s.read(TEAM, new).unwrap(), Word::Int(7));
        // Now root nothing: both names and the storage go.
        let st = collect_simple(&mut s, TEAM, &[]).unwrap();
        assert_eq!(st.swept_segments, 2);
        assert_eq!(st.blocks_freed, 1, "shared block freed exactly once");
    }

    #[test]
    fn pinned_segments_survive_without_roots() {
        let mut s = space();
        let ctx = s.create(TEAM, CLS, 32, AllocKind::Context).unwrap();
        let st = collect(&mut s, TEAM, &[], &[ctx.segment()]).unwrap();
        assert_eq!(st.swept_segments, 0);
        assert!(s.read(TEAM, ctx).is_ok());
    }

    #[test]
    fn cycles_are_collected() {
        let mut s = space();
        let a = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        let b = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        s.write(TEAM, a, Word::Ptr(b)).unwrap();
        s.write(TEAM, b, Word::Ptr(a)).unwrap();
        // Cycle is unreachable: both must be swept, and marking must
        // terminate (no infinite loop).
        let st = collect_simple(&mut s, TEAM, &[]).unwrap();
        assert_eq!(st.swept_segments, 2);
    }

    #[test]
    fn gc_cost_scales_with_scanned_words() {
        let mut s = space();
        let mut roots = Vec::new();
        for _ in 0..5 {
            roots.push(s.create(TEAM, CLS, 100, AllocKind::Object).unwrap());
        }
        let st = collect_simple(&mut s, TEAM, &roots).unwrap();
        assert_eq!(st.words_scanned, 500);
        assert!(st.cost_cycles() >= 500);
    }

    #[test]
    fn dangling_roots_are_ignored() {
        let mut s = space();
        let a = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        s.free(TEAM, a, AllocKind::Object).unwrap();
        let st = collect_simple(&mut s, TEAM, &[a]).unwrap();
        assert_eq!(st.marked_segments, 0);
    }
}
