//! Generational garbage collection over absolute space.
//!
//! §3.1: "All object management, for example garbage collection, is
//! performed in absolute space." §2.3 motivates the cost model: "In current
//! Smalltalk implementations garbage collecting consumes approximately one
//! third of the execution time. Of this time, 82% of all allocations and
//! deallocations occur for contexts." The machine (`com-core`) frees LIFO
//! contexts eagerly; everything else — including captured (non-LIFO)
//! contexts — is reclaimed here.
//!
//! # Two generations
//!
//! Because most garbage dies young (the §2.3 context/allocation churn), the
//! collector splits the heap in two:
//!
//! * The **nursery** — every segment allocated since the last collection.
//!   [`collect_minor`] traverses and sweeps *only* the nursery, plus the
//!   roots, any pinned segments, and the **remembered set** — tenured
//!   segments the [`ObjectSpace`] write barrier saw a pointer stored into.
//!   Its cost is proportional to young data, not to heap size.
//! * The **tenured** space — survivors of any collection. Only [`collect`]
//!   (a full mark-sweep) reclaims tenured garbage.
//!
//! Every collection ends with a *promotion*: all survivors become tenured,
//! the nursery and the remembered set empty, and the barrier invariant —
//! "no unremembered tenured segment points into the nursery" — is
//! re-established vacuously.

use std::collections::HashSet;

use com_fpa::{Fpa, SegmentName};

use crate::{AbsAddr, AllocKind, MemError, ObjectSpace, TeamId, Word};

/// Which generation a collection covered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcKind {
    /// Nursery-only collection ([`collect_minor`]).
    Minor,
    /// Full mark-sweep over both generations ([`collect`]).
    Full,
}

impl core::fmt::Display for GcKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            GcKind::Minor => write!(f, "minor"),
            GcKind::Full => write!(f, "full"),
        }
    }
}

/// Statistics from one collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Whether this was a minor (nursery-only) collection.
    pub minor: bool,
    /// Segments found reachable (traversed).
    pub marked_segments: u64,
    /// Segment descriptors reclaimed.
    pub swept_segments: u64,
    /// Absolute blocks returned to the buddy allocator.
    pub blocks_freed: u64,
    /// Words of storage freed.
    pub words_freed: u64,
    /// Words scanned during marking (the dominant cost term).
    pub words_scanned: u64,
    /// Remembered-set entries seeded into the scan (minor collections).
    pub remembered_scanned: u64,
    /// Nursery survivors promoted to the tenured generation.
    pub promoted_segments: u64,
}

impl GcStats {
    /// A simulated cycle cost for this collection: one cycle per word
    /// scanned plus ten per descriptor swept (table surgery).
    pub fn cost_cycles(&self) -> u64 {
        self.words_scanned + 10 * self.swept_segments
    }
}

/// Pops `work` until empty, scanning each segment's words for pointers.
/// `scan_all` selects the full mark (every reached segment is traversed);
/// otherwise only forced entries and nursery-based segments are traversed
/// (the minor mark: tenured segments terminate the walk, their nursery
/// pointers being covered by the remembered set / pinning).
fn mark(
    space: &mut ObjectSpace,
    team: TeamId,
    mut work: Vec<(SegmentName, bool)>,
    scan_all: bool,
    stats: &mut GcStats,
) -> Result<HashSet<SegmentName>, MemError> {
    let mut scanned: HashSet<SegmentName> = HashSet::new();
    let mut seen_tenured: HashSet<SegmentName> = HashSet::new();
    while let Some((seg, force)) = work.pop() {
        if scanned.contains(&seg) {
            continue;
        }
        let desc = {
            let ts = space.mmu().team(team)?;
            match ts.table.get(seg) {
                Some(d) => *d,
                None => continue, // dangling root/remembered entry: skip
            }
        };
        let scan = scan_all || force || space.book().nursery_bases.contains(&desc.base.0);
        if !scan {
            // Tenured, unforced: the segment survives by generation; its
            // outgoing nursery pointers are covered by the remembered set.
            seen_tenured.insert(seg);
            continue;
        }
        scanned.insert(seg);
        if let Some(fwd) = desc.forward {
            work.push((fwd.segment(), false));
        }
        for off in 0..desc.length {
            stats.words_scanned += 1;
            match space.memory().peek(desc.base.offset(off)) {
                Ok(Word::Ptr(p)) => {
                    let s = p.segment();
                    if !scanned.contains(&s) && !seen_tenured.contains(&s) {
                        work.push((s, false));
                    }
                }
                Ok(_) => {}
                // The block may have been freed through an alias; nothing to
                // scan there.
                Err(_) => break,
            }
        }
    }
    stats.marked_segments = scanned.len() as u64;
    Ok(scanned)
}

/// Removes `name`'s descriptor and, when its block's last name died,
/// queues the block base for freeing.
fn sweep_one(
    space: &mut ObjectSpace,
    team: TeamId,
    name: SegmentName,
    free_bases: &mut Vec<AbsAddr>,
    stats: &mut GcStats,
) -> Result<(), MemError> {
    let desc = {
        let ts = space.mmu_mut().team_mut(team)?;
        match ts.table.remove(name) {
            Some(d) => {
                ts.names.free(name);
                d
            }
            None => return Ok(()),
        }
    };
    space.mmu_mut().invalidate(team, name);
    stats.swept_segments += 1;
    let book = space.book_mut();
    book.on_drop_name(name, desc.base);
    if book
        .base_names
        .get(&desc.base.0)
        .is_some_and(|names| names.is_empty())
    {
        book.on_block_freed(desc.base);
        free_bases.push(desc.base);
    }
    Ok(())
}

/// Frees the queued block bases (each exactly once — a base is queued only
/// when its name list empties).
fn free_blocks(
    space: &mut ObjectSpace,
    free_bases: Vec<AbsAddr>,
    stats: &mut GcStats,
) -> Result<(), MemError> {
    for base in free_bases {
        if let Some(words) = space.memory().block_words(base) {
            space.memory_mut().free_block(base)?;
            stats.blocks_freed += 1;
            stats.words_freed += words;
        }
    }
    Ok(())
}

/// Promotes every nursery survivor to the tenured generation and resets
/// the remembered set (the barrier invariant holds vacuously again).
fn promote(space: &mut ObjectSpace, stats: &mut GcStats) {
    let book = space.book_mut();
    stats.promoted_segments = book.nursery_segs.len() as u64;
    book.nursery_segs.clear();
    book.nursery_bases.clear();
    book.remembered.clear();
}

/// Runs a stop-the-world **full** mark-sweep collection of `team`, treating
/// `roots` (plus any additional `pinned` segments, e.g. contexts resident
/// in the context cache) as live. Ends with a promotion: all survivors are
/// tenured afterwards.
///
/// The generational bookkeeping is space-global, so collect exactly one
/// team per [`ObjectSpace`] (the machine's arrangement): collecting team A
/// promotes — and thereby un-tracks — team B's nursery and remembered
/// state, which would let a later minor collection of B sweep live young
/// objects. Multi-team spaces must collect with full sweeps only, or keep
/// one space per team.
///
/// # Errors
///
/// Returns [`MemError::UnknownTeam`] for a bad team id; dangling roots are
/// ignored rather than failing the collection.
pub fn collect(
    space: &mut ObjectSpace,
    team: TeamId,
    roots: &[Fpa],
    pinned: &[SegmentName],
) -> Result<GcStats, MemError> {
    let mut stats = GcStats::default();

    // --- Mark ---------------------------------------------------------
    let mut work: Vec<(SegmentName, bool)> = Vec::new();
    for r in roots {
        work.push((r.segment(), false));
    }
    for p in pinned {
        work.push((*p, true));
    }
    let marked = mark(space, team, work, true, &mut stats)?;

    // --- Sweep --------------------------------------------------------
    let dead: Vec<SegmentName> = {
        let ts = space.mmu().team(team)?;
        ts.table
            .iter()
            .filter(|(name, _)| !marked.contains(name))
            .map(|(name, _)| name)
            .collect()
    };
    let mut free_bases: Vec<AbsAddr> = Vec::new();
    for name in dead {
        sweep_one(space, team, name, &mut free_bases, &mut stats)?;
    }
    free_blocks(space, free_bases, &mut stats)?;
    promote(space, &mut stats);
    Ok(stats)
}

/// Runs a **minor** (nursery-only) collection: marks from `roots`, the
/// `pinned` segments (scanned unconditionally — the machine pins
/// context-cache residents here, whose stores bypass the write barrier),
/// and the remembered set; sweeps only unreached nursery segments; then
/// promotes the survivors.
///
/// Tenured segments are never reclaimed here — that is [`collect`]'s job —
/// so the cost is proportional to young data plus the remembered set, not
/// to the live heap.
///
/// # Errors
///
/// Same as [`collect`].
pub fn collect_minor(
    space: &mut ObjectSpace,
    team: TeamId,
    roots: &[Fpa],
    pinned: &[SegmentName],
) -> Result<GcStats, MemError> {
    let mut stats = GcStats {
        minor: true,
        ..GcStats::default()
    };

    // --- Mark (nursery + forced segments only) ------------------------
    let mut work: Vec<(SegmentName, bool)> = Vec::new();
    for r in roots {
        work.push((r.segment(), false));
    }
    for p in pinned {
        work.push((*p, true));
    }
    {
        let book = space.book();
        stats.remembered_scanned = book.remembered.len() as u64;
        work.extend(book.remembered.iter().map(|s| (*s, true)));
    }
    let scanned = mark(space, team, work, false, &mut stats)?;

    // --- Sweep (nursery only) -----------------------------------------
    let nursery: Vec<SegmentName> = space.book().nursery_segs.iter().copied().collect();
    let mut free_bases: Vec<AbsAddr> = Vec::new();
    for name in nursery {
        if scanned.contains(&name) {
            continue;
        }
        sweep_one(space, team, name, &mut free_bases, &mut stats)?;
    }
    free_blocks(space, free_bases, &mut stats)?;
    promote(space, &mut stats);
    Ok(stats)
}

/// Convenience: full collection with object roots only.
///
/// # Errors
///
/// Same as [`collect`].
pub fn collect_simple(
    space: &mut ObjectSpace,
    team: TeamId,
    roots: &[Fpa],
) -> Result<GcStats, MemError> {
    collect(space, team, roots, &[])
}

/// Builds a linked list of `n` objects for tests and benchmarks: each node
/// is `[next_ptr, payload]` of class `class`.
///
/// # Errors
///
/// Propagates allocation errors.
pub fn build_list(
    space: &mut ObjectSpace,
    team: TeamId,
    class: crate::ClassId,
    n: usize,
) -> Result<Vec<Fpa>, MemError> {
    let mut nodes = Vec::with_capacity(n);
    let mut prev: Option<Fpa> = None;
    for i in 0..n {
        let node = space.create(team, class, 2, AllocKind::Object)?;
        space.write(team, node.with_offset(1)?, Word::Int(i as i64))?;
        if let Some(p) = prev {
            space.write(team, node, Word::Ptr(p))?;
        }
        prev = Some(node);
        nodes.push(node);
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClassId;
    use com_fpa::FpaFormat;

    const TEAM: TeamId = TeamId(0);
    const CLS: ClassId = ClassId(9);

    fn space() -> ObjectSpace {
        ObjectSpace::new(20, FpaFormat::COM)
    }

    #[test]
    fn unreachable_objects_are_swept() {
        let mut s = space();
        let keep = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let _garbage = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let st = collect_simple(&mut s, TEAM, &[keep]).unwrap();
        assert_eq!(st.marked_segments, 1);
        assert_eq!(st.swept_segments, 1);
        assert_eq!(st.blocks_freed, 1);
        assert!(s.read(TEAM, keep).is_ok());
    }

    #[test]
    fn pointer_chains_stay_alive() {
        let mut s = space();
        let nodes = build_list(&mut s, TEAM, CLS, 10).unwrap();
        let head = *nodes.last().unwrap();
        let st = collect_simple(&mut s, TEAM, &[head]).unwrap();
        assert_eq!(st.marked_segments, 10);
        assert_eq!(st.swept_segments, 0);
        // Every node's payload survives.
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(
                s.read(TEAM, n.with_offset(1).unwrap()).unwrap(),
                Word::Int(i as i64)
            );
        }
    }

    #[test]
    fn dropping_the_head_reclaims_the_chain() {
        let mut s = space();
        let nodes = build_list(&mut s, TEAM, CLS, 10).unwrap();
        let mid = nodes[4]; // keep only the first half alive
        let st = collect_simple(&mut s, TEAM, &[mid]).unwrap();
        assert_eq!(st.marked_segments, 5);
        assert_eq!(st.swept_segments, 5);
        assert!(s.read(TEAM, nodes[9]).is_err());
        assert!(s.read(TEAM, nodes[0]).is_ok());
    }

    #[test]
    fn grown_objects_keep_shared_storage_until_both_names_die() {
        let mut s = space();
        let old = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        s.write(TEAM, old, Word::Int(7)).unwrap();
        let new = s.grow(TEAM, old, 64).unwrap();
        // Root via the *old* name only: forwarding edge must keep `new`
        // (and the shared storage) alive.
        let st = collect_simple(&mut s, TEAM, &[old]).unwrap();
        assert_eq!(st.swept_segments, 0, "forwarded target must survive");
        assert_eq!(s.read(TEAM, new).unwrap(), Word::Int(7));
        // Now root nothing: both names and the storage go.
        let st = collect_simple(&mut s, TEAM, &[]).unwrap();
        assert_eq!(st.swept_segments, 2);
        assert_eq!(st.blocks_freed, 1, "shared block freed exactly once");
    }

    #[test]
    fn pinned_segments_survive_without_roots() {
        let mut s = space();
        let ctx = s.create(TEAM, CLS, 32, AllocKind::Context).unwrap();
        let st = collect(&mut s, TEAM, &[], &[ctx.segment()]).unwrap();
        assert_eq!(st.swept_segments, 0);
        assert!(s.read(TEAM, ctx).is_ok());
    }

    #[test]
    fn cycles_are_collected() {
        let mut s = space();
        let a = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        let b = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        s.write(TEAM, a, Word::Ptr(b)).unwrap();
        s.write(TEAM, b, Word::Ptr(a)).unwrap();
        // Cycle is unreachable: both must be swept, and marking must
        // terminate (no infinite loop).
        let st = collect_simple(&mut s, TEAM, &[]).unwrap();
        assert_eq!(st.swept_segments, 2);
    }

    #[test]
    fn gc_cost_scales_with_scanned_words() {
        let mut s = space();
        let mut roots = Vec::new();
        for _ in 0..5 {
            roots.push(s.create(TEAM, CLS, 100, AllocKind::Object).unwrap());
        }
        let st = collect_simple(&mut s, TEAM, &roots).unwrap();
        assert_eq!(st.words_scanned, 500);
        assert!(st.cost_cycles() >= 500);
    }

    #[test]
    fn dangling_roots_are_ignored() {
        let mut s = space();
        let a = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        s.free(TEAM, a, AllocKind::Object).unwrap();
        let st = collect_simple(&mut s, TEAM, &[a]).unwrap();
        assert_eq!(st.marked_segments, 0);
    }

    // --- Generational behaviour ---------------------------------------

    #[test]
    fn minor_sweeps_only_the_nursery() {
        let mut s = space();
        let old = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let st = collect_simple(&mut s, TEAM, &[old]).unwrap();
        assert_eq!(st.promoted_segments, 1);
        // Young garbage plus a young survivor.
        let keep = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let _garbage = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let st = collect_minor(&mut s, TEAM, &[keep], &[]).unwrap();
        assert!(st.minor);
        assert_eq!(st.swept_segments, 1, "only the young garbage is swept");
        assert_eq!(st.promoted_segments, 1, "the young survivor is promoted");
        assert!(s.read(TEAM, keep).is_ok());
        // Tenured garbage survives a minor collection (by generation)...
        assert!(s.read(TEAM, old).is_ok());
        // ...and falls to the next full collection.
        let st = collect_simple(&mut s, TEAM, &[keep]).unwrap();
        assert_eq!(st.swept_segments, 1);
        assert!(s.read(TEAM, old).is_err());
    }

    #[test]
    fn minor_does_not_scan_tenured_data() {
        let mut s = space();
        let big = s.create(TEAM, CLS, 1000, AllocKind::Object).unwrap();
        let st = collect_simple(&mut s, TEAM, &[big]).unwrap();
        assert_eq!(st.words_scanned, 1000, "full collection scans the ballast");
        for _ in 0..10 {
            let _ = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        }
        let st = collect_minor(&mut s, TEAM, &[big], &[]).unwrap();
        assert_eq!(st.swept_segments, 10);
        assert_eq!(
            st.words_scanned, 0,
            "tenured ballast and unreachable nursery cost no scanning"
        );
    }

    #[test]
    fn write_barrier_keeps_old_to_young_pointers_alive() {
        let mut s = space();
        let old = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        collect_simple(&mut s, TEAM, &[old]).unwrap(); // promote `old`
        let young = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        s.write(TEAM, young.with_offset(1).unwrap(), Word::Int(31))
            .unwrap();
        // The only reference to `young` lives in a tenured object. The
        // barrier must remember `old`; a minor collection then scans it.
        s.write(TEAM, old, Word::Ptr(young)).unwrap();
        assert_eq!(s.barrier_stats().remembered_segments, 1);
        let st = collect_minor(&mut s, TEAM, &[old], &[]).unwrap();
        assert!(st.remembered_scanned >= 1);
        assert_eq!(st.swept_segments, 0);
        assert_eq!(
            s.read(TEAM, young.with_offset(1).unwrap()).unwrap(),
            Word::Int(31)
        );
    }

    #[test]
    fn unbarriered_store_needs_pinning() {
        // Models the machine's context-cache store path: the pointer word
        // reaches memory without the ObjectSpace barrier (here: a raw
        // memory write). Pinning the holder keeps the young target alive.
        let mut s = space();
        let holder = s.create(TEAM, CLS, 32, AllocKind::Context).unwrap();
        collect_simple(&mut s, TEAM, &[holder]).unwrap(); // promote
        let young = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        let t = s.translate(TEAM, holder).unwrap();
        s.memory_mut().write(t.abs, Word::Ptr(young)).unwrap();
        assert_eq!(s.barrier_stats().remembered_segments, 0, "no barrier ran");
        let st = collect_minor(&mut s, TEAM, &[holder], &[holder.segment()]).unwrap();
        assert_eq!(st.swept_segments, 0);
        assert!(
            s.read(TEAM, young).is_ok(),
            "pinned holder must be scanned, keeping its young referent"
        );
    }

    #[test]
    fn minor_keeps_grown_tenured_objects_coherent() {
        let mut s = space();
        let old = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        s.write(TEAM, old, Word::Int(7)).unwrap();
        collect_simple(&mut s, TEAM, &[old]).unwrap(); // promote
        let new = s.grow(TEAM, old, 64).unwrap();
        // Rooted only through the stale tenured name: the re-pointed alias
        // lives in the (nursery) replacement block, so the minor mark
        // traverses it and keeps the new name alive via the forward edge.
        let st = collect_minor(&mut s, TEAM, &[old], &[]).unwrap();
        assert_eq!(st.swept_segments, 0);
        assert_eq!(s.read(TEAM, new).unwrap(), Word::Int(7));
        assert_eq!(s.read(TEAM, old).unwrap(), Word::Int(7));
    }

    #[test]
    fn remembered_set_resets_after_collection() {
        let mut s = space();
        let old = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        collect_simple(&mut s, TEAM, &[old]).unwrap();
        let young = s.create(TEAM, CLS, 2, AllocKind::Object).unwrap();
        s.write(TEAM, old, Word::Ptr(young)).unwrap();
        assert_eq!(s.barrier_stats().remembered_segments, 1);
        collect_minor(&mut s, TEAM, &[old], &[]).unwrap();
        assert_eq!(
            s.barrier_stats().remembered_segments,
            0,
            "promotion empties the nursery, so the remembered set resets"
        );
        assert_eq!(s.barrier_stats().nursery_segments, 0);
        // The promoted young object is still reachable through `old`.
        assert!(s.read(TEAM, young).is_ok());
    }

    // --- Randomized equivalence (satellite: minor+full vs full) --------

    fn xorshift(x: &mut u64) -> u64 {
        *x ^= *x << 13;
        *x ^= *x >> 7;
        *x ^= *x << 17;
        *x
    }

    /// Deterministically builds a two-generation object graph: phase-1
    /// objects promoted by a full collection, phase-2 young objects,
    /// random cross-generation pointers and grows. Returns every tracked
    /// capability and the final root set.
    fn build_random_graph(s: &mut ObjectSpace, seed: u64) -> (Vec<Fpa>, Vec<Fpa>) {
        let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let mut objs: Vec<Fpa> = Vec::new();
        // Phase 1: the future tenured generation.
        for _ in 0..(6 + xorshift(&mut rng) % 6) {
            if xorshift(&mut rng).is_multiple_of(3) {
                let n = 1 + (xorshift(&mut rng) % 5) as usize;
                objs.extend(build_list(s, TEAM, CLS, n).unwrap());
            } else {
                let words = 2 + xorshift(&mut rng) % 6;
                objs.push(s.create(TEAM, CLS, words, AllocKind::Object).unwrap());
            }
        }
        // Promote a random subset; the rest dies before tenuring.
        let keep: Vec<Fpa> = objs
            .iter()
            .filter(|_| !xorshift(&mut rng).is_multiple_of(4))
            .copied()
            .collect();
        collect(s, TEAM, &keep, &[]).unwrap();
        // Phase 2: the nursery.
        let phase1 = objs.len();
        for _ in 0..(6 + xorshift(&mut rng) % 6) {
            if xorshift(&mut rng).is_multiple_of(3) {
                let n = 1 + (xorshift(&mut rng) % 5) as usize;
                objs.extend(build_list(s, TEAM, CLS, n).unwrap());
            } else {
                let words = 2 + xorshift(&mut rng) % 6;
                objs.push(s.create(TEAM, CLS, words, AllocKind::Object).unwrap());
            }
        }
        // Random cross-generation pointers (old→young exercises the
        // barrier, young→old the generation cut-off) and a few grows
        // (forward edges across the generations).
        for _ in 0..(8 + xorshift(&mut rng) % 8) {
            let src = objs[(xorshift(&mut rng) as usize) % objs.len()];
            let dst = objs[(xorshift(&mut rng) as usize) % objs.len()];
            let _ = s.write(TEAM, src, Word::Ptr(dst));
        }
        for _ in 0..(xorshift(&mut rng) % 3) {
            let pick = objs[phase1 + (xorshift(&mut rng) as usize) % (objs.len() - phase1)];
            if let Ok(len) = s.length_of(TEAM, pick) {
                if let Ok(new) = s.grow(TEAM, pick, len + 8 + xorshift(&mut rng) % 24) {
                    objs.push(new);
                }
            }
        }
        let roots: Vec<Fpa> = objs
            .iter()
            .filter(|_| xorshift(&mut rng).is_multiple_of(3))
            .copied()
            .collect();
        (objs, roots)
    }

    #[test]
    fn minor_plus_full_frees_exactly_what_a_full_sweep_frees() {
        for seed in 1..=12u64 {
            let mut subject = space();
            let mut reference = space();
            let (objs_s, roots_s) = build_random_graph(&mut subject, seed);
            let (objs_r, roots_r) = build_random_graph(&mut reference, seed);
            assert_eq!(objs_s, objs_r, "graph construction must be deterministic");
            assert_eq!(roots_s, roots_r);

            // Reference: one full mark-sweep.
            collect(&mut reference, TEAM, &roots_r, &[]).unwrap();
            let alive_ref: Vec<bool> = objs_r
                .iter()
                .map(|o| reference.read(TEAM, *o).is_ok())
                .collect();

            // Subject: a minor collection first. Soundness: nothing the
            // reference keeps may be swept early.
            collect_minor(&mut subject, TEAM, &roots_s, &[]).unwrap();
            for (o, alive) in objs_s.iter().zip(&alive_ref) {
                if *alive {
                    assert!(
                        subject.read(TEAM, *o).is_ok(),
                        "minor collection swept a live object (seed {seed})"
                    );
                }
            }
            // Then a full collection: the combination must free exactly
            // the reference's garbage, word for word.
            collect(&mut subject, TEAM, &roots_s, &[]).unwrap();
            let alive_sub: Vec<bool> = objs_s
                .iter()
                .map(|o| subject.read(TEAM, *o).is_ok())
                .collect();
            assert_eq!(alive_sub, alive_ref, "liveness diverged (seed {seed})");
            assert_eq!(
                subject.memory().buddy().allocated_words(),
                reference.memory().buddy().allocated_words(),
                "allocated words diverged (seed {seed})"
            );
        }
    }
}
