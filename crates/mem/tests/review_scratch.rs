//! Review scratch: minor GC vs a tenured object grown after promotion,
//! reachable only from an unremembered tenured holder.

use com_fpa::FpaFormat;
use com_mem::{gc, AllocKind, ClassId, ObjectSpace, TeamId, Word};

const TEAM: TeamId = TeamId(0);
const CLS: ClassId = ClassId(9);

#[test]
fn grown_tenured_object_survives_minor_gc_via_tenured_holder() {
    let mut s = ObjectSpace::new(22, FpaFormat::COM);
    let holder = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
    let obj = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
    s.write(TEAM, obj, Word::Int(7)).unwrap();
    // holder -> obj stored BEFORE promotion (both end up tenured, holder
    // never enters the remembered set).
    s.write(TEAM, holder, Word::Ptr(obj)).unwrap();
    gc::collect(&mut s, TEAM, &[holder], &[]).unwrap(); // promote both
    assert_eq!(s.barrier_stats().remembered_segments, 0);

    // Grow the tenured object: its storage moves to a fresh (nursery)
    // block under a new (nursery) name; `obj` becomes a forwarded alias.
    let new = s.grow(TEAM, obj, 64).unwrap();
    assert_eq!(s.read(TEAM, new).unwrap(), Word::Int(7));

    // Minor collection rooted at the tenured holder only.
    let st = gc::collect_minor(&mut s, TEAM, &[holder], &[]).unwrap();
    eprintln!("minor stats: {st:?}");

    // The object is fully reachable: holder -> obj -(forward)-> new.
    assert_eq!(s.read(TEAM, obj).unwrap(), Word::Int(7), "stale alias read");
    assert!(
        s.read(TEAM, new).is_ok(),
        "grown (new) name swept by minor GC while reachable via holder->obj->forward"
    );
}

#[test]
fn grown_tenured_matches_reference_full_sweep() {
    // Differential twin: reference = one full sweep; subject = minor then
    // full. Liveness must match.
    let build = |s: &mut ObjectSpace| {
        let holder = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        let obj = s.create(TEAM, CLS, 4, AllocKind::Object).unwrap();
        s.write(TEAM, obj, Word::Int(7)).unwrap();
        s.write(TEAM, holder, Word::Ptr(obj)).unwrap();
        gc::collect(s, TEAM, &[holder], &[]).unwrap();
        let new = s.grow(TEAM, obj, 64).unwrap();
        (holder, obj, new)
    };
    let mut subject = ObjectSpace::new(22, FpaFormat::COM);
    let mut reference = ObjectSpace::new(22, FpaFormat::COM);
    let (h_s, o_s, n_s) = build(&mut subject);
    let (_h_r, o_r, n_r) = build(&mut reference);

    gc::collect(&mut reference, TEAM, &[_h_r], &[]).unwrap();
    gc::collect_minor(&mut subject, TEAM, &[h_s], &[]).unwrap();
    gc::collect(&mut subject, TEAM, &[h_s], &[]).unwrap();

    assert_eq!(
        subject.read(TEAM, o_s).is_ok(),
        reference.read(TEAM, o_r).is_ok(),
        "alias liveness diverged"
    );
    assert_eq!(
        subject.read(TEAM, n_s).is_ok(),
        reference.read(TEAM, n_r).is_ok(),
        "grown-name liveness diverged"
    );
}
