//! Property-based tests for memory-system invariants.

use com_fpa::FpaFormat;
use com_mem::{gc, AllocKind, BuddyAllocator, ClassId, ObjectSpace, TeamId, Word};
use proptest::prelude::*;

const TEAM: TeamId = TeamId(0);

proptest! {
    /// Buddy blocks are always aligned to their size and never overlap.
    #[test]
    fn buddy_alignment_and_disjointness(orders in prop::collection::vec(0u8..6, 1..40)) {
        let mut b = BuddyAllocator::new(12);
        let mut live: Vec<(u64, u64)> = Vec::new(); // (base, words)
        for o in orders {
            if let Ok(a) = b.alloc(o) {
                let words = 1u64 << o;
                prop_assert_eq!(a.0 % words, 0, "misaligned block");
                for &(lb, lw) in &live {
                    let disjoint = a.0 + words <= lb || lb + lw <= a.0;
                    prop_assert!(disjoint, "overlap: ({},{}) vs ({},{})", a.0, words, lb, lw);
                }
                live.push((a.0, words));
            }
        }
    }

    /// Alloc/free in arbitrary interleavings conserves words: allocated
    /// words equal the sum of live block sizes, and freeing everything
    /// coalesces back to the full space.
    #[test]
    fn buddy_conservation(script in prop::collection::vec((0u8..6, any::<bool>()), 1..60)) {
        let mut b = BuddyAllocator::new(12);
        let mut live: Vec<(com_mem::AbsAddr, u8)> = Vec::new();
        for (o, free_one) in script {
            if free_one && !live.is_empty() {
                let (a, order) = live.swap_remove(0);
                b.free(a, order).unwrap();
            } else if let Ok(a) = b.alloc(o) {
                live.push((a, o));
            }
            let expect: u64 = live.iter().map(|&(_, o)| 1u64 << o).sum();
            prop_assert_eq!(b.allocated_words(), expect);
        }
        for (a, o) in live.drain(..) {
            b.free(a, o).unwrap();
        }
        prop_assert_eq!(b.allocated_words(), 0);
        // Full coalescing: the whole space is one block again.
        prop_assert!(b.alloc(12).is_ok());
    }

    /// Read-after-write through virtual addresses returns exactly what was
    /// written, for arbitrary object sizes and offsets.
    #[test]
    fn read_after_write(
        sizes in prop::collection::vec(1u64..200, 1..20),
        payload in any::<i64>(),
    ) {
        let mut s = ObjectSpace::new(22, FpaFormat::COM);
        for words in sizes {
            let obj = s.create(TEAM, ClassId(9), words, AllocKind::Object).unwrap();
            let off = words - 1;
            let a = obj.with_offset(off).unwrap();
            s.write(TEAM, a, Word::Int(payload)).unwrap();
            prop_assert_eq!(s.read(TEAM, a).unwrap(), Word::Int(payload));
            // One past the end must bounds-trap.
            if off + 1 < obj.capacity() {
                let oob = obj.with_offset(off + 1).unwrap();
                prop_assert!(s.read(TEAM, oob).is_err());
            }
        }
    }

    /// Growing an object preserves every word, through both old and new
    /// names, for arbitrary grow chains.
    #[test]
    fn grow_preserves_contents(
        initial in 1u64..32,
        grows in prop::collection::vec(1u64..200, 1..5),
    ) {
        let mut s = ObjectSpace::new(22, FpaFormat::COM);
        let first = s.create(TEAM, ClassId(9), initial, AllocKind::Object).unwrap();
        for i in 0..initial {
            s.write(TEAM, first.with_offset(i).unwrap(), Word::Int(i as i64)).unwrap();
        }
        let mut cur = first;
        let mut len = initial;
        for g in grows {
            let target = len + g;
            cur = s.grow(TEAM, cur, target).unwrap();
            len = s.length_of(TEAM, cur).unwrap();
            prop_assert!(len >= target);
        }
        for i in 0..initial {
            prop_assert_eq!(
                s.read(TEAM, cur.with_offset(i).unwrap()).unwrap(),
                Word::Int(i as i64)
            );
            // The original name still reaches the same data (§2.2 aliasing).
            prop_assert_eq!(
                s.read(TEAM, first.with_offset(i).unwrap()).unwrap(),
                Word::Int(i as i64)
            );
        }
    }

    /// A minor collection followed by a full collection frees exactly the
    /// same objects (and the same number of words) as one reference full
    /// mark-sweep, on randomized two-generation object graphs with
    /// cross-generation pointers. (The deterministic-seed twin of this
    /// property runs unconditionally in `gc::tests`.)
    #[test]
    fn generational_collection_matches_reference_full_sweep(
        phase1 in prop::collection::vec((1u64..6, any::<bool>()), 2..12),
        phase2 in prop::collection::vec((1u64..6, any::<bool>()), 2..12),
        crosses in prop::collection::vec((any::<u16>(), any::<u16>()), 0..16),
        root_mask in prop::collection::vec(any::<bool>(), 64),
    ) {
        let build = |s: &mut ObjectSpace| -> (Vec<com_fpa::Fpa>, Vec<com_fpa::Fpa>) {
            let mut objs = Vec::new();
            for (words, chain) in &phase1 {
                if *chain {
                    objs.extend(gc::build_list(s, TEAM, ClassId(9), *words as usize).unwrap());
                } else {
                    objs.push(s.create(TEAM, ClassId(9), *words, AllocKind::Object).unwrap());
                }
            }
            // Promote everything allocated so far: the tenured generation.
            gc::collect(s, TEAM, &objs, &[]).unwrap();
            for (words, chain) in &phase2 {
                if *chain {
                    objs.extend(gc::build_list(s, TEAM, ClassId(9), *words as usize).unwrap());
                } else {
                    objs.push(s.create(TEAM, ClassId(9), *words, AllocKind::Object).unwrap());
                }
            }
            for (a, b) in &crosses {
                let src = objs[*a as usize % objs.len()];
                let dst = objs[*b as usize % objs.len()];
                let _ = s.write(TEAM, src, Word::Ptr(dst));
            }
            let roots: Vec<_> = objs
                .iter()
                .enumerate()
                .filter(|(i, _)| root_mask[i % root_mask.len()])
                .map(|(_, o)| *o)
                .collect();
            (objs, roots)
        };
        let mut subject = ObjectSpace::new(22, FpaFormat::COM);
        let mut reference = ObjectSpace::new(22, FpaFormat::COM);
        let (objs_s, roots_s) = build(&mut subject);
        let (objs_r, roots_r) = build(&mut reference);
        prop_assert_eq!(&objs_s, &objs_r);
        gc::collect(&mut reference, TEAM, &roots_r, &[]).unwrap();
        gc::collect_minor(&mut subject, TEAM, &roots_s, &[]).unwrap();
        // Soundness: nothing the reference keeps may die in the minor pass.
        for o in &objs_s {
            if reference.read(TEAM, *o).is_ok() {
                prop_assert!(subject.read(TEAM, *o).is_ok(), "minor swept a live object");
            }
        }
        gc::collect(&mut subject, TEAM, &roots_s, &[]).unwrap();
        for o in &objs_s {
            prop_assert_eq!(
                subject.read(TEAM, *o).is_ok(),
                reference.read(TEAM, *o).is_ok(),
                "liveness diverged"
            );
        }
        prop_assert_eq!(
            subject.memory().buddy().allocated_words(),
            reference.memory().buddy().allocated_words()
        );
    }

    /// GC never reclaims reachable objects and always reclaims unreachable
    /// ones; running it twice is idempotent.
    #[test]
    fn gc_precision(keep_mask in prop::collection::vec(any::<bool>(), 1..30)) {
        let mut s = ObjectSpace::new(22, FpaFormat::COM);
        let mut roots = Vec::new();
        let mut dead = Vec::new();
        for (i, keep) in keep_mask.iter().enumerate() {
            let obj = s.create(TEAM, ClassId(9), 3, AllocKind::Object).unwrap();
            s.write(TEAM, obj.with_offset(1).unwrap(), Word::Int(i as i64)).unwrap();
            if *keep {
                roots.push(obj);
            } else {
                dead.push(obj);
            }
        }
        let st = gc::collect_simple(&mut s, TEAM, &roots).unwrap();
        prop_assert_eq!(st.marked_segments as usize, roots.len());
        prop_assert_eq!(st.swept_segments as usize, dead.len());
        for (i, r) in roots.iter().enumerate() {
            let expected: Vec<i64> = keep_mask
                .iter()
                .enumerate()
                .filter(|(_, k)| **k)
                .map(|(j, _)| j as i64)
                .collect();
            prop_assert_eq!(
                s.read(TEAM, r.with_offset(1).unwrap()).unwrap(),
                Word::Int(expected[i])
            );
        }
        for d in &dead {
            prop_assert!(s.read(TEAM, *d).is_err());
        }
        let st2 = gc::collect_simple(&mut s, TEAM, &roots).unwrap();
        prop_assert_eq!(st2.swept_segments, 0, "second collection sweeps nothing");
    }
}
