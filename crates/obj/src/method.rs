//! Method references: the payload of ITLB entries and dictionary slots.

use com_fpa::Fpa;
use com_isa::PrimOp;

/// A defined (non-primitive) method: a stored code object and its arity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DefinedMethod {
    /// Base capability of the stored [`com_isa::CodeObject`].
    pub code: Fpa,
    /// Number of arguments (receiver counts as argument 1, §4).
    pub n_args: u8,
    /// Index into the executing machine's decoded-method slab, or
    /// [`DefinedMethod::UNRESOLVED`]. Dictionary entries start unresolved;
    /// the machine resolves the slot on first dispatch and installs the
    /// resolved reference in its ITLB, so a translation hit reaches the
    /// decoded code by one array index instead of a hash probe.
    pub slab: u32,
}

impl DefinedMethod {
    /// Sentinel slab index: the method has not been decoded yet.
    pub const UNRESOLVED: u32 = u32::MAX;

    /// A method reference that has not been decoded by any machine.
    pub fn new(code: Fpa, n_args: u8) -> Self {
        DefinedMethod {
            code,
            n_args,
            slab: Self::UNRESOLVED,
        }
    }

    /// The same reference carrying a decoded-slab index.
    pub fn resolved(mut self, slab: u32) -> Self {
        self.slab = slab;
        self
    }

    /// Whether [`slab`](Self::slab) names a decoded-slab entry.
    pub fn is_resolved(&self) -> bool {
        self.slab != Self::UNRESOLVED
    }
}

/// What an (opcode, classes) pair resolves to.
///
/// This mirrors the ITLB entry of §2.1: "A primitive bit describing whether
/// the method is primitive or defined; and a method field indicating how the
/// method is to be accomplished. … if the primitive bit is on, the method
/// field selects the result of a function unit. Otherwise the method field
/// points to a piece of code defining the method."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodRef {
    /// The primitive bit is on: the method field selects a function unit.
    Primitive(PrimOp),
    /// The primitive bit is off: the method field points to code.
    Defined(DefinedMethod),
}

impl MethodRef {
    /// Whether the primitive bit is set.
    pub fn is_primitive(&self) -> bool {
        matches!(self, MethodRef::Primitive(_))
    }

    /// The function unit selected, if primitive.
    pub fn as_primitive(&self) -> Option<PrimOp> {
        match self {
            MethodRef::Primitive(p) => Some(*p),
            MethodRef::Defined(_) => None,
        }
    }

    /// The defined method, if non-primitive.
    pub fn as_defined(&self) -> Option<DefinedMethod> {
        match self {
            MethodRef::Defined(d) => Some(*d),
            MethodRef::Primitive(_) => None,
        }
    }
}

impl core::fmt::Display for MethodRef {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MethodRef::Primitive(p) => write!(f, "prim:{p}"),
            MethodRef::Defined(d) => write!(f, "code@{}({} args)", d.code, d.n_args),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_fpa::{Fpa, FpaFormat};

    #[test]
    fn primitive_bit() {
        let p = MethodRef::Primitive(PrimOp::Add);
        assert!(p.is_primitive());
        assert_eq!(p.as_primitive(), Some(PrimOp::Add));
        assert_eq!(p.as_defined(), None);

        let code = Fpa::from_raw(0x40, FpaFormat::COM).unwrap();
        let d = MethodRef::Defined(DefinedMethod::new(code, 2));
        assert!(!d.is_primitive());
        assert_eq!(d.as_defined().unwrap().n_args, 2);
        assert_eq!(d.as_primitive(), None);
    }

    #[test]
    fn slab_resolution() {
        let code = Fpa::from_raw(0x40, FpaFormat::COM).unwrap();
        let d = DefinedMethod::new(code, 2);
        assert!(!d.is_resolved());
        let r = d.resolved(7);
        assert!(r.is_resolved());
        assert_eq!(r.slab, 7);
        // Resolution does not change the method's identity fields.
        assert_eq!((r.code, r.n_args), (d.code, d.n_args));
    }
}
