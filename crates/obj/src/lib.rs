//! The object system of the Caltech Object Machine: classes, message
//! dictionaries, method lookup and the instruction translation lookaside
//! buffer (§2.1 of the paper).
//!
//! "The method to be executed is found by associating the message name in a
//! hash table for the data type — or class — of a selected operand. This
//! association mechanism is quite costly … We cache associations into a
//! translation lookaside buffer."
//!
//! * [`AtomTable`] — interned symbols; `false`, `true`, `nil` are reserved.
//! * [`ClassTable`]/[`ClassInfo`] — the class hierarchy, with the primitive
//!   classes (UndefinedObject, SmallInteger, Float, Atom, Instruction)
//!   pre-registered and rooted at `Object`.
//! * [`MessageDictionary`] — per-class open-addressing hash tables with
//!   probe counting, so the *cost* of the paper's association mechanism is
//!   measurable.
//! * [`lookup_method`] — the full dispatch walk (dictionary per class, up
//!   the superclass chain), returning both the method and its cost.
//! * [`TrapSelector`]/[`lookup_trap_handler`] — the well-known software
//!   trap handler selectors (`doesNotUnderstand:`, `badOperands:`) and
//!   the chain walk that finds a class's installed handler method.
//! * [`Itlb`] — the ITLB: "an opcode and the set of operand object datatypes
//!   are associated to a method", with an optional second level ("a larger
//!   second level ITLB can be implemented in main memory", §5).
//! * [`install_standard_primitives`] — the §3.3 primitive method families
//!   installed into the primitive classes' dictionaries.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atoms;
mod class;
mod dict;
mod itlb;
mod lookup;
mod method;

pub use atoms::AtomTable;
pub use class::{install_standard_primitives, ClassInfo, ClassTable};
pub use dict::MessageDictionary;
pub use itlb::{Itlb, ItlbConfig, ItlbHit, ItlbKey};
pub use lookup::{lookup_method, lookup_trap_handler, LookupCost, LookupOutcome, TrapSelector};
pub use method::{DefinedMethod, MethodRef};
