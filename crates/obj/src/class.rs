//! The class table and the standard primitive installation.

use std::collections::HashMap;

use com_isa::{Opcode, PrimOp};
use com_mem::ClassId;

use crate::{MessageDictionary, MethodRef};

/// Metadata and message dictionary for one class.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    /// The class's name.
    pub name: String,
    /// Superclass, or `None` for the root (`Object`).
    pub superclass: Option<ClassId>,
    /// Number of named instance variables (the compiler lays these out at
    /// object offsets `0..n_ivars`).
    pub n_ivars: u16,
    /// The class's message dictionary.
    pub dict: MessageDictionary,
}

/// The class hierarchy: primitive classes pre-registered, user classes
/// allocated from [`ClassId::FIRST_OBJECT`] upward.
///
/// ```
/// use com_obj::ClassTable;
/// use com_mem::ClassId;
///
/// let mut classes = ClassTable::new();
/// let point = classes.define("Point", Some(ClassTable::OBJECT), 2).unwrap();
/// assert!(classes.get(point).is_some());
/// assert_eq!(classes.get(ClassId::SMALL_INT).unwrap().name, "SmallInteger");
/// ```
#[derive(Debug, Clone)]
pub struct ClassTable {
    classes: HashMap<ClassId, ClassInfo>,
    by_name: HashMap<String, ClassId>,
    next: u16,
}

impl ClassTable {
    /// The root class every chain terminates at.
    pub const OBJECT: ClassId = ClassId::FIRST_OBJECT;

    /// Creates a table with `Object` and the primitive classes registered.
    pub fn new() -> Self {
        let mut t = ClassTable {
            classes: HashMap::new(),
            by_name: HashMap::new(),
            next: ClassId::FIRST_OBJECT.0,
        };
        let object = t
            .define("Object", None, 0)
            .expect("object class definition cannot fail");
        debug_assert_eq!(object, Self::OBJECT);
        for (id, name) in [
            (ClassId::UNINIT, "UndefinedObject"),
            (ClassId::SMALL_INT, "SmallInteger"),
            (ClassId::FLOAT, "Float"),
            (ClassId::ATOM, "Atom"),
            (ClassId::INSTR, "Instruction"),
        ] {
            t.register(
                id,
                ClassInfo {
                    name: name.to_string(),
                    superclass: Some(object),
                    n_ivars: 0,
                    dict: MessageDictionary::new(),
                },
            );
        }
        t
    }

    fn register(&mut self, id: ClassId, info: ClassInfo) {
        self.by_name.insert(info.name.clone(), id);
        self.classes.insert(id, info);
    }

    /// Defines a new class, allocating its id.
    ///
    /// # Errors
    ///
    /// Returns the name of the conflicting class if `name` is taken.
    pub fn define(
        &mut self,
        name: &str,
        superclass: Option<ClassId>,
        n_ivars: u16,
    ) -> Result<ClassId, String> {
        if self.by_name.contains_key(name) {
            return Err(format!("class {name} already defined"));
        }
        let id = ClassId(self.next);
        self.next += 1;
        self.register(
            id,
            ClassInfo {
                name: name.to_string(),
                superclass,
                n_ivars,
                dict: MessageDictionary::new(),
            },
        );
        Ok(id)
    }

    /// Looks a class up by id.
    pub fn get(&self, id: ClassId) -> Option<&ClassInfo> {
        self.classes.get(&id)
    }

    /// Looks a class up mutably by id.
    pub fn get_mut(&mut self, id: ClassId) -> Option<&mut ClassInfo> {
        self.classes.get_mut(&id)
    }

    /// Finds a class id by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Iterates over every registered class, in ascending id order — the
    /// closed world a whole-image analysis enumerates (every receiver a
    /// machine can ever dispatch on carries one of these ids).
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &ClassInfo)> {
        let mut ids: Vec<ClassId> = self.classes.keys().copied().collect();
        ids.sort_by_key(|c| c.0);
        ids.into_iter().map(|id| (id, &self.classes[&id]))
    }

    /// All registered class ids, ascending.
    pub fn ids(&self) -> Vec<ClassId> {
        let mut ids: Vec<ClassId> = self.classes.keys().copied().collect();
        ids.sort_by_key(|c| c.0);
        ids
    }

    /// Installs a method into a class's dictionary.
    ///
    /// # Panics
    ///
    /// Panics if the class does not exist — installing into a phantom class
    /// is a compiler bug, not a runtime condition.
    pub fn install(&mut self, class: ClassId, sel: Opcode, method: MethodRef) {
        self.classes
            .get_mut(&class)
            .unwrap_or_else(|| panic!("install into unknown class {class}"))
            .dict
            .insert(sel, method);
    }

    /// Number of classes (primitive + user).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the table is empty (never, after construction).
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Total instance-variable count of `class` including inherited ones —
    /// the word offset where indexed storage begins.
    pub fn total_ivars(&self, class: ClassId) -> u16 {
        let mut total = 0;
        let mut cur = Some(class);
        while let Some(c) = cur {
            match self.get(c) {
                Some(info) => {
                    total += info.n_ivars;
                    cur = info.superclass;
                }
                None => break,
            }
        }
        total
    }
}

impl Default for ClassTable {
    fn default() -> Self {
        Self::new()
    }
}

/// Installs the §3.3 primitive method families into the primitive classes:
///
/// * arithmetic on `SmallInteger` and (except modulo) `Float`;
/// * multiple-precision and bit-field operations on `SmallInteger`;
/// * comparisons on both numeric classes;
/// * `==` (same object), moves, `at:`/`at:put:`, tag access, and control
///   transfer on `Object`, inherited by every class;
/// * jumps additionally on `Atom` and `SmallInteger` (branch conditions).
pub fn install_standard_primitives(classes: &mut ClassTable) {
    use MethodRef::Primitive as P;

    let int = ClassId::SMALL_INT;
    let float = ClassId::FLOAT;
    let atom = ClassId::ATOM;
    let object = ClassTable::OBJECT;

    // Arithmetic.
    for (op, p) in [
        (Opcode::ADD, PrimOp::Add),
        (Opcode::SUB, PrimOp::Sub),
        (Opcode::MUL, PrimOp::Mul),
        (Opcode::DIV, PrimOp::Div),
        (Opcode::NEG, PrimOp::Neg),
    ] {
        classes.install(int, op, P(p));
        classes.install(float, op, P(p));
    }
    classes.install(int, Opcode::MOD, P(PrimOp::Mod));

    // Multiple precision and bit fields: integers only.
    for (op, p) in [
        (Opcode::CARRY, PrimOp::Carry),
        (Opcode::MULT1, PrimOp::Mult1),
        (Opcode::MULT2, PrimOp::Mult2),
        (Opcode::SHIFT, PrimOp::Shift),
        (Opcode::ASHIFT, PrimOp::AShift),
        (Opcode::ROTATE, PrimOp::Rotate),
        (Opcode::MASK, PrimOp::Mask),
        (Opcode::AND, PrimOp::And),
        (Opcode::OR, PrimOp::Or),
        (Opcode::NOT, PrimOp::Not),
        (Opcode::XOR, PrimOp::Xor),
    ] {
        classes.install(int, op, P(p));
    }

    // Comparisons on both numeric classes.
    for (op, p) in [
        (Opcode::LT, PrimOp::Lt),
        (Opcode::LE, PrimOp::Le),
        (Opcode::EQ, PrimOp::EqVal),
        (Opcode::NE, PrimOp::NeVal),
        (Opcode::GT, PrimOp::Gt),
        (Opcode::GE, PrimOp::Ge),
    ] {
        classes.install(int, op, P(p));
        classes.install(float, op, P(p));
    }
    // Equality on atoms compares identity, which EqVal implements for atoms.
    classes.install(atom, Opcode::EQ, P(PrimOp::EqVal));
    classes.install(atom, Opcode::NE, P(PrimOp::NeVal));

    // Universal operations, inherited from Object by every class.
    for (op, p) in [
        (Opcode::SAME, PrimOp::Same),
        (Opcode::MOVE, PrimOp::Move),
        (Opcode::MOVEA, PrimOp::Movea),
        (Opcode::AT, PrimOp::At),
        (Opcode::ATPUT, PrimOp::AtPut),
        (Opcode::AS, PrimOp::TagAs),
        (Opcode::TAG, PrimOp::TagOf),
        (Opcode::XFER, PrimOp::Xfer),
        (Opcode::NEW, PrimOp::New),
        (Opcode::GROW, PrimOp::Grow),
        (Opcode::RAWAT, PrimOp::At),
        (Opcode::RAWATPUT, PrimOp::AtPut),
    ] {
        classes.install(object, op, P(p));
    }

    // Branch conditions are atoms (true/false) or integers.
    for class in [atom, int] {
        classes.install(class, Opcode::FJMP, P(PrimOp::Fjmp));
        classes.install(class, Opcode::RJMP, P(PrimOp::Rjmp));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_classes_preregistered() {
        let t = ClassTable::new();
        assert_eq!(t.get(ClassId::SMALL_INT).unwrap().name, "SmallInteger");
        assert_eq!(t.by_name("Float"), Some(ClassId::FLOAT));
        assert_eq!(
            t.get(ClassId::FLOAT).unwrap().superclass,
            Some(ClassTable::OBJECT)
        );
    }

    #[test]
    fn user_classes_get_fresh_ids() {
        let mut t = ClassTable::new();
        let a = t.define("A", Some(ClassTable::OBJECT), 1).unwrap();
        let b = t.define("B", Some(a), 2).unwrap();
        assert_ne!(a, b);
        assert!(a.0 >= ClassId::FIRST_OBJECT.0);
        assert!(t.define("A", None, 0).is_err());
        assert_eq!(t.total_ivars(b), 3);
    }

    #[test]
    fn standard_primitives_cover_numerics() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let int_dict = &t.get(ClassId::SMALL_INT).unwrap().dict;
        assert!(int_dict.lookup(Opcode::ADD).0.is_some());
        assert!(int_dict.lookup(Opcode::MOD).0.is_some());
        let float_dict = &t.get(ClassId::FLOAT).unwrap().dict;
        assert!(float_dict.lookup(Opcode::ADD).0.is_some());
        assert!(
            float_dict.lookup(Opcode::MOD).0.is_none(),
            "modulo is integer-only (§3.3)"
        );
        let obj_dict = &t.get(ClassTable::OBJECT).unwrap().dict;
        assert!(obj_dict.lookup(Opcode::SAME).0.is_some());
        assert!(obj_dict.lookup(Opcode::AT).0.is_some());
    }
}
