//! Interned atoms (symbols).

use std::collections::HashMap;

use com_mem::AtomId;

/// The atom interning table.
///
/// Atoms are immediate symbol values (§3.2's `atom` tag). Three are
/// reserved at fixed ids so that the machine and the constant tables can
/// refer to them without a lookup: `false` (0), `true` (1), `nil` (2) —
/// "the objects true, false, and nil" of §3.4.
///
/// ```
/// use com_obj::AtomTable;
/// let mut atoms = AtomTable::new();
/// assert_eq!(atoms.intern("true"), com_mem::AtomId(1));
/// let foo = atoms.intern("foo");
/// assert_eq!(atoms.intern("foo"), foo);
/// assert_eq!(atoms.name(foo), Some("foo"));
/// ```
#[derive(Debug, Clone)]
pub struct AtomTable {
    names: Vec<String>,
    by_name: HashMap<String, AtomId>,
}

impl AtomTable {
    /// The reserved `false` atom.
    pub const FALSE: AtomId = AtomId(0);
    /// The reserved `true` atom.
    pub const TRUE: AtomId = AtomId(1);
    /// The reserved `nil` atom.
    pub const NIL: AtomId = AtomId(2);

    /// Creates a table with the reserved atoms interned.
    pub fn new() -> Self {
        let mut t = AtomTable {
            names: Vec::new(),
            by_name: HashMap::new(),
        };
        for name in ["false", "true", "nil"] {
            t.intern(name);
        }
        t
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&mut self, name: &str) -> AtomId {
        if let Some(id) = self.by_name.get(name) {
            return *id;
        }
        let id = AtomId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// The name of an atom, if allocated by this table.
    pub fn name(&self, id: AtomId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of interned atoms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Always false: the reserved atoms are interned at construction.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Truthiness of an atom under the machine's branch rules: `true` is
    /// true, `false` and `nil` are false, anything else is `None`
    /// (a branch-condition trap).
    pub fn truthiness(id: AtomId) -> Option<bool> {
        match id {
            Self::TRUE => Some(true),
            Self::FALSE | Self::NIL => Some(false),
            _ => None,
        }
    }
}

impl Default for AtomTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserved_atoms_have_fixed_ids() {
        let t = AtomTable::new();
        assert_eq!(t.name(AtomTable::FALSE), Some("false"));
        assert_eq!(t.name(AtomTable::TRUE), Some("true"));
        assert_eq!(t.name(AtomTable::NIL), Some("nil"));
    }

    #[test]
    fn interning_is_stable() {
        let mut t = AtomTable::new();
        let a = t.intern("quicksort");
        let b = t.intern("quicksort");
        assert_eq!(a, b);
        assert_eq!(t.len(), 4);
        assert_eq!(t.name(AtomId(999)), None);
    }

    #[test]
    fn truthiness_rules() {
        assert_eq!(AtomTable::truthiness(AtomTable::TRUE), Some(true));
        assert_eq!(AtomTable::truthiness(AtomTable::FALSE), Some(false));
        assert_eq!(AtomTable::truthiness(AtomTable::NIL), Some(false));
        assert_eq!(AtomTable::truthiness(AtomId(77)), None);
    }
}
