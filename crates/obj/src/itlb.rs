//! The instruction translation lookaside buffer (§2.1).
//!
//! "Abstract instruction decoding, although slow in software can be
//! mitigated by the use of an associative mechanism in the instruction
//! translation step which bears remarkable similarity to virtual address
//! translation. This is an instruction translation lookaside buffer (ITLB),
//! in which an opcode and the set of operand object datatypes are associated
//! to a method."

use com_cache::{CacheConfig, CacheError, CacheStats, SetAssocCache};
use com_isa::Opcode;
use com_mem::ClassId;

use crate::MethodRef;

/// The associative key: "an opcode and a set of operand classes" (§2.1).
///
/// The two slots carry the classes of the source operands (receiver first);
/// absent operands use [`ClassId::NONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItlbKey {
    /// The abstract opcode (message selector).
    pub opcode: Opcode,
    /// Classes of the source operands, receiver first.
    pub classes: [ClassId; 2],
}

impl ItlbKey {
    /// Builds a key for a receiver-only send.
    pub fn unary(opcode: Opcode, receiver: ClassId) -> Self {
        ItlbKey {
            opcode,
            classes: [receiver, ClassId::NONE],
        }
    }

    /// Builds a key for a receiver + argument send.
    pub fn binary(opcode: Opcode, receiver: ClassId, arg: ClassId) -> Self {
        ItlbKey {
            opcode,
            classes: [receiver, arg],
        }
    }
}

impl core::fmt::Display for ItlbKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "({} {} {})", self.opcode, self.classes[0], self.classes[1])
    }
}

/// Geometry of the ITLB, optionally with a second level.
///
/// §5: "If this hit ratio is insufficient, a larger second level ITLB can be
/// implemented in main memory and accessed by miss processing hardware. Only
/// a miss in both caches would result in a trap."
#[derive(Debug, Clone, Copy)]
pub struct ItlbConfig {
    /// First-level geometry.
    pub l1: CacheConfig,
    /// Optional second-level geometry (in main memory; slower but larger).
    pub l2: Option<CacheConfig>,
}

impl ItlbConfig {
    /// The paper's recommended first level: 512 entries, 2-way ("a 99% hit
    /// ratio can be realized with a 512 entry 2-way associative cache").
    ///
    /// # Errors
    ///
    /// Never fails for the built-in geometry; the `Result` mirrors
    /// [`CacheConfig::new`] so callers can build variants uniformly.
    pub fn paper_default() -> Result<Self, CacheError> {
        Ok(ItlbConfig {
            l1: CacheConfig::new(512, 2)?,
            l2: None,
        })
    }

    /// Adds a second level of `entries` × `ways`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadGeometry`] for inconsistent geometry.
    pub fn with_l2(mut self, entries: usize, ways: usize) -> Result<Self, CacheError> {
        self.l2 = Some(CacheConfig::new(entries, ways)?);
        Ok(self)
    }
}

/// Where an ITLB lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItlbHit {
    /// Found in the first level.
    L1,
    /// Found in the second level (promoted to L1).
    L2,
    /// Missed everywhere: full method lookup required.
    Miss,
}

/// The ITLB: a (possibly two-level) cache from [`ItlbKey`] to [`MethodRef`].
///
/// ```
/// use com_cache::CacheConfig;
/// use com_isa::{Opcode, PrimOp};
/// use com_mem::ClassId;
/// use com_obj::{Itlb, ItlbConfig, ItlbKey, MethodRef};
///
/// # fn main() -> Result<(), com_cache::CacheError> {
/// let mut itlb = Itlb::new(ItlbConfig::paper_default()?);
/// let key = ItlbKey::binary(Opcode::ADD, ClassId::SMALL_INT, ClassId::SMALL_INT);
/// assert!(itlb.lookup(key).is_none());
/// itlb.fill(key, MethodRef::Primitive(PrimOp::Add));
/// assert!(itlb.lookup(key).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Itlb {
    l1: SetAssocCache<ItlbKey, MethodRef>,
    l2: Option<SetAssocCache<ItlbKey, MethodRef>>,
    last_hit: ItlbHit,
}

impl Itlb {
    /// Creates an ITLB with the given geometry.
    pub fn new(config: ItlbConfig) -> Self {
        Itlb {
            l1: SetAssocCache::new(config.l1),
            l2: config.l2.map(SetAssocCache::new),
            last_hit: ItlbHit::Miss,
        }
    }

    /// Looks up a key; L2 hits are promoted into L1 (victims demoted).
    pub fn lookup(&mut self, key: ItlbKey) -> Option<MethodRef> {
        if let Some(m) = self.l1.lookup(&key) {
            self.last_hit = ItlbHit::L1;
            return Some(*m);
        }
        if let Some(l2) = &mut self.l2 {
            if let Some(m) = l2.lookup(&key) {
                let m = *m;
                self.last_hit = ItlbHit::L2;
                if let Some((vk, vv)) = self.l1.fill(key, m) {
                    l2.fill(vk, vv);
                }
                return Some(m);
            }
        }
        self.last_hit = ItlbHit::Miss;
        None
    }

    /// Where the most recent lookup hit.
    pub fn last_hit(&self) -> ItlbHit {
        self.last_hit
    }

    /// Installs a resolution after a miss; L1 victims demote to L2.
    pub fn fill(&mut self, key: ItlbKey, method: MethodRef) {
        if let Some((vk, vv)) = self.l1.fill(key, method) {
            if let Some(l2) = &mut self.l2 {
                l2.fill(vk, vv);
            }
        }
        if let Some(l2) = &mut self.l2 {
            l2.fill(key, method);
        }
    }

    /// Invalidates every cached resolution (required when a method is
    /// redefined — "no object code need ever be modified", §2.1, but stale
    /// translations must go).
    pub fn flush(&mut self) {
        self.l1.clear();
        if let Some(l2) = &mut self.l2 {
            l2.clear();
        }
    }

    /// First-level statistics.
    pub fn l1_stats(&self) -> CacheStats {
        self.l1.stats()
    }

    /// Second-level statistics, if a second level exists.
    pub fn l2_stats(&self) -> Option<CacheStats> {
        self.l2.as_ref().map(|c| c.stats())
    }

    /// Resets statistics on both levels (warmup boundary, §5).
    pub fn reset_stats(&mut self) {
        self.l1.reset_stats();
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::PrimOp;

    fn key(op: u16, r: u16) -> ItlbKey {
        ItlbKey::binary(Opcode(op), ClassId(r), ClassId::SMALL_INT)
    }

    fn add() -> MethodRef {
        MethodRef::Primitive(PrimOp::Add)
    }

    #[test]
    fn fill_then_hit() {
        let mut itlb = Itlb::new(ItlbConfig::paper_default().unwrap());
        assert_eq!(itlb.lookup(key(1, 1)), None);
        assert_eq!(itlb.last_hit(), ItlbHit::Miss);
        itlb.fill(key(1, 1), add());
        assert_eq!(itlb.lookup(key(1, 1)), Some(add()));
        assert_eq!(itlb.last_hit(), ItlbHit::L1);
        assert_eq!(itlb.l1_stats().hits, 1);
    }

    #[test]
    fn distinct_class_signatures_are_distinct_entries() {
        let mut itlb = Itlb::new(ItlbConfig::paper_default().unwrap());
        itlb.fill(key(1, 1), add());
        assert_eq!(itlb.lookup(key(1, 2)), None, "different receiver class");
        assert_eq!(
            itlb.lookup(ItlbKey::unary(Opcode(1), ClassId(1))),
            None,
            "different arity signature"
        );
    }

    #[test]
    fn l2_promotes_on_hit() {
        let cfg = ItlbConfig {
            l1: CacheConfig::new(2, 2).unwrap(),
            l2: Some(CacheConfig::new(64, 2).unwrap()),
        };
        let mut itlb = Itlb::new(cfg);
        // Fill three keys: one must be evicted from the tiny L1 into L2.
        for i in 0..3 {
            itlb.fill(key(i, 1), add());
        }
        let mut l2_hits = 0;
        for i in 0..3 {
            match itlb.lookup(key(i, 1)) {
                Some(_) => {
                    if itlb.last_hit() == ItlbHit::L2 {
                        l2_hits += 1;
                    }
                }
                None => panic!("entry {i} lost from both levels"),
            }
        }
        assert!(l2_hits >= 1, "expected at least one L2 promotion");
    }

    #[test]
    fn flush_clears_everything() {
        let mut itlb = Itlb::new(ItlbConfig::paper_default().unwrap());
        itlb.fill(key(1, 1), add());
        itlb.flush();
        assert_eq!(itlb.lookup(key(1, 1)), None);
    }
}
