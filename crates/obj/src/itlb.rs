//! The instruction translation lookaside buffer (§2.1).
//!
//! "Abstract instruction decoding, although slow in software can be
//! mitigated by the use of an associative mechanism in the instruction
//! translation step which bears remarkable similarity to virtual address
//! translation. This is an instruction translation lookaside buffer (ITLB),
//! in which an opcode and the set of operand object datatypes are associated
//! to a method."
//!
//! The first level is a fixed-size probe array — the direct-mapped /
//! set-associative RAM the hardware actually describes: the key is packed
//! into one word, a multiplicative hash selects the set, and the ways of
//! that set are probed in place. No per-lookup heap hashing is involved,
//! which matters because *every* COM instruction translates through this
//! structure. The legacy map-backed storage is kept behind
//! [`ItlbConfig::with_reference_storage`] as the pre-overhaul baseline for
//! the wall-clock bench pipeline.

use com_cache::{CacheConfig, CacheError, CacheStats, Replacement, SetAssocCache};
use com_isa::Opcode;
use com_mem::ClassId;

use crate::MethodRef;

/// The associative key: "an opcode and a set of operand classes" (§2.1).
///
/// The two slots carry the classes of the source operands (receiver first);
/// absent operands use [`ClassId::NONE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ItlbKey {
    /// The abstract opcode (message selector).
    pub opcode: Opcode,
    /// Classes of the source operands, receiver first.
    pub classes: [ClassId; 2],
}

impl ItlbKey {
    /// Builds a key for a receiver-only send.
    pub fn unary(opcode: Opcode, receiver: ClassId) -> Self {
        ItlbKey {
            opcode,
            classes: [receiver, ClassId::NONE],
        }
    }

    /// Builds a key for a receiver + argument send.
    pub fn binary(opcode: Opcode, receiver: ClassId, arg: ClassId) -> Self {
        ItlbKey {
            opcode,
            classes: [receiver, arg],
        }
    }

    /// Packs the key into one tag word: opcode in bits 0..16, receiver
    /// class in 16..32, argument class in 32..48. The packing is injective,
    /// so tag equality is key equality.
    fn pack(self) -> u64 {
        self.opcode.0 as u64 | (self.classes[0].0 as u64) << 16 | (self.classes[1].0 as u64) << 32
    }

    /// Inverse of [`pack`](Self::pack).
    fn unpack(tag: u64) -> Self {
        ItlbKey {
            opcode: Opcode(tag as u16),
            classes: [ClassId((tag >> 16) as u16), ClassId((tag >> 32) as u16)],
        }
    }
}

impl core::fmt::Display for ItlbKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "({} {} {})",
            self.opcode, self.classes[0], self.classes[1]
        )
    }
}

/// Geometry of the ITLB, optionally with a second level.
///
/// §5: "If this hit ratio is insufficient, a larger second level ITLB can be
/// implemented in main memory and accessed by miss processing hardware. Only
/// a miss in both caches would result in a trap."
#[derive(Debug, Clone, Copy)]
pub struct ItlbConfig {
    /// First-level geometry.
    pub l1: CacheConfig,
    /// Optional second-level geometry (in main memory; slower but larger).
    pub l2: Option<CacheConfig>,
    /// Use the legacy map-backed L1 storage instead of the probe array.
    /// Same geometry and replacement policy, but the two storages hash
    /// keys to sets differently (SipHash vs the packed-key Fibonacci
    /// hash), so conflict evictions — and therefore miss counts — can
    /// differ once a working set collides within sets. They are exactly
    /// equivalent when fully associative (tested), and in practice for
    /// working sets well under capacity; the bench pipeline asserts the
    /// simulated stats matched on every workload it reports. Exists so
    /// the bench can measure the pre-overhaul interpreter.
    pub reference_storage: bool,
}

impl ItlbConfig {
    /// The paper's recommended first level: 512 entries, 2-way ("a 99% hit
    /// ratio can be realized with a 512 entry 2-way associative cache").
    ///
    /// # Errors
    ///
    /// Never fails for the built-in geometry; the `Result` mirrors
    /// [`CacheConfig::new`] so callers can build variants uniformly.
    pub fn paper_default() -> Result<Self, CacheError> {
        Ok(ItlbConfig {
            l1: CacheConfig::new(512, 2)?,
            l2: None,
            reference_storage: false,
        })
    }

    /// Adds a second level of `entries` × `ways`.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadGeometry`] for inconsistent geometry.
    pub fn with_l2(mut self, entries: usize, ways: usize) -> Result<Self, CacheError> {
        self.l2 = Some(CacheConfig::new(entries, ways)?);
        Ok(self)
    }

    /// Selects the legacy map-backed first-level storage (bench baseline).
    pub fn with_reference_storage(mut self) -> Self {
        self.reference_storage = true;
        self
    }
}

/// Where an ITLB lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItlbHit {
    /// Found in the first level.
    L1,
    /// Found in the second level (promoted to L1).
    L2,
    /// Missed everywhere: full method lookup required.
    Miss,
}

/// One valid line of the probe array.
#[derive(Debug, Clone, Copy)]
struct ProbeLine {
    tag: u64,
    value: MethodRef,
    /// Monotonic counter value at last use (LRU) …
    last_used: u64,
    /// … and at fill time (FIFO).
    filled_at: u64,
}

/// The fixed-size probe array backing the first level: `sets × ways` lines
/// in one flat allocation, indexed by a multiplicative hash of the packed
/// key. `ways == 1` is the direct-mapped case; larger `ways` probe the
/// set's lines linearly, exactly as the hardware comparators would.
#[derive(Debug)]
struct ProbeArray {
    config: CacheConfig,
    sets: usize,
    /// `sets - 1` when the set count is a power of two (single AND), else 0
    /// (fall back to modulo).
    mask: u64,
    ways: usize,
    lines: Vec<Option<ProbeLine>>,
    clock: u64,
    rng: u64,
    stats: CacheStats,
}

impl ProbeArray {
    fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways();
        ProbeArray {
            config,
            sets,
            mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                0
            },
            ways,
            lines: vec![None; sets * ways],
            clock: 0,
            rng: config.seed(),
            stats: CacheStats::default(),
        }
    }

    #[inline]
    fn set_base(&self, tag: u64) -> usize {
        // Fibonacci hashing: one multiply, top bits mod the set count.
        let h = tag.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        let set = if self.mask != 0 {
            (h & self.mask) as usize
        } else {
            h as usize % self.sets
        };
        set * self.ways
    }

    #[inline]
    fn lookup(&mut self, key: ItlbKey) -> Option<MethodRef> {
        self.clock += 1;
        let tag = key.pack();
        let base = self.set_base(tag);
        for l in self.lines[base..base + self.ways].iter_mut().flatten() {
            if l.tag == tag {
                l.last_used = self.clock;
                self.stats.hits += 1;
                return Some(l.value);
            }
        }
        self.stats.misses += 1;
        None
    }

    fn fill(&mut self, key: ItlbKey, value: MethodRef) -> Option<(ItlbKey, MethodRef)> {
        self.clock += 1;
        self.stats.fills += 1;
        let tag = key.pack();
        let base = self.set_base(tag);
        let slot = &mut self.lines[base..base + self.ways];
        // Refill in place, or take the first invalid way.
        for line in slot.iter_mut() {
            match line {
                Some(l) if l.tag == tag => {
                    l.value = value;
                    l.last_used = self.clock;
                    return None;
                }
                _ => {}
            }
        }
        for line in slot.iter_mut() {
            if line.is_none() {
                *line = Some(ProbeLine {
                    tag,
                    value,
                    last_used: self.clock,
                    filled_at: self.clock,
                });
                return None;
            }
        }
        // Set full: evict per the configured policy.
        let victim = match self.config.replacement() {
            Replacement::Lru => slot
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.expect("set is full").last_used)
                .map(|(i, _)| i)
                .expect("set is nonempty"),
            Replacement::Fifo => slot
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.expect("set is full").filled_at)
                .map(|(i, _)| i)
                .expect("set is nonempty"),
            Replacement::Random => {
                // xorshift64*
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % self.ways as u64) as usize
            }
        };
        self.stats.evictions += 1;
        let old = slot[victim].replace(ProbeLine {
            tag,
            value,
            last_used: self.clock,
            filled_at: self.clock,
        });
        old.map(|l| (ItlbKey::unpack(l.tag), l.value))
    }

    fn clear(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = None);
    }

    /// Resident line count (diagnostics).
    fn len(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }
}

/// First-level storage: the probe array, or the legacy map-backed cache.
#[derive(Debug)]
enum L1 {
    Probe(ProbeArray),
    Reference(SetAssocCache<ItlbKey, MethodRef>),
}

/// The ITLB: a (possibly two-level) cache from [`ItlbKey`] to [`MethodRef`].
///
/// ```
/// use com_cache::CacheConfig;
/// use com_isa::{Opcode, PrimOp};
/// use com_mem::ClassId;
/// use com_obj::{Itlb, ItlbConfig, ItlbKey, MethodRef};
///
/// # fn main() -> Result<(), com_cache::CacheError> {
/// let mut itlb = Itlb::new(ItlbConfig::paper_default()?);
/// let key = ItlbKey::binary(Opcode::ADD, ClassId::SMALL_INT, ClassId::SMALL_INT);
/// assert!(itlb.lookup(key).is_none());
/// itlb.fill(key, MethodRef::Primitive(PrimOp::Add));
/// assert!(itlb.lookup(key).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Itlb {
    l1: L1,
    l2: Option<SetAssocCache<ItlbKey, MethodRef>>,
    last_hit: ItlbHit,
}

impl Itlb {
    /// Creates an ITLB with the given geometry.
    pub fn new(config: ItlbConfig) -> Self {
        Itlb {
            l1: if config.reference_storage {
                L1::Reference(SetAssocCache::new(config.l1))
            } else {
                L1::Probe(ProbeArray::new(config.l1))
            },
            l2: config.l2.map(SetAssocCache::new),
            last_hit: ItlbHit::Miss,
        }
    }

    #[inline]
    fn l1_lookup(&mut self, key: ItlbKey) -> Option<MethodRef> {
        match &mut self.l1 {
            L1::Probe(p) => p.lookup(key),
            L1::Reference(c) => c.lookup(&key).copied(),
        }
    }

    fn l1_fill(&mut self, key: ItlbKey, value: MethodRef) -> Option<(ItlbKey, MethodRef)> {
        match &mut self.l1 {
            L1::Probe(p) => p.fill(key, value),
            L1::Reference(c) => c.fill(key, value),
        }
    }

    /// Looks up a key; L2 hits are promoted into L1 (victims demoted).
    #[inline]
    pub fn lookup(&mut self, key: ItlbKey) -> Option<MethodRef> {
        if let Some(m) = self.l1_lookup(key) {
            self.last_hit = ItlbHit::L1;
            return Some(m);
        }
        if self.l2.is_some() {
            let hit = self.l2.as_mut().expect("checked").lookup(&key).copied();
            if let Some(m) = hit {
                self.last_hit = ItlbHit::L2;
                if let Some((vk, vv)) = self.l1_fill(key, m) {
                    self.l2.as_mut().expect("checked").fill(vk, vv);
                }
                return Some(m);
            }
        }
        self.last_hit = ItlbHit::Miss;
        None
    }

    /// Where the most recent lookup hit.
    pub fn last_hit(&self) -> ItlbHit {
        self.last_hit
    }

    /// Installs a resolution after a miss; L1 victims demote to L2.
    pub fn fill(&mut self, key: ItlbKey, method: MethodRef) {
        if let Some((vk, vv)) = self.l1_fill(key, method) {
            if let Some(l2) = &mut self.l2 {
                l2.fill(vk, vv);
            }
        }
        if let Some(l2) = &mut self.l2 {
            l2.fill(key, method);
        }
    }

    /// Invalidates every cached resolution (required when a method is
    /// redefined — "no object code need ever be modified", §2.1, but stale
    /// translations must go).
    pub fn flush(&mut self) {
        match &mut self.l1 {
            L1::Probe(p) => p.clear(),
            L1::Reference(c) => c.clear(),
        }
        if let Some(l2) = &mut self.l2 {
            l2.clear();
        }
    }

    /// Number of resolutions resident in the first level.
    pub fn l1_len(&self) -> usize {
        match &self.l1 {
            L1::Probe(p) => p.len(),
            L1::Reference(c) => c.len(),
        }
    }

    /// First-level statistics.
    pub fn l1_stats(&self) -> CacheStats {
        match &self.l1 {
            L1::Probe(p) => p.stats,
            L1::Reference(c) => c.stats(),
        }
    }

    /// Second-level statistics, if a second level exists.
    pub fn l2_stats(&self) -> Option<CacheStats> {
        self.l2.as_ref().map(|c| c.stats())
    }

    /// Resets statistics on both levels (warmup boundary, §5).
    pub fn reset_stats(&mut self) {
        match &mut self.l1 {
            L1::Probe(p) => p.stats = CacheStats::default(),
            L1::Reference(c) => c.reset_stats(),
        }
        if let Some(l2) = &mut self.l2 {
            l2.reset_stats();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::PrimOp;

    fn key(op: u16, r: u16) -> ItlbKey {
        ItlbKey::binary(Opcode(op), ClassId(r), ClassId::SMALL_INT)
    }

    fn add() -> MethodRef {
        MethodRef::Primitive(PrimOp::Add)
    }

    fn both_storages() -> Vec<Itlb> {
        let cfg = ItlbConfig::paper_default().unwrap();
        vec![Itlb::new(cfg), Itlb::new(cfg.with_reference_storage())]
    }

    #[test]
    fn fill_then_hit() {
        for mut itlb in both_storages() {
            assert_eq!(itlb.lookup(key(1, 1)), None);
            assert_eq!(itlb.last_hit(), ItlbHit::Miss);
            itlb.fill(key(1, 1), add());
            assert_eq!(itlb.lookup(key(1, 1)), Some(add()));
            assert_eq!(itlb.last_hit(), ItlbHit::L1);
            assert_eq!(itlb.l1_stats().hits, 1);
        }
    }

    #[test]
    fn key_packing_is_injective() {
        let keys = [
            key(1, 1),
            key(1, 2),
            key(2, 1),
            ItlbKey::unary(Opcode(1), ClassId(1)),
            ItlbKey::unary(Opcode(0x3FF), ClassId(0xFFFF)),
        ];
        for a in keys {
            assert_eq!(ItlbKey::unpack(a.pack()), a);
            for b in keys {
                assert_eq!(a.pack() == b.pack(), a == b);
            }
        }
    }

    #[test]
    fn distinct_class_signatures_are_distinct_entries() {
        for mut itlb in both_storages() {
            itlb.fill(key(1, 1), add());
            assert_eq!(itlb.lookup(key(1, 2)), None, "different receiver class");
            assert_eq!(
                itlb.lookup(ItlbKey::unary(Opcode(1), ClassId(1))),
                None,
                "different arity signature"
            );
        }
    }

    #[test]
    fn l2_promotes_on_hit() {
        let cfg = ItlbConfig {
            l1: CacheConfig::new(2, 2).unwrap(),
            l2: Some(CacheConfig::new(64, 2).unwrap()),
            reference_storage: false,
        };
        let mut itlb = Itlb::new(cfg);
        // Fill three keys: one must be evicted from the tiny L1 into L2.
        for i in 0..3 {
            itlb.fill(key(i, 1), add());
        }
        let mut l2_hits = 0;
        for i in 0..3 {
            match itlb.lookup(key(i, 1)) {
                Some(_) => {
                    if itlb.last_hit() == ItlbHit::L2 {
                        l2_hits += 1;
                    }
                }
                None => panic!("entry {i} lost from both levels"),
            }
        }
        assert!(l2_hits >= 1, "expected at least one L2 promotion");
    }

    #[test]
    fn flush_clears_everything() {
        for mut itlb in both_storages() {
            itlb.fill(key(1, 1), add());
            itlb.flush();
            assert_eq!(itlb.lookup(key(1, 1)), None);
            assert_eq!(itlb.l1_len(), 0);
        }
    }
}
