//! Per-class message dictionaries: open-addressing hash tables with probe
//! counting.
//!
//! The paper's cost argument rests on this structure: "during execution,
//! every single procedure call is made to an abstract procedure … The method
//! to be executed is found by associating the message name in a hash table
//! for the data type — or class — of a selected operand. This association
//! mechanism is quite costly in comparison to the typical overhead for
//! procedure calling in conventional languages." (§1.1)
//!
//! We implement a real open-addressing table (linear probing, power-of-two
//! capacity, ≤ 75% load) rather than delegating to `std::collections`, so
//! experiments can charge cycles per probe.

use com_isa::Opcode;

use crate::MethodRef;

/// A class's message dictionary: selector (opcode) → method.
#[derive(Debug, Clone)]
pub struct MessageDictionary {
    slots: Vec<Option<(Opcode, MethodRef)>>,
    len: usize,
}

impl MessageDictionary {
    /// Creates an empty dictionary (capacity 8).
    pub fn new() -> Self {
        MessageDictionary {
            slots: vec![None; 8],
            len: 0,
        }
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    fn slot_of(&self, sel: Opcode) -> usize {
        // Knuth multiplicative hash on the selector number.
        (sel.0 as usize).wrapping_mul(0x9E37_79B1) & self.mask()
    }

    /// Installs `method` under `sel`, replacing any previous binding.
    pub fn insert(&mut self, sel: Opcode, method: MethodRef) {
        if (self.len + 1) * 4 > self.slots.len() * 3 {
            self.grow();
        }
        let mut i = self.slot_of(sel);
        loop {
            match &self.slots[i] {
                Some((s, _)) if *s == sel => {
                    self.slots[i] = Some((sel, method));
                    return;
                }
                Some(_) => i = (i + 1) & self.mask(),
                None => {
                    self.slots[i] = Some((sel, method));
                    self.len += 1;
                    return;
                }
            }
        }
    }

    fn grow(&mut self) {
        let doubled = self.slots.len() * 2;
        let old = std::mem::replace(&mut self.slots, vec![None; doubled]);
        self.len = 0;
        for entry in old.into_iter().flatten() {
            self.insert(entry.0, entry.1);
        }
    }

    /// Looks up `sel`, returning the method (if bound) and the number of
    /// hash probes the search took — the unit the lookup cost model charges.
    pub fn lookup(&self, sel: Opcode) -> (Option<MethodRef>, u32) {
        let mut i = self.slot_of(sel);
        let mut probes = 1;
        loop {
            match &self.slots[i] {
                Some((s, m)) if *s == sel => return (Some(*m), probes),
                Some(_) => {
                    i = (i + 1) & self.mask();
                    probes += 1;
                }
                None => return (None, probes),
            }
        }
    }

    /// Number of bound selectors.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no selectors are bound.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(selector, method)` bindings in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, &MethodRef)> {
        self.slots
            .iter()
            .filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }
}

impl Default for MessageDictionary {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::PrimOp;

    fn prim(p: PrimOp) -> MethodRef {
        MethodRef::Primitive(p)
    }

    #[test]
    fn insert_lookup() {
        let mut d = MessageDictionary::new();
        d.insert(Opcode::ADD, prim(PrimOp::Add));
        d.insert(Opcode::SUB, prim(PrimOp::Sub));
        let (m, probes) = d.lookup(Opcode::ADD);
        assert_eq!(m, Some(prim(PrimOp::Add)));
        assert!(probes >= 1);
        assert_eq!(d.lookup(Opcode::MUL).0, None);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn replace_binding() {
        let mut d = MessageDictionary::new();
        d.insert(Opcode::ADD, prim(PrimOp::Add));
        d.insert(Opcode::ADD, prim(PrimOp::Sub));
        assert_eq!(d.lookup(Opcode::ADD).0, Some(prim(PrimOp::Sub)));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn grows_beyond_initial_capacity() {
        let mut d = MessageDictionary::new();
        for i in 0..100 {
            d.insert(Opcode(i), prim(PrimOp::Move));
        }
        assert_eq!(d.len(), 100);
        for i in 0..100 {
            assert!(d.lookup(Opcode(i)).0.is_some(), "lost selector {i}");
        }
        assert_eq!(d.lookup(Opcode(500)).0, None);
    }

    #[test]
    fn probes_grow_under_load() {
        let mut d = MessageDictionary::new();
        for i in 0..96 {
            d.insert(Opcode(i), prim(PrimOp::Move));
        }
        let total: u32 = (0..96).map(|i| d.lookup(Opcode(i)).1).sum();
        // Mean probes must stay sane (< 3) at 75% max load, but some entries
        // will need more than one probe.
        assert!(total >= 96);
        assert!((total as f64 / 96.0) < 3.0);
    }

    #[test]
    fn iter_yields_all_bindings() {
        let mut d = MessageDictionary::new();
        d.insert(Opcode(1), prim(PrimOp::Add));
        d.insert(Opcode(2), prim(PrimOp::Sub));
        let mut sels: Vec<u16> = d.iter().map(|(s, _)| s.0).collect();
        sels.sort_unstable();
        assert_eq!(sels, vec![1, 2]);
    }
}
