//! Full method lookup: the costly association the ITLB exists to avoid.
//!
//! Also the home of **software trap dispatch** support: the well-known
//! handler selectors ([`TrapSelector`]) and the chain walk that finds a
//! per-class handler method ([`lookup_trap_handler`]) when the machine
//! wants to handle a trap in software instead of killing the send.

use com_isa::Opcode;
use com_mem::ClassId;

use crate::{ClassTable, DefinedMethod, MethodRef};

/// The well-known selectors a class installs to handle machine traps in
/// software. Installing one is ordinary method installation (the handler
/// *is* a method, inherited along the superclass chain like any other);
/// this enum only fixes the names the machine looks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapSelector {
    /// Handles a failed method lookup (the Smalltalk
    /// `doesNotUnderstand:` condition): the handler receives the reified
    /// failed send and its answer replaces the failed send's result.
    DoesNotUnderstand,
    /// Handles a function-unit operand trap (`BadOperands`, e.g. divide
    /// by zero): the handler receives the reified faulting operation and
    /// its answer replaces the operation's result.
    BadOperands,
}

impl TrapSelector {
    /// The selector name a program interns to install this handler.
    pub const fn name(self) -> &'static str {
        match self {
            TrapSelector::DoesNotUnderstand => "doesNotUnderstand:",
            TrapSelector::BadOperands => "badOperands:",
        }
    }

    /// Every handler kind, for loaders that bind all of them at once.
    pub const ALL: [TrapSelector; 2] = [TrapSelector::DoesNotUnderstand, TrapSelector::BadOperands];
}

impl core::fmt::Display for TrapSelector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// Finds the trap handler a receiver of class `class` would dispatch to
/// for the handler selector `handler` (an interned [`TrapSelector`]
/// name): the ordinary superclass-chain walk, restricted to **defined**
/// methods — a primitive cannot accept a reified trap message, so a
/// primitive installation is reported as "no handler".
///
/// Returns the handler (if any) with the full [`LookupOutcome`] so the
/// caller can charge the walk's cycles like any other full lookup.
pub fn lookup_trap_handler(
    classes: &ClassTable,
    class: ClassId,
    handler: Opcode,
) -> (Option<DefinedMethod>, LookupOutcome) {
    let out = lookup_method(classes, class, handler);
    let method = match out.method {
        Some(MethodRef::Defined(d)) => Some(d),
        _ => None,
    };
    (method, out)
}

/// Cost model for one full method lookup, in processor cycles.
///
/// The paper does not commit to absolute lookup cycle counts; these defaults
/// (4 cycles per class level traversed + 8 per hash probe) land full lookup
/// in the tens of cycles, consistent with the software method caches it
/// cites (Berkeley, HP). Both knobs are swept in ablation A1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupCost {
    /// Cycles charged per class visited (dictionary setup, superclass load).
    pub per_class: u64,
    /// Cycles charged per hash probe within a dictionary.
    pub per_probe: u64,
}

impl Default for LookupCost {
    fn default() -> Self {
        LookupCost {
            per_class: 4,
            per_probe: 8,
        }
    }
}

/// The outcome of a full method lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The resolved method, or `None` for a does-not-understand condition.
    pub method: Option<MethodRef>,
    /// Classes visited walking the superclass chain.
    pub classes_visited: u32,
    /// Total hash probes across all dictionaries consulted.
    pub probes: u32,
    /// The walk revisited a class: the table's superclass chain contains a
    /// cycle (a corrupted table). `method` is `None`, but the condition is
    /// distinct from does-not-understand — callers should trap it as table
    /// corruption, not as a missing method.
    pub cycle: bool,
}

impl LookupOutcome {
    /// Cycles this lookup costs under `cost`.
    pub fn cost_cycles(&self, cost: LookupCost) -> u64 {
        self.classes_visited as u64 * cost.per_class + self.probes as u64 * cost.per_probe
    }
}

/// Resolves `selector` for a receiver of class `class` by "the standard
/// technique of method lookup (a step which always occurs in the execution
/// of Smalltalk)" (§2.1): probe the receiver class's dictionary, then walk
/// the superclass chain.
///
/// Returns the method (if any) together with the work done, so callers can
/// charge cycles and the ITLB experiments can report how much work the
/// buffer saves.
pub fn lookup_method(classes: &ClassTable, class: ClassId, selector: Opcode) -> LookupOutcome {
    let mut outcome = LookupOutcome {
        method: None,
        classes_visited: 0,
        probes: 0,
        cycle: false,
    };
    // Classes already visited: a repeat means the superclass chain of a
    // corrupted table loops, which must be reported as corruption rather
    // than mistaken for does-not-understand. Chains are short, so a linear
    // scan beats a hash set; the walk terminates because every iteration
    // either revisits (cycle) or grows the visited list, which is bounded
    // by the table size.
    let mut visited: Vec<ClassId> = Vec::with_capacity(8);
    let mut cur = Some(class);
    while let Some(c) = cur {
        let Some(info) = classes.get(c) else { break };
        if visited.contains(&c) {
            outcome.cycle = true;
            break;
        }
        visited.push(c);
        outcome.classes_visited += 1;
        let (m, probes) = info.dict.lookup(selector);
        outcome.probes += probes;
        if m.is_some() {
            outcome.method = m;
            return outcome;
        }
        cur = info.superclass;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::install_standard_primitives;
    use com_isa::PrimOp;

    #[test]
    fn finds_in_own_dictionary() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let out = lookup_method(&t, ClassId::SMALL_INT, Opcode::ADD);
        assert_eq!(out.method, Some(MethodRef::Primitive(PrimOp::Add)));
        assert_eq!(out.classes_visited, 1);
    }

    #[test]
    fn inherits_through_superclass_chain() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        let b = t.define("B", Some(a), 0).unwrap();
        // `==` lives on Object: B -> A -> Object.
        let out = lookup_method(&t, b, Opcode::SAME);
        assert_eq!(out.method, Some(MethodRef::Primitive(PrimOp::Same)));
        assert_eq!(out.classes_visited, 3);
        assert!(out.probes >= 3);
    }

    #[test]
    fn does_not_understand() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let out = lookup_method(&t, ClassId::ATOM, Opcode::MUL);
        assert_eq!(out.method, None, "atoms cannot multiply");
        assert_eq!(out.classes_visited, 2, "Atom then Object");
    }

    #[test]
    fn override_shadows_superclass() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        t.install(a, Opcode::SAME, MethodRef::Primitive(PrimOp::EqVal));
        let out = lookup_method(&t, a, Opcode::SAME);
        assert_eq!(out.method, Some(MethodRef::Primitive(PrimOp::EqVal)));
        assert_eq!(out.classes_visited, 1);
    }

    #[test]
    fn superclass_cycle_is_reported_as_corruption() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        let b = t.define("B", Some(a), 0).unwrap();
        // Corrupt the table: A's superclass chain loops back through B.
        t.get_mut(a).unwrap().superclass = Some(b);
        let out = lookup_method(&t, b, Opcode::MUL);
        assert!(out.cycle, "loop must be flagged as corruption");
        assert_eq!(out.method, None);
        // Each class is visited exactly once before the repeat is caught.
        assert_eq!(out.classes_visited, 2);
        // A healthy miss on the same selector stays a plain DNU.
        let healthy = lookup_method(&t, ClassId::ATOM, Opcode::MUL);
        assert!(!healthy.cycle);
    }

    #[test]
    fn self_cycle_is_reported() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        t.get_mut(a).unwrap().superclass = Some(a);
        let out = lookup_method(&t, a, Opcode::MUL);
        assert!(out.cycle);
        assert_eq!(out.classes_visited, 1);
    }

    #[test]
    fn trap_handler_lookup_walks_the_chain_and_requires_defined() {
        use com_fpa::{Fpa, FpaFormat};
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let dnu = Opcode(900); // an interned "doesNotUnderstand:" stand-in
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        let b = t.define("B", Some(a), 0).unwrap();
        // No handler anywhere: nothing found, walk charged.
        let (m, out) = lookup_trap_handler(&t, b, dnu);
        assert!(m.is_none());
        assert_eq!(out.classes_visited, 3, "B -> A -> Object");
        // Installed on the superclass: inherited by B.
        let code = Fpa::from_raw(0x40, FpaFormat::COM).unwrap();
        t.install(a, dnu, MethodRef::Defined(DefinedMethod::new(code, 2)));
        let (m, out) = lookup_trap_handler(&t, b, dnu);
        assert_eq!(m.unwrap().code, code);
        assert_eq!(out.classes_visited, 2, "B -> A");
        // A primitive installation is not a usable handler.
        t.install(b, dnu, MethodRef::Primitive(PrimOp::Move));
        let (m, _) = lookup_trap_handler(&t, b, dnu);
        assert!(m.is_none(), "primitive handler must be ignored");
        // Selector names are fixed.
        assert_eq!(TrapSelector::DoesNotUnderstand.name(), "doesNotUnderstand:");
        assert_eq!(TrapSelector::BadOperands.to_string(), "badOperands:");
    }

    #[test]
    fn cost_model_scales() {
        let out = LookupOutcome {
            method: None,
            classes_visited: 3,
            probes: 5,
            cycle: false,
        };
        let cost = out.cost_cycles(LookupCost::default());
        assert_eq!(cost, 3 * 4 + 5 * 8);
        let custom = out.cost_cycles(LookupCost {
            per_class: 1,
            per_probe: 1,
        });
        assert_eq!(custom, 8);
    }
}
