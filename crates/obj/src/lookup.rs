//! Full method lookup: the costly association the ITLB exists to avoid.

use com_isa::Opcode;
use com_mem::ClassId;

use crate::{ClassTable, MethodRef};

/// Cost model for one full method lookup, in processor cycles.
///
/// The paper does not commit to absolute lookup cycle counts; these defaults
/// (4 cycles per class level traversed + 8 per hash probe) land full lookup
/// in the tens of cycles, consistent with the software method caches it
/// cites (Berkeley, HP). Both knobs are swept in ablation A1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupCost {
    /// Cycles charged per class visited (dictionary setup, superclass load).
    pub per_class: u64,
    /// Cycles charged per hash probe within a dictionary.
    pub per_probe: u64,
}

impl Default for LookupCost {
    fn default() -> Self {
        LookupCost {
            per_class: 4,
            per_probe: 8,
        }
    }
}

/// The outcome of a full method lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LookupOutcome {
    /// The resolved method, or `None` for a does-not-understand condition.
    pub method: Option<MethodRef>,
    /// Classes visited walking the superclass chain.
    pub classes_visited: u32,
    /// Total hash probes across all dictionaries consulted.
    pub probes: u32,
    /// The walk revisited a class: the table's superclass chain contains a
    /// cycle (a corrupted table). `method` is `None`, but the condition is
    /// distinct from does-not-understand — callers should trap it as table
    /// corruption, not as a missing method.
    pub cycle: bool,
}

impl LookupOutcome {
    /// Cycles this lookup costs under `cost`.
    pub fn cost_cycles(&self, cost: LookupCost) -> u64 {
        self.classes_visited as u64 * cost.per_class + self.probes as u64 * cost.per_probe
    }
}

/// Resolves `selector` for a receiver of class `class` by "the standard
/// technique of method lookup (a step which always occurs in the execution
/// of Smalltalk)" (§2.1): probe the receiver class's dictionary, then walk
/// the superclass chain.
///
/// Returns the method (if any) together with the work done, so callers can
/// charge cycles and the ITLB experiments can report how much work the
/// buffer saves.
pub fn lookup_method(classes: &ClassTable, class: ClassId, selector: Opcode) -> LookupOutcome {
    let mut outcome = LookupOutcome {
        method: None,
        classes_visited: 0,
        probes: 0,
        cycle: false,
    };
    // Classes already visited: a repeat means the superclass chain of a
    // corrupted table loops, which must be reported as corruption rather
    // than mistaken for does-not-understand. Chains are short, so a linear
    // scan beats a hash set; the walk terminates because every iteration
    // either revisits (cycle) or grows the visited list, which is bounded
    // by the table size.
    let mut visited: Vec<ClassId> = Vec::with_capacity(8);
    let mut cur = Some(class);
    while let Some(c) = cur {
        let Some(info) = classes.get(c) else { break };
        if visited.contains(&c) {
            outcome.cycle = true;
            break;
        }
        visited.push(c);
        outcome.classes_visited += 1;
        let (m, probes) = info.dict.lookup(selector);
        outcome.probes += probes;
        if m.is_some() {
            outcome.method = m;
            return outcome;
        }
        cur = info.superclass;
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::install_standard_primitives;
    use com_isa::PrimOp;

    #[test]
    fn finds_in_own_dictionary() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let out = lookup_method(&t, ClassId::SMALL_INT, Opcode::ADD);
        assert_eq!(out.method, Some(MethodRef::Primitive(PrimOp::Add)));
        assert_eq!(out.classes_visited, 1);
    }

    #[test]
    fn inherits_through_superclass_chain() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        let b = t.define("B", Some(a), 0).unwrap();
        // `==` lives on Object: B -> A -> Object.
        let out = lookup_method(&t, b, Opcode::SAME);
        assert_eq!(out.method, Some(MethodRef::Primitive(PrimOp::Same)));
        assert_eq!(out.classes_visited, 3);
        assert!(out.probes >= 3);
    }

    #[test]
    fn does_not_understand() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let out = lookup_method(&t, ClassId::ATOM, Opcode::MUL);
        assert_eq!(out.method, None, "atoms cannot multiply");
        assert_eq!(out.classes_visited, 2, "Atom then Object");
    }

    #[test]
    fn override_shadows_superclass() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        t.install(a, Opcode::SAME, MethodRef::Primitive(PrimOp::EqVal));
        let out = lookup_method(&t, a, Opcode::SAME);
        assert_eq!(out.method, Some(MethodRef::Primitive(PrimOp::EqVal)));
        assert_eq!(out.classes_visited, 1);
    }

    #[test]
    fn superclass_cycle_is_reported_as_corruption() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        let b = t.define("B", Some(a), 0).unwrap();
        // Corrupt the table: A's superclass chain loops back through B.
        t.get_mut(a).unwrap().superclass = Some(b);
        let out = lookup_method(&t, b, Opcode::MUL);
        assert!(out.cycle, "loop must be flagged as corruption");
        assert_eq!(out.method, None);
        // Each class is visited exactly once before the repeat is caught.
        assert_eq!(out.classes_visited, 2);
        // A healthy miss on the same selector stays a plain DNU.
        let healthy = lookup_method(&t, ClassId::ATOM, Opcode::MUL);
        assert!(!healthy.cycle);
    }

    #[test]
    fn self_cycle_is_reported() {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let a = t.define("A", Some(ClassTable::OBJECT), 0).unwrap();
        t.get_mut(a).unwrap().superclass = Some(a);
        let out = lookup_method(&t, a, Opcode::MUL);
        assert!(out.cycle);
        assert_eq!(out.classes_visited, 1);
    }

    #[test]
    fn cost_model_scales() {
        let out = LookupOutcome {
            method: None,
            classes_visited: 3,
            probes: 5,
            cycle: false,
        };
        let cost = out.cost_cycles(LookupCost::default());
        assert_eq!(cost, 3 * 4 + 5 * 8);
        let custom = out.cost_cycles(LookupCost {
            per_class: 1,
            per_probe: 1,
        });
        assert_eq!(custom, 8);
    }
}
