//! Property-based tests for the object system: dictionary model
//! equivalence, lookup laws, ITLB transparency.

use std::collections::HashMap;

use com_isa::{Opcode, PrimOp};
use com_mem::ClassId;
use com_obj::{
    install_standard_primitives, lookup_method, ClassTable, Itlb, ItlbConfig, ItlbKey,
    MessageDictionary, MethodRef,
};
use proptest::prelude::*;

fn prim(i: usize) -> MethodRef {
    // A small rotating set of distinguishable method payloads.
    const PRIMS: [PrimOp; 5] = [PrimOp::Add, PrimOp::Sub, PrimOp::Mul, PrimOp::Div, PrimOp::Move];
    MethodRef::Primitive(PRIMS[i % PRIMS.len()])
}

proptest! {
    /// The open-addressing message dictionary behaves exactly like a
    /// HashMap under arbitrary insert/lookup interleavings (model-based
    /// test), and probe counts stay bounded by the occupancy.
    #[test]
    fn dictionary_matches_model(script in prop::collection::vec((0u16..200, 0usize..5, any::<bool>()), 1..300)) {
        let mut dict = MessageDictionary::new();
        let mut model: HashMap<u16, MethodRef> = HashMap::new();
        for (sel, payload, is_insert) in script {
            if is_insert {
                dict.insert(Opcode(sel), prim(payload));
                model.insert(sel, prim(payload));
            } else {
                let (got, probes) = dict.lookup(Opcode(sel));
                prop_assert_eq!(got, model.get(&sel).copied());
                prop_assert!(probes as usize <= dict.len() + 1);
            }
        }
        prop_assert_eq!(dict.len(), model.len());
        // Every model binding is reachable through iter().
        let mut seen: Vec<u16> = dict.iter().map(|(s, _)| s.0).collect();
        seen.sort_unstable();
        let mut expect: Vec<u16> = model.keys().copied().collect();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// Lookup through a class chain equals lookup in the first class of the
    /// chain that binds the selector (shadowing law), regardless of chain
    /// depth.
    #[test]
    fn lookup_shadowing_law(
        depth in 1usize..8,
        bind_at in prop::collection::vec(any::<bool>(), 8),
        sel in 64u16..100,
    ) {
        let mut t = ClassTable::new();
        let mut chain = vec![ClassTable::OBJECT];
        for i in 0..depth {
            let parent = *chain.last().expect("nonempty");
            chain.push(t.define(&format!("C{i}"), Some(parent), 0).expect("fresh"));
        }
        // Bind the selector at the marked classes with distinct payloads.
        for (i, class) in chain.iter().enumerate() {
            if bind_at[i % bind_at.len()] {
                t.install(*class, Opcode(sel), prim(i));
            }
        }
        // The binding nearest the leaf (highest index) shadows the rest.
        let leaf = *chain.last().expect("nonempty");
        let mut expected = None;
        for i in (0..chain.len()).rev() {
            if bind_at[i % bind_at.len()] {
                expected = Some(prim(i));
                break;
            }
        }
        let got = lookup_method(&t, leaf, Opcode(sel));
        prop_assert_eq!(got.method, expected);
        prop_assert!(got.classes_visited as usize <= chain.len());
    }

    /// The ITLB is semantically transparent: for any access sequence, a
    /// machine that consults the ITLB (fill-on-miss) always produces the
    /// same resolution as one that does a full lookup every time.
    #[test]
    fn itlb_transparency(
        accesses in prop::collection::vec((0u16..40, 0u16..6), 1..400),
        entries_pow in 1u32..7,
    ) {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        // A few user classes with scattered methods.
        let mut classes = vec![
            ClassId::SMALL_INT,
            ClassId::FLOAT,
            ClassId::ATOM,
            ClassTable::OBJECT,
        ];
        for i in 0..2 {
            let c = t.define(&format!("U{i}"), Some(ClassTable::OBJECT), 0).expect("fresh");
            t.install(c, Opcode(70 + i), prim(i as usize));
            classes.push(c);
        }
        let cfg = ItlbConfig {
            l1: com_cache::CacheConfig::new(1 << entries_pow, 2).expect("valid"),
            l2: None,
        };
        let mut itlb = Itlb::new(cfg);
        for (sel, class_i) in accesses {
            let class = classes[class_i as usize % classes.len()];
            let key = ItlbKey::unary(Opcode(sel % 80), class);
            let truth = lookup_method(&t, class, key.opcode).method;
            let via_itlb = match itlb.lookup(key) {
                Some(m) => Some(m),
                None => {
                    if let Some(m) = truth {
                        itlb.fill(key, m);
                    }
                    truth
                }
            };
            prop_assert_eq!(via_itlb, truth, "ITLB diverged from full lookup");
        }
    }
}
