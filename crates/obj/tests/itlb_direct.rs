//! Properties of the direct-mapped / set-associative ITLB probe array:
//! fill, evict, hit-rate, and equivalence with the legacy map-backed
//! reference storage.

use com_cache::CacheConfig;
use com_isa::{Opcode, PrimOp};
use com_mem::ClassId;
use com_obj::{Itlb, ItlbConfig, ItlbHit, ItlbKey, MethodRef};

fn key(op: u16, recv: u16, arg: u16) -> ItlbKey {
    ItlbKey::binary(Opcode(op), ClassId(recv), ClassId(arg))
}

fn method(i: u16) -> MethodRef {
    // Distinct payloads so value identity is observable.
    MethodRef::Primitive(if i.is_multiple_of(2) {
        PrimOp::Add
    } else {
        PrimOp::Sub
    })
}

fn cfg(entries: usize, ways: usize) -> ItlbConfig {
    ItlbConfig {
        l1: CacheConfig::new(entries, ways).unwrap(),
        l2: None,
        reference_storage: false,
    }
}

/// A deterministic stream of keys with a skewed (hot working set + tail)
/// distribution, like real dispatch traffic.
fn key_stream(n: usize) -> Vec<ItlbKey> {
    let mut x: u64 = 0x1985;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let k = if i % 4 != 0 {
            (x >> 33) % 16 // hot set: 16 signatures
        } else {
            (x >> 33) % 600 // tail: 600 signatures
        } as u16;
        out.push(key(k % 64, k / 64 + 1, 7));
    }
    out
}

#[test]
fn direct_mapped_single_line_conflicts() {
    // entries=1, ways=1: every distinct key conflicts with every other.
    let mut itlb = Itlb::new(cfg(1, 1));
    itlb.fill(key(1, 1, 1), method(0));
    assert_eq!(itlb.lookup(key(1, 1, 1)), Some(method(0)));
    itlb.fill(key(2, 2, 2), method(1));
    assert_eq!(itlb.lookup(key(2, 2, 2)), Some(method(1)));
    assert_eq!(itlb.lookup(key(1, 1, 1)), None, "conflict must evict");
    assert_eq!(itlb.l1_len(), 1);
    assert_eq!(itlb.l1_stats().evictions, 1);
}

#[test]
fn lru_within_a_set() {
    // Fully associative two-line cache: eviction order is pure LRU.
    let mut itlb = Itlb::new(cfg(2, 2));
    itlb.fill(key(1, 1, 1), method(1));
    itlb.fill(key(2, 2, 2), method(2));
    assert!(itlb.lookup(key(1, 1, 1)).is_some()); // 1 now most recent
    itlb.fill(key(3, 3, 3), method(3)); // evicts 2
    assert!(itlb.lookup(key(1, 1, 1)).is_some());
    assert!(itlb.lookup(key(3, 3, 3)).is_some());
    assert_eq!(itlb.lookup(key(2, 2, 2)), None, "LRU victim was 2");
}

#[test]
fn refill_replaces_in_place_without_eviction() {
    let mut itlb = Itlb::new(cfg(8, 2));
    itlb.fill(key(1, 1, 1), method(0));
    itlb.fill(key(1, 1, 1), method(1));
    assert_eq!(itlb.lookup(key(1, 1, 1)), Some(method(1)));
    assert_eq!(itlb.l1_len(), 1);
    assert_eq!(itlb.l1_stats().evictions, 0);
    assert_eq!(itlb.l1_stats().fills, 2);
}

#[test]
fn probe_array_matches_reference_when_fully_associative() {
    // With a single set, set-index hashing is irrelevant and both storages
    // implement plain LRU — they must agree access for access.
    let mut probe = Itlb::new(cfg(16, 16));
    let mut reference = Itlb::new(cfg(16, 16).with_reference_storage());
    for k in key_stream(20_000) {
        let a = probe.lookup(k);
        let b = reference.lookup(k);
        assert_eq!(a.is_some(), b.is_some(), "hit/miss diverged at {k}");
        if a.is_none() {
            let m = method(k.opcode.0);
            probe.fill(k, m);
            reference.fill(k, m);
        } else {
            assert_eq!(a, b, "values diverged at {k}");
        }
    }
    assert_eq!(probe.l1_stats(), reference.l1_stats());
    assert_eq!(probe.l1_len(), reference.l1_len());
}

#[test]
fn paper_geometry_absorbs_a_working_set() {
    // 512×2-way holds a dispatch working set far below capacity: after the
    // compulsory misses, everything hits ("a 99% hit ratio", §5).
    let mut itlb = Itlb::new(ItlbConfig::paper_default().unwrap());
    let keys: Vec<ItlbKey> = (0..100).map(|i| key(i % 64, i / 64 + 1, 3)).collect();
    for k in &keys {
        if itlb.lookup(*k).is_none() {
            itlb.fill(*k, method(k.opcode.0));
        }
    }
    itlb.reset_stats();
    for _ in 0..50 {
        for k in &keys {
            assert!(itlb.lookup(*k).is_some());
        }
    }
    let s = itlb.l1_stats();
    assert_eq!(s.misses, 0, "warm working set must not miss");
    assert_eq!(s.hits, 50 * keys.len() as u64);
}

#[test]
fn capacity_pressure_evicts_and_recovers() {
    // 600 distinct signatures through a 512-entry cache: evictions happen,
    // the cache stays bounded, and the skewed stream still mostly hits.
    let mut itlb = Itlb::new(ItlbConfig::paper_default().unwrap());
    let mut misses = 0u64;
    for k in key_stream(30_000) {
        if itlb.lookup(k).is_none() {
            misses += 1;
            itlb.fill(k, method(k.opcode.0));
        }
    }
    let s = itlb.l1_stats();
    assert!(s.evictions > 0, "over-capacity stream must evict");
    assert_eq!(s.misses, misses);
    assert!(itlb.l1_len() <= 512);
    let ratio = s.hits as f64 / (s.hits + s.misses) as f64;
    assert!(
        ratio > 0.80,
        "hit ratio {ratio:.3} too low for a skewed stream"
    );
}

#[test]
fn flush_empties_and_last_hit_tracks() {
    let mut itlb = Itlb::new(cfg(64, 2));
    let k = key(9, 9, 9);
    assert_eq!(itlb.lookup(k), None);
    assert_eq!(itlb.last_hit(), ItlbHit::Miss);
    itlb.fill(k, method(1));
    assert!(itlb.lookup(k).is_some());
    assert_eq!(itlb.last_hit(), ItlbHit::L1);
    itlb.flush();
    assert_eq!(itlb.l1_len(), 0);
    assert_eq!(itlb.lookup(k), None);
}

#[test]
fn two_level_demotion_and_promotion_with_probe_l1() {
    let config = ItlbConfig {
        l1: CacheConfig::new(2, 1).unwrap(),
        l2: Some(CacheConfig::new(128, 2).unwrap()),
        reference_storage: false,
    };
    let mut itlb = Itlb::new(config);
    // Far more keys than L1 holds: L1 victims demote to L2.
    let keys: Vec<ItlbKey> = (0..20).map(|i| key(i, i + 1, 2)).collect();
    for k in &keys {
        itlb.fill(*k, method(k.opcode.0));
    }
    let mut l2_hits = 0;
    for k in &keys {
        if itlb.lookup(*k).is_some() && itlb.last_hit() == ItlbHit::L2 {
            l2_hits += 1;
        }
    }
    assert!(l2_hits > 0, "L2 must serve L1 overflow");
}
