//! Property-based tests for floating point address invariants.

use com_fpa::{Fpa, FpaFormat, NameAllocator, SegmentName};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_format() -> impl Strategy<Value = FpaFormat> {
    (4u32..=40).prop_map(|m| FpaFormat::new(m).expect("valid format"))
}

proptest! {
    /// Decomposing a raw address into (segment, offset) and re-encoding it
    /// reproduces the raw bits exactly.
    #[test]
    fn raw_roundtrip(fmt in arb_format(), raw in any::<u64>()) {
        let raw = raw & fmt.max_raw();
        let a = Fpa::from_raw(raw, fmt).unwrap();
        let back = Fpa::from_segment(a.segment(), a.offset(), fmt).unwrap();
        prop_assert_eq!(back.raw(), raw);
    }

    /// (exponent, mantissa) round-trips through raw encoding.
    #[test]
    fn parts_roundtrip(fmt in arb_format(), e in any::<u8>(), m in any::<u64>()) {
        let e = e % (fmt.max_exponent() + 1);
        let m = m & fmt.mantissa_mask();
        let a = Fpa::from_parts(e, m, fmt).unwrap();
        prop_assert_eq!(a.exponent(), e);
        prop_assert_eq!(a.mantissa(), m);
    }

    /// The offset is always strictly below the segment capacity, and the
    /// mantissa always equals index * capacity + offset (the "shifted binary
    /// point" identity from §2.2).
    #[test]
    fn shifted_binary_point_identity(fmt in arb_format(), raw in any::<u64>()) {
        let raw = raw & fmt.max_raw();
        let a = Fpa::from_raw(raw, fmt).unwrap();
        prop_assert!(a.offset() < a.capacity() || a.capacity() == u64::MAX);
        if (a.exponent() as u32) < 63 {
            let reconstructed = a
                .segment()
                .index()
                .checked_mul(a.capacity())
                .and_then(|x| x.checked_add(a.offset()));
            prop_assert_eq!(reconstructed, Some(a.mantissa()));
        }
    }

    /// `with_offset` never changes the segment and faithfully stores the
    /// requested offset; out-of-capacity offsets always error.
    #[test]
    fn with_offset_laws(fmt in arb_format(), raw in any::<u64>(), off in any::<u64>()) {
        let raw = raw & fmt.max_raw();
        let a = Fpa::from_raw(raw, fmt).unwrap();
        if off < a.capacity() {
            let b = a.with_offset(off).unwrap();
            prop_assert_eq!(b.segment(), a.segment());
            prop_assert_eq!(b.offset(), off);
        } else {
            prop_assert!(a.with_offset(off).is_err());
        }
    }

    /// Distinct live allocations never share a segment name (capability
    /// uniqueness), and recycling reuses names without creating duplicates
    /// among live ones.
    #[test]
    fn allocator_uniqueness(sizes in prop::collection::vec(1u64..5000, 1..120)) {
        let fmt = FpaFormat::COM;
        let mut alloc = NameAllocator::new(fmt);
        let mut live: HashSet<SegmentName> = HashSet::new();
        for (i, words) in sizes.iter().enumerate() {
            let a = alloc.alloc_for_size(*words).unwrap();
            prop_assert!(live.insert(a.segment()), "duplicate live name");
            // Free every third allocation to exercise recycling.
            if i % 3 == 0 {
                live.remove(&a.segment());
                alloc.free(a.segment());
            }
        }
    }

    /// Segment capacity is always sufficient for the requested object size
    /// and never more than twice the rounded size (tight exponent choice).
    #[test]
    fn tight_exponent(words in 1u64..=(1 << 31)) {
        let fmt = FpaFormat::COM;
        let e = fmt.exponent_for(words).unwrap();
        let cap = 1u64 << e;
        prop_assert!(cap >= words);
        prop_assert!(cap < words.saturating_mul(2) || cap == 1);
    }

    /// The paper's display number is exactly the raw address with the offset
    /// field stripped (`raw >> exponent`), as in the `0x8345 → 0x83` example.
    /// (It is *not* injective across exponent classes; the true key is the
    /// `(exponent, index)` pair.)
    #[test]
    fn display_number_is_raw_shifted(raw in any::<u64>()) {
        let fmt = FpaFormat::DEMO16;
        let raw = raw & fmt.max_raw();
        let a = Fpa::from_raw(raw, fmt).unwrap();
        let e = u32::min(a.exponent() as u32, fmt.mantissa_bits());
        prop_assert_eq!(a.segment().display_number(fmt), raw >> e);
    }
}
