//! A common interface over floating-point and fixed addressing, used by the
//! small-object-problem experiment (T4).

use crate::{FixedFormat, FpaError, FpaFormat};

/// Outcome of asking a naming scheme to name one object of a given size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NamingOutcome {
    /// The object received its own segment; `slack_words` counts the naming
    /// slack (segment capacity minus object size) — address-space, not
    /// storage, waste.
    Named {
        /// Capacity of the chosen segment minus the object's size.
        slack_words: u64,
    },
    /// The scheme ran out of segment names; under a fixed split this forces
    /// the "inappropriate grouping of small objects" the paper describes.
    OutOfNames,
    /// The object exceeds the largest expressible segment; under a fixed
    /// split this forces "complicated schemes to split large objects".
    TooLarge,
}

impl NamingOutcome {
    /// Whether the object was successfully given its own segment.
    pub fn is_named(self) -> bool {
        matches!(self, NamingOutcome::Named { .. })
    }
}

/// A virtual-address naming scheme: allocates one segment name per object
/// and reports capacity limits. Implemented by a stateful wrapper per scheme
/// so the T4 harness can drive them uniformly.
pub trait AddressScheme {
    /// Human-readable scheme name for report rows.
    fn scheme_name(&self) -> String;

    /// Total address width in bits.
    fn total_bits(&self) -> u32;

    /// Attempts to give one object of `words` words its own segment.
    fn name_object(&mut self, words: u64) -> NamingOutcome;

    /// Number of objects successfully named so far.
    fn named_count(&self) -> u64;

    /// Resets all allocation state.
    fn reset(&mut self);
}

/// Floating-point naming state for the T4 sweep.
#[derive(Debug, Clone)]
pub struct FpaScheme {
    format: FpaFormat,
    allocator: crate::NameAllocator,
    named: u64,
}

impl FpaScheme {
    /// Creates a scheme over `format`.
    pub fn new(format: FpaFormat) -> Self {
        FpaScheme {
            format,
            allocator: crate::NameAllocator::new(format),
            named: 0,
        }
    }
}

impl AddressScheme for FpaScheme {
    fn scheme_name(&self) -> String {
        self.format.to_string()
    }

    fn total_bits(&self) -> u32 {
        self.format.total_bits()
    }

    fn name_object(&mut self, words: u64) -> NamingOutcome {
        match self.allocator.alloc_for_size(words) {
            Ok(addr) => {
                self.named += 1;
                NamingOutcome::Named {
                    slack_words: addr.capacity() - words,
                }
            }
            Err(FpaError::ObjectTooLarge { .. }) => NamingOutcome::TooLarge,
            Err(_) => NamingOutcome::OutOfNames,
        }
    }

    fn named_count(&self) -> u64 {
        self.named
    }

    fn reset(&mut self) {
        self.allocator = crate::NameAllocator::new(self.format);
        self.named = 0;
    }
}

/// Fixed-split naming state for the T4 sweep.
#[derive(Debug, Clone)]
pub struct FixedScheme {
    format: FixedFormat,
    next_segment: u64,
    named: u64,
}

impl FixedScheme {
    /// Creates a scheme over `format`.
    pub fn new(format: FixedFormat) -> Self {
        FixedScheme {
            format,
            next_segment: 0,
            named: 0,
        }
    }
}

impl AddressScheme for FixedScheme {
    fn scheme_name(&self) -> String {
        self.format.to_string()
    }

    fn total_bits(&self) -> u32 {
        self.format.total_bits()
    }

    fn name_object(&mut self, words: u64) -> NamingOutcome {
        if words > self.format.max_segment_words() {
            return NamingOutcome::TooLarge;
        }
        if self.next_segment >= self.format.max_segments() {
            return NamingOutcome::OutOfNames;
        }
        self.next_segment += 1;
        self.named += 1;
        NamingOutcome::Named {
            slack_words: self.format.max_segment_words() - words,
        }
    }

    fn named_count(&self) -> u64 {
        self.named
    }

    fn reset(&mut self) {
        self.next_segment = 0;
        self.named = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fpa_names_huge_and_tiny() {
        let mut s = FpaScheme::new(FpaFormat::COM);
        assert!(s.name_object(1).is_named());
        assert!(s.name_object(1 << 31).is_named());
        assert_eq!(s.name_object(1 + (1 << 31)), NamingOutcome::TooLarge);
        assert_eq!(s.named_count(), 2);
    }

    #[test]
    fn fixed_fails_on_large_objects() {
        let mut s = FixedScheme::new(FixedFormat::MULTICS);
        // Exactly 2^18 words still fits; one more word cannot be named at all.
        assert!(s.name_object(1 << 18).is_named());
        assert_eq!(s.name_object((1 << 18) + 1), NamingOutcome::TooLarge);
        assert_eq!(s.name_object(1 << 20), NamingOutcome::TooLarge);
        assert!(s.name_object(100).is_named());
    }

    #[test]
    fn fixed_exhausts_small_object_names() {
        let f = FixedFormat::new(2, 8).unwrap(); // 4 segments only
        let mut s = FixedScheme::new(f);
        for _ in 0..4 {
            assert!(s.name_object(1).is_named());
        }
        assert_eq!(s.name_object(1), NamingOutcome::OutOfNames);
        s.reset();
        assert!(s.name_object(1).is_named());
    }

    #[test]
    fn fpa_slack_is_tight() {
        let mut s = FpaScheme::new(FpaFormat::COM);
        match s.name_object(33) {
            NamingOutcome::Named { slack_words } => assert_eq!(slack_words, 64 - 33),
            other => panic!("expected Named, got {other:?}"),
        }
        // Fixed split wastes the whole offset range on a 33-word object.
        let mut fx = FixedScheme::new(FixedFormat::MULTICS);
        match fx.name_object(33) {
            NamingOutcome::Named { slack_words } => assert_eq!(slack_words, (1 << 18) - 33),
            other => panic!("expected Named, got {other:?}"),
        }
    }
}
