//! Error type for address construction and manipulation.

/// Errors arising from floating point (and fixed) address manipulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FpaError {
    /// The requested format is degenerate (zero-width field) or too wide.
    BadFormat {
        /// Requested mantissa width.
        mantissa_bits: u32,
        /// Requested exponent width.
        exponent_bits: u32,
    },
    /// A raw value does not fit in the format's total width.
    RawOutOfRange {
        /// The offending raw value.
        raw: u64,
        /// Largest representable raw value.
        max: u64,
    },
    /// The exponent does not fit the exponent field.
    ExponentOutOfRange {
        /// The offending exponent.
        exponent: u8,
        /// Largest representable exponent.
        max: u8,
    },
    /// The mantissa does not fit the mantissa field.
    MantissaOverflow {
        /// The offending mantissa.
        mantissa: u64,
        /// Largest representable mantissa.
        max: u64,
    },
    /// An offset exceeds the capacity (`2^exponent`) of its segment.
    ///
    /// At translation time this condition raises the aliasing trap described
    /// in §2.2: the stale pointer's segment descriptor forwards to the grown
    /// object's new segment.
    OffsetOutOfBounds {
        /// The offending offset.
        offset: u64,
        /// Words addressable under the segment's exponent.
        capacity: u64,
    },
    /// A segment index exceeds the count available in its exponent class.
    SegmentIndexOutOfRange {
        /// The offending index.
        index: u64,
        /// Number of segments in the class.
        available: u64,
    },
    /// No exponent class can hold an object of this size.
    ObjectTooLarge {
        /// Requested size in words.
        words: u64,
        /// Largest supported segment size in words.
        max: u64,
    },
    /// All segment names in the requested exponent class are in use.
    ClassExhausted {
        /// The exhausted exponent class.
        exponent: u8,
    },
}

impl core::fmt::Display for FpaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            FpaError::BadFormat {
                mantissa_bits,
                exponent_bits,
            } => write!(
                f,
                "degenerate address format (mantissa {mantissa_bits} bits, exponent {exponent_bits} bits)"
            ),
            FpaError::RawOutOfRange { raw, max } => {
                write!(f, "raw address {raw:#x} exceeds format maximum {max:#x}")
            }
            FpaError::ExponentOutOfRange { exponent, max } => {
                write!(f, "exponent {exponent} exceeds format maximum {max}")
            }
            FpaError::MantissaOverflow { mantissa, max } => {
                write!(f, "mantissa {mantissa:#x} exceeds format maximum {max:#x}")
            }
            FpaError::OffsetOutOfBounds { offset, capacity } => {
                write!(f, "offset {offset} out of bounds for segment capacity {capacity}")
            }
            FpaError::SegmentIndexOutOfRange { index, available } => {
                write!(f, "segment index {index} exceeds class population {available}")
            }
            FpaError::ObjectTooLarge { words, max } => {
                write!(f, "object of {words} words exceeds largest segment ({max} words)")
            }
            FpaError::ClassExhausted { exponent } => {
                write!(f, "no free segment names remain in exponent class {exponent}")
            }
        }
    }
}

impl std::error::Error for FpaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let e = FpaError::OffsetOutOfBounds {
            offset: 300,
            capacity: 256,
        };
        let msg = e.to_string();
        assert!(msg.contains("300"));
        assert!(msg.contains("256"));
        assert!(msg.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_trait_object_compatible() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<FpaError>();
    }
}
