//! Conventional fixed-split segmented addressing (the baseline of §2.2).
//!
//! "Conventional segmentation schemes divide the memory address into two
//! fixed length fields, one of which is the segment descriptor number and
//! the other the segment offset." The MULTICS format — 18 segment bits and
//! 18 offset bits — is the paper's running example of both limits being too
//! restrictive.

use crate::FpaError;

/// A fixed segment/offset split of an address word.
///
/// ```
/// use com_fpa::FixedFormat;
/// let multics = FixedFormat::MULTICS;
/// assert_eq!(multics.max_segments(), 1 << 18);
/// assert_eq!(multics.max_segment_words(), 1 << 18);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FixedFormat {
    segment_bits: u32,
    offset_bits: u32,
}

impl FixedFormat {
    /// The MULTICS virtual address: 18-bit segment number, 18-bit offset.
    pub const MULTICS: FixedFormat = FixedFormat {
        segment_bits: 18,
        offset_bits: 18,
    };

    /// Creates a fixed split.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::BadFormat`] when a field is zero or the total
    /// exceeds 63 bits.
    pub fn new(segment_bits: u32, offset_bits: u32) -> Result<Self, FpaError> {
        if segment_bits == 0 || offset_bits == 0 || segment_bits + offset_bits > 63 {
            return Err(FpaError::BadFormat {
                mantissa_bits: offset_bits,
                exponent_bits: segment_bits,
            });
        }
        Ok(FixedFormat {
            segment_bits,
            offset_bits,
        })
    }

    /// Width of the segment-number field.
    pub fn segment_bits(self) -> u32 {
        self.segment_bits
    }

    /// Width of the offset field.
    pub fn offset_bits(self) -> u32 {
        self.offset_bits
    }

    /// Total address width.
    pub fn total_bits(self) -> u32 {
        self.segment_bits + self.offset_bits
    }

    /// Number of distinct segments.
    pub fn max_segments(self) -> u64 {
        1u64 << self.segment_bits
    }

    /// Maximum words per segment.
    pub fn max_segment_words(self) -> u64 {
        1u64 << self.offset_bits
    }
}

impl core::fmt::Display for FixedFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "fixed{}(s{}/o{})",
            self.total_bits(),
            self.segment_bits,
            self.offset_bits
        )
    }
}

/// The name of a segment under a fixed split: just its number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FixedSegmentName(pub u64);

impl core::fmt::Display for FixedSegmentName {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "seg#{:#x}", self.0)
    }
}

/// An address under a fixed segment/offset split.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FixedAddr {
    raw: u64,
    format: FixedFormat,
}

impl FixedAddr {
    /// Builds an address from a raw bit pattern.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::RawOutOfRange`] if `raw` exceeds the width.
    pub fn from_raw(raw: u64, format: FixedFormat) -> Result<Self, FpaError> {
        let max = (1u64 << format.total_bits()) - 1;
        if raw > max {
            return Err(FpaError::RawOutOfRange { raw, max });
        }
        Ok(FixedAddr { raw, format })
    }

    /// Builds the address of `offset` within `segment`.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::SegmentIndexOutOfRange`] or
    /// [`FpaError::OffsetOutOfBounds`] on field overflow.
    pub fn from_segment(
        segment: FixedSegmentName,
        offset: u64,
        format: FixedFormat,
    ) -> Result<Self, FpaError> {
        if segment.0 >= format.max_segments() {
            return Err(FpaError::SegmentIndexOutOfRange {
                index: segment.0,
                available: format.max_segments(),
            });
        }
        if offset >= format.max_segment_words() {
            return Err(FpaError::OffsetOutOfBounds {
                offset,
                capacity: format.max_segment_words(),
            });
        }
        Ok(FixedAddr {
            raw: (segment.0 << format.offset_bits) | offset,
            format,
        })
    }

    /// The raw bit pattern.
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// The segment number.
    pub fn segment(self) -> FixedSegmentName {
        FixedSegmentName(self.raw >> self.format.offset_bits)
    }

    /// The offset within the segment.
    pub fn offset(self) -> u64 {
        self.raw & (self.format.max_segment_words() - 1)
    }

    /// The format this address is encoded in.
    pub fn format(self) -> FixedFormat {
        self.format
    }
}

impl core::fmt::Display for FixedAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}+{:#x}", self.segment(), self.offset())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multics_limits_match_paper() {
        let f = FixedFormat::MULTICS;
        assert_eq!(f.total_bits(), 36);
        // "256K segments each of which may have a maximum size of 256K words"
        assert_eq!(f.max_segments(), 262_144);
        assert_eq!(f.max_segment_words(), 262_144);
    }

    #[test]
    fn split_roundtrips() {
        let f = FixedFormat::MULTICS;
        let a = FixedAddr::from_segment(FixedSegmentName(0x1234), 0x567, f).unwrap();
        assert_eq!(a.segment().0, 0x1234);
        assert_eq!(a.offset(), 0x567);
        let b = FixedAddr::from_raw(a.raw(), f).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn field_overflow_is_rejected() {
        let f = FixedFormat::MULTICS;
        assert!(FixedAddr::from_segment(FixedSegmentName(1 << 18), 0, f).is_err());
        assert!(FixedAddr::from_segment(FixedSegmentName(0), 1 << 18, f).is_err());
    }

    #[test]
    fn degenerate_formats_rejected() {
        assert!(FixedFormat::new(0, 18).is_err());
        assert!(FixedFormat::new(18, 0).is_err());
        assert!(FixedFormat::new(40, 40).is_err());
    }
}
