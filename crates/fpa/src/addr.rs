//! Floating point addresses and segment names.

use crate::{FpaError, FpaFormat};

/// A floating point virtual address: an exponent and a mantissa whose binary
/// point the exponent shifts (§2.2 of the paper).
///
/// The low `exponent` bits of the mantissa are the *offset* within the
/// segment; the remaining high bits (the integer part) combined with the
/// exponent form the [`SegmentName`]. Addresses are value types carrying
/// their format so arithmetic can be bounds-checked without external state.
///
/// ```
/// use com_fpa::{Fpa, FpaFormat};
/// # fn main() -> Result<(), com_fpa::FpaError> {
/// let a = Fpa::from_raw(0x8345, FpaFormat::DEMO16)?;
/// assert_eq!(a.exponent(), 8);
/// assert_eq!(a.offset(), 0x45);
/// assert_eq!(a.capacity(), 256);
/// let b = a.with_offset(0xFF)?;
/// assert_eq!(b.segment(), a.segment());
/// assert!(a.with_offset(0x100).is_err()); // beyond 2^8 words
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fpa {
    raw: u64,
    format: FpaFormat,
}

impl Fpa {
    /// Builds an address from a raw bit pattern in `format`.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::RawOutOfRange`] if `raw` exceeds the format width.
    pub fn from_raw(raw: u64, format: FpaFormat) -> Result<Self, FpaError> {
        if raw > format.max_raw() {
            return Err(FpaError::RawOutOfRange {
                raw,
                max: format.max_raw(),
            });
        }
        Ok(Fpa { raw, format })
    }

    /// Builds an address from explicit exponent and mantissa fields.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::ExponentOutOfRange`] or
    /// [`FpaError::MantissaOverflow`] if a field does not fit.
    pub fn from_parts(exponent: u8, mantissa: u64, format: FpaFormat) -> Result<Self, FpaError> {
        if exponent > format.max_exponent() {
            return Err(FpaError::ExponentOutOfRange {
                exponent,
                max: format.max_exponent(),
            });
        }
        if mantissa > format.mantissa_mask() {
            return Err(FpaError::MantissaOverflow {
                mantissa,
                max: format.mantissa_mask(),
            });
        }
        let raw = ((exponent as u64) << format.mantissa_bits()) | mantissa;
        Ok(Fpa { raw, format })
    }

    /// Builds the address of word `offset` inside `segment`.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::OffsetOutOfBounds`] if `offset` does not fit the
    /// segment's exponent class, [`FpaError::SegmentIndexOutOfRange`] if the
    /// segment index does not fit the mantissa, or an exponent-range error.
    pub fn from_segment(
        segment: SegmentName,
        offset: u64,
        format: FpaFormat,
    ) -> Result<Self, FpaError> {
        let exp = segment.exponent();
        let capacity = effective_capacity(exp, format);
        if offset >= capacity {
            return Err(FpaError::OffsetOutOfBounds { offset, capacity });
        }
        if segment.index() >= format.segments_in_class(exp) {
            return Err(FpaError::SegmentIndexOutOfRange {
                index: segment.index(),
                available: format.segments_in_class(exp),
            });
        }
        let shift = u32::min(exp as u32, format.mantissa_bits());
        let mantissa = (segment.index() << shift) | offset;
        Fpa::from_parts(exp, mantissa, format)
    }

    /// The raw bit pattern.
    pub fn raw(self) -> u64 {
        self.raw
    }

    /// The format this address is encoded in.
    pub fn format(self) -> FpaFormat {
        self.format
    }

    /// The exponent field: the width of the offset field in bits.
    pub fn exponent(self) -> u8 {
        (self.raw >> self.format.mantissa_bits()) as u8
    }

    /// The full mantissa field.
    pub fn mantissa(self) -> u64 {
        self.raw & self.format.mantissa_mask()
    }

    /// The offset within the segment (the fractional part of the shifted
    /// mantissa: its low `exponent` bits).
    pub fn offset(self) -> u64 {
        self.mantissa() & (effective_capacity(self.exponent(), self.format) - 1)
    }

    /// Number of words addressable in this segment: `2^exponent`, clamped
    /// to the mantissa range (an exponent wider than the mantissa cannot
    /// index more words than the mantissa holds).
    pub fn capacity(self) -> u64 {
        effective_capacity(self.exponent(), self.format)
    }

    /// The segment this address points into (integer part + exponent).
    pub fn segment(self) -> SegmentName {
        let e = self.exponent();
        let shift = u32::min(e as u32, self.format.mantissa_bits());
        SegmentName::new(e, self.mantissa() >> shift.min(63))
    }

    /// Returns this address with the offset replaced by `offset`.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::OffsetOutOfBounds`] if `offset >= capacity` —
    /// precisely the condition that, when a stale pointer to a grown object
    /// crosses it, raises the aliasing trap of §2.2.
    pub fn with_offset(self, offset: u64) -> Result<Self, FpaError> {
        let capacity = self.capacity();
        if offset >= capacity {
            return Err(FpaError::OffsetOutOfBounds { offset, capacity });
        }
        let base = self.mantissa() & !(capacity - 1);
        Fpa::from_parts(self.exponent(), base | offset, self.format)
    }

    /// Pointer arithmetic: this address advanced by `delta` words, staying
    /// within the segment.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::OffsetOutOfBounds`] when the result would leave
    /// the segment (floating point addresses never silently roll into a
    /// neighbouring segment name).
    pub fn add_words(self, delta: u64) -> Result<Self, FpaError> {
        let offset = self.offset().checked_add(delta).ok_or({
            FpaError::OffsetOutOfBounds {
                offset: u64::MAX,
                capacity: self.capacity(),
            }
        })?;
        self.with_offset(offset)
    }

    /// The base address (offset zero) of this address's segment.
    pub fn base(self) -> Fpa {
        self.with_offset(0).expect("offset 0 always fits")
    }
}

impl core::fmt::Display for Fpa {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}+{:#x}", self.segment(), self.offset())
    }
}

impl core::fmt::LowerHex for Fpa {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::LowerHex::fmt(&self.raw, f)
    }
}

fn capacity_of(exponent: u8) -> u64 {
    if exponent >= 63 {
        u64::MAX
    } else {
        1u64 << exponent
    }
}

/// Offset capacity clamped to what the mantissa can index: when the
/// exponent exceeds the mantissa width the offset field covers the whole
/// mantissa and the integer part is empty.
fn effective_capacity(exponent: u8, format: FpaFormat) -> u64 {
    let bits = u32::min(exponent as u32, format.mantissa_bits());
    1u64 << bits.min(63)
}

/// The name of a segment: an exponent class plus the index within the class
/// (the integer part of the shifted mantissa).
///
/// "The integer part of the real address when combined with the exponent
/// names the segment descriptor" (§2.2). Segment names are the keys of
/// segment descriptor tables and of the ATLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentName {
    exponent: u8,
    index: u64,
}

impl SegmentName {
    /// Creates a segment name from an exponent class and in-class index.
    pub fn new(exponent: u8, index: u64) -> Self {
        SegmentName { exponent, index }
    }

    /// The exponent class (log2 of the segment capacity).
    pub fn exponent(self) -> u8 {
        self.exponent
    }

    /// The index within the exponent class.
    pub fn index(self) -> u64 {
        self.index
    }

    /// Words addressable in this segment.
    pub fn capacity(self) -> u64 {
        capacity_of(self.exponent)
    }

    /// The paper's display convention: exponent concatenated with the
    /// integer part, e.g. segment number `0x83` for `0x8345` in the 16-bit
    /// format (exponent `8`, integer part `3`).
    ///
    /// This is the high `total_bits - exponent` bits of the raw address and
    /// is **not** unique across exponent classes (distinct segments of
    /// different exponents may display identically); the true segment key is
    /// the `(exponent, index)` pair this type carries. Use for diagnostics
    /// only.
    pub fn display_number(self, format: FpaFormat) -> u64 {
        let int_bits = (format.mantissa_bits()).saturating_sub(self.exponent as u32);
        ((self.exponent as u64) << int_bits) | self.index
    }
}

impl core::fmt::Display for SegmentName {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "seg[e{}:{:#x}]", self.exponent, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(raw: u64) -> Fpa {
        Fpa::from_raw(raw, FpaFormat::DEMO16).unwrap()
    }

    #[test]
    fn paper_example_0x8345() {
        let a = demo(0x8345);
        assert_eq!(a.exponent(), 8);
        assert_eq!(a.mantissa(), 0x345);
        assert_eq!(a.offset(), 0x45);
        assert_eq!(a.segment().index(), 0x3);
        assert_eq!(a.segment().display_number(FpaFormat::DEMO16), 0x83);
        assert_eq!(a.capacity(), 256);
    }

    #[test]
    fn zero_exponent_single_word_segments() {
        // Exponent 0: every mantissa value is its own one-word segment.
        let a = demo(0x0345);
        assert_eq!(a.exponent(), 0);
        assert_eq!(a.offset(), 0);
        assert_eq!(a.capacity(), 1);
        assert_eq!(a.segment().index(), 0x345);
    }

    #[test]
    fn from_parts_roundtrips() {
        let a = Fpa::from_parts(8, 0x345, FpaFormat::DEMO16).unwrap();
        assert_eq!(a.raw(), 0x8345);
    }

    #[test]
    fn from_segment_roundtrips() {
        let seg = SegmentName::new(8, 3);
        let a = Fpa::from_segment(seg, 0x45, FpaFormat::DEMO16).unwrap();
        assert_eq!(a.raw(), 0x8345);
        assert_eq!(a.segment(), seg);
        assert_eq!(a.offset(), 0x45);
    }

    #[test]
    fn with_offset_stays_in_segment() {
        let a = demo(0x8345);
        let b = a.with_offset(0).unwrap();
        assert_eq!(b.raw(), 0x8300);
        let c = a.with_offset(0xFF).unwrap();
        assert_eq!(c.raw(), 0x83FF);
        assert_eq!(c.segment(), a.segment());
        assert!(matches!(
            a.with_offset(0x100),
            Err(FpaError::OffsetOutOfBounds {
                offset: 0x100,
                capacity: 256
            })
        ));
    }

    #[test]
    fn add_words_traps_at_segment_end() {
        let a = demo(0x83F0);
        assert_eq!(a.add_words(0xF).unwrap().offset(), 0xFF);
        assert!(a.add_words(0x10).is_err());
    }

    #[test]
    fn com_format_large_segment() {
        let f = FpaFormat::COM;
        let seg = SegmentName::new(31, 0);
        let a = Fpa::from_segment(seg, (1 << 31) - 1, f).unwrap();
        assert_eq!(a.offset(), (1 << 31) - 1);
        assert_eq!(a.capacity(), 1 << 31);
        // Only one segment exists in the widest class.
        assert!(Fpa::from_segment(SegmentName::new(31, 1), 0, f).is_err());
    }

    #[test]
    fn rejects_raw_beyond_width() {
        assert!(Fpa::from_raw(0x1_0000, FpaFormat::DEMO16).is_err());
        assert!(Fpa::from_raw(0xFFFF, FpaFormat::DEMO16).is_ok());
    }

    #[test]
    fn display_formats() {
        let a = demo(0x8345);
        assert_eq!(a.to_string(), "seg[e8:0x3]+0x45");
        assert_eq!(format!("{a:x}"), "8345");
    }

    #[test]
    fn base_clears_offset() {
        assert_eq!(demo(0x8345).base().raw(), 0x8300);
    }
}
