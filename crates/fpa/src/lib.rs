//! Floating point virtual addresses for the Caltech Object Machine.
//!
//! This crate implements §2.2 of Dally & Kajiya, *An Object Oriented
//! Architecture* (ISCA 1985): a virtual address is an *(exponent, mantissa)*
//! pair. The exponent encodes the width of the offset field, shifting the
//! binary point of the mantissa. The fractional part (low `exponent` bits)
//! is the offset within a segment; the integer part combined with the
//! exponent names the segment. One address format therefore names billions
//! of one-word segments *and* billion-word segments, solving the **small
//! object problem** that fixed segment/offset splits cannot.
//!
//! The paper's worked example: the 16-bit address `0x8345` has exponent `8`,
//! so its offset is the byte `0x45` and its segment number is `0x83`.
//!
//! ```
//! use com_fpa::{FpaFormat, Fpa};
//!
//! # fn main() -> Result<(), com_fpa::FpaError> {
//! let fmt = FpaFormat::DEMO16;
//! let addr = Fpa::from_raw(0x8345, fmt)?;
//! assert_eq!(addr.exponent(), 8);
//! assert_eq!(addr.offset(), 0x45);
//! assert_eq!(addr.segment().display_number(fmt), 0x83);
//! # Ok(())
//! # }
//! ```
//!
//! The crate also provides:
//!
//! * [`NameAllocator`] — per-team allocation of fresh segment names, with
//!   free lists per exponent class (used when objects are created or grown).
//! * [`FixedFormat`]/[`FixedAddr`] — a conventional fixed-split scheme
//!   (MULTICS-style 18/18 by default) used as the baseline in experiment T4.
//! * [`AddressScheme`] — the common trait the T4 harness sweeps over.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addr;
mod alloc;
mod error;
mod fixed;
mod format;
mod scheme;

pub use addr::{Fpa, SegmentName};
pub use alloc::NameAllocator;
pub use error::FpaError;
pub use fixed::{FixedAddr, FixedFormat, FixedSegmentName};
pub use format::FpaFormat;
pub use scheme::{AddressScheme, FixedScheme, FpaScheme, NamingOutcome};
