//! Address format descriptors.

use crate::FpaError;

/// Shape of a floating point address: an `exponent_bits`-bit exponent in the
/// high bits followed by a `mantissa_bits`-bit mantissa.
///
/// The paper requires `e = ceil(log2(m))` so that every offset width from a
/// single word up to the full mantissa is expressible; [`FpaFormat::new`]
/// enforces that relation, while [`FpaFormat::with_bits`] permits arbitrary
/// (still consistent) splits for experimentation.
///
/// ```
/// use com_fpa::FpaFormat;
/// let com = FpaFormat::COM;
/// assert_eq!(com.total_bits(), 36);
/// assert_eq!(com.max_segment_words(), 1 << 31);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FpaFormat {
    mantissa_bits: u32,
    exponent_bits: u32,
}

impl FpaFormat {
    /// The COM's 36-bit address: 5-bit exponent, 31-bit mantissa (§2.2).
    ///
    /// Supports segments of up to 2^31 words and, summed over all exponent
    /// classes, about 2^32 distinct segment names (the paper quotes "8
    /// billion segments"; the geometric sum over exponent classes of a 31-bit
    /// mantissa is `2^32 - 1` ≈ 4.3 billion — either way, four orders of
    /// magnitude beyond MULTICS' 256K).
    pub const COM: FpaFormat = FpaFormat {
        mantissa_bits: 31,
        exponent_bits: 5,
    };

    /// The 16-bit demonstration format from the paper (`0x8345` example):
    /// 4-bit exponent, 12-bit mantissa.
    pub const DEMO16: FpaFormat = FpaFormat {
        mantissa_bits: 12,
        exponent_bits: 4,
    };

    /// Creates a format with `mantissa_bits` and the paper-prescribed
    /// exponent width `ceil(log2(mantissa_bits))`.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::BadFormat`] if `mantissa_bits` is zero or the
    /// total width would exceed 63 bits (raw addresses are carried in `u64`
    /// with one bit to spare for tagging by embedders).
    pub fn new(mantissa_bits: u32) -> Result<Self, FpaError> {
        let exponent_bits = ceil_log2(mantissa_bits.max(1));
        Self::with_bits(mantissa_bits, exponent_bits)
    }

    /// Creates a format with explicit exponent width.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::BadFormat`] when either field is zero or the
    /// combined width exceeds 63 bits.
    pub fn with_bits(mantissa_bits: u32, exponent_bits: u32) -> Result<Self, FpaError> {
        if mantissa_bits == 0 || exponent_bits == 0 || mantissa_bits + exponent_bits > 63 {
            return Err(FpaError::BadFormat {
                mantissa_bits,
                exponent_bits,
            });
        }
        Ok(FpaFormat {
            mantissa_bits,
            exponent_bits,
        })
    }

    /// Width of the mantissa field in bits.
    pub fn mantissa_bits(self) -> u32 {
        self.mantissa_bits
    }

    /// Width of the exponent field in bits.
    pub fn exponent_bits(self) -> u32 {
        self.exponent_bits
    }

    /// Total address width in bits.
    pub fn total_bits(self) -> u32 {
        self.mantissa_bits + self.exponent_bits
    }

    /// Largest exponent value the format can encode.
    pub fn max_exponent(self) -> u8 {
        ((1u64 << self.exponent_bits) - 1).min(63) as u8
    }

    /// Largest raw address value representable.
    pub fn max_raw(self) -> u64 {
        (1u64 << self.total_bits()) - 1
    }

    /// Mask covering the mantissa field.
    pub fn mantissa_mask(self) -> u64 {
        (1u64 << self.mantissa_bits) - 1
    }

    /// Number of words in the largest expressible segment
    /// (`2^min(max_exponent, mantissa_bits)`; offsets cannot exceed the
    /// mantissa range).
    pub fn max_segment_words(self) -> u64 {
        1u64 << u32::min(self.max_exponent() as u32, self.mantissa_bits)
    }

    /// Number of distinct segment names in the exponent class `exp`
    /// (`2^(mantissa_bits - exp)`), or 1 when `exp >= mantissa_bits`.
    pub fn segments_in_class(self, exp: u8) -> u64 {
        if (exp as u32) >= self.mantissa_bits {
            1
        } else {
            1u64 << (self.mantissa_bits - exp as u32)
        }
    }

    /// Total number of distinct segment names across all exponent classes.
    ///
    /// For the COM format this is `2^32 - 1 + extra` — billions, versus 256K
    /// for a MULTICS-style fixed split of comparable width.
    pub fn total_segment_names(self) -> u128 {
        (0..=self.max_exponent())
            .map(|e| self.segments_in_class(e) as u128)
            .sum()
    }

    /// Smallest exponent whose segment capacity holds `words` words.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::ObjectTooLarge`] when no exponent class can hold
    /// an object of that size.
    pub fn exponent_for(self, words: u64) -> Result<u8, FpaError> {
        if words == 0 {
            return Ok(0);
        }
        if words > self.max_segment_words() {
            return Err(FpaError::ObjectTooLarge {
                words,
                max: self.max_segment_words(),
            });
        }
        Ok(ceil_log2_u64(words) as u8)
    }
}

impl Default for FpaFormat {
    fn default() -> Self {
        FpaFormat::COM
    }
}

impl core::fmt::Display for FpaFormat {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "fpa{}(e{}/m{})",
            self.total_bits(),
            self.exponent_bits,
            self.mantissa_bits
        )
    }
}

/// `ceil(log2(x))` for `x >= 1`.
fn ceil_log2(x: u32) -> u32 {
    32 - (x - 1).leading_zeros()
}

fn ceil_log2_u64(x: u64) -> u32 {
    if x <= 1 {
        0
    } else {
        64 - (x - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn com_format_matches_paper() {
        let f = FpaFormat::COM;
        assert_eq!(f.total_bits(), 36);
        assert_eq!(f.max_exponent(), 31);
        // "supports segments of up to 2 billion words long"
        assert_eq!(f.max_segment_words(), 2_147_483_648);
        // "accommodates billions of segments" (paper says 8 billion; the
        // geometric sum is 2^32 - 1).
        assert!(f.total_segment_names() >= (1u128 << 32) - 1);
    }

    #[test]
    fn demo16_format_matches_paper_example() {
        let f = FpaFormat::DEMO16;
        assert_eq!(f.total_bits(), 16);
        assert_eq!(f.max_exponent(), 15);
    }

    #[test]
    fn new_derives_exponent_width() {
        // ceil(log2(31)) = 5
        let f = FpaFormat::new(31).unwrap();
        assert_eq!(f.exponent_bits(), 5);
        // ceil(log2(12)) = 4
        let f = FpaFormat::new(12).unwrap();
        assert_eq!(f.exponent_bits(), 4);
        // ceil(log2(32)) = 5
        let f = FpaFormat::new(32).unwrap();
        assert_eq!(f.exponent_bits(), 5);
        // ceil(log2(33)) = 6
        let f = FpaFormat::new(33).unwrap();
        assert_eq!(f.exponent_bits(), 6);
    }

    #[test]
    fn rejects_degenerate_formats() {
        assert!(FpaFormat::with_bits(0, 4).is_err());
        assert!(FpaFormat::with_bits(12, 0).is_err());
        assert!(FpaFormat::with_bits(60, 4).is_err());
        assert!(FpaFormat::with_bits(59, 4).is_ok());
    }

    #[test]
    fn segments_in_class_is_geometric() {
        let f = FpaFormat::DEMO16;
        assert_eq!(f.segments_in_class(0), 1 << 12);
        assert_eq!(f.segments_in_class(8), 1 << 4);
        assert_eq!(f.segments_in_class(12), 1);
        assert_eq!(f.segments_in_class(15), 1);
    }

    #[test]
    fn exponent_for_picks_tight_class() {
        let f = FpaFormat::COM;
        assert_eq!(f.exponent_for(0).unwrap(), 0);
        assert_eq!(f.exponent_for(1).unwrap(), 0);
        assert_eq!(f.exponent_for(2).unwrap(), 1);
        assert_eq!(f.exponent_for(3).unwrap(), 2);
        assert_eq!(f.exponent_for(32).unwrap(), 5);
        assert_eq!(f.exponent_for(33).unwrap(), 6);
        assert_eq!(f.exponent_for(1 << 31).unwrap(), 31);
        assert!(f.exponent_for((1 << 31) + 1).is_err());
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(FpaFormat::COM.to_string(), "fpa36(e5/m31)");
    }
}
