//! Allocation of fresh segment names within a team's virtual space.

use std::collections::BTreeMap;

use crate::{Fpa, FpaError, FpaFormat, SegmentName};

/// Allocates virtual segment names per exponent class.
///
/// Naming is separated from storage (§3.1): this allocator hands out *names*
/// only; binding a name to absolute storage is the segment table's job
/// (`com-mem`). Each exponent class is an independent pool: a bump cursor
/// plus a free list, so names released by the garbage collector are reused
/// before the class exhausts.
///
/// ```
/// use com_fpa::{FpaFormat, NameAllocator};
/// let mut names = NameAllocator::new(FpaFormat::DEMO16);
/// let a = names.alloc_for_size(100).unwrap(); // needs exponent 7
/// assert_eq!(a.segment().exponent(), 7);
/// let b = names.alloc_for_size(100).unwrap();
/// assert_ne!(a.segment(), b.segment());
/// ```
#[derive(Debug, Clone)]
pub struct NameAllocator {
    format: FpaFormat,
    /// Next never-used index per exponent class.
    cursors: BTreeMap<u8, u64>,
    /// Recycled indices per exponent class.
    free: BTreeMap<u8, Vec<u64>>,
    allocated: u64,
    recycled: u64,
    freed: u64,
}

impl NameAllocator {
    /// Creates an allocator for `format` with all names free.
    pub fn new(format: FpaFormat) -> Self {
        NameAllocator {
            format,
            cursors: BTreeMap::new(),
            free: BTreeMap::new(),
            allocated: 0,
            recycled: 0,
            freed: 0,
        }
    }

    /// The address format names are drawn from.
    pub fn format(&self) -> FpaFormat {
        self.format
    }

    /// Allocates a fresh base address (offset 0) in exponent class `exp`.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::ExponentOutOfRange`] for an impossible class or
    /// [`FpaError::ClassExhausted`] when every name in the class is live.
    pub fn alloc(&mut self, exp: u8) -> Result<Fpa, FpaError> {
        if exp > self.format.max_exponent() {
            return Err(FpaError::ExponentOutOfRange {
                exponent: exp,
                max: self.format.max_exponent(),
            });
        }
        if let Some(list) = self.free.get_mut(&exp) {
            if let Some(idx) = list.pop() {
                self.allocated += 1;
                self.recycled += 1;
                return Fpa::from_segment(SegmentName::new(exp, idx), 0, self.format);
            }
        }
        let cursor = self.cursors.entry(exp).or_insert(0);
        if *cursor >= self.format.segments_in_class(exp) {
            return Err(FpaError::ClassExhausted { exponent: exp });
        }
        let idx = *cursor;
        *cursor += 1;
        self.allocated += 1;
        Fpa::from_segment(SegmentName::new(exp, idx), 0, self.format)
    }

    /// Allocates a fresh base address whose segment holds at least `words`.
    ///
    /// # Errors
    ///
    /// Returns [`FpaError::ObjectTooLarge`] or [`FpaError::ClassExhausted`].
    pub fn alloc_for_size(&mut self, words: u64) -> Result<Fpa, FpaError> {
        let exp = self.format.exponent_for(words)?;
        self.alloc(exp)
    }

    /// Returns a name to its class's free list.
    ///
    /// Freeing a name that was never allocated is permitted (the garbage
    /// collector may free speculatively created aliases); double-frees are
    /// the caller's responsibility, as in the hardware free list.
    pub fn free(&mut self, segment: SegmentName) {
        self.freed += 1;
        self.free
            .entry(segment.exponent())
            .or_default()
            .push(segment.index());
    }

    /// Total successful allocations performed.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// How many allocations were served from free lists.
    pub fn recycled(&self) -> u64 {
        self.recycled
    }

    /// Names currently sitting in free lists.
    pub fn free_count(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Live names: allocations not yet freed.
    pub fn live_count(&self) -> u64 {
        self.allocated.saturating_sub(self.freed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_distinct_names() {
        let mut a = NameAllocator::new(FpaFormat::DEMO16);
        let x = a.alloc(4).unwrap();
        let y = a.alloc(4).unwrap();
        let z = a.alloc(5).unwrap();
        assert_ne!(x.segment(), y.segment());
        assert_ne!(x.segment(), z.segment());
        assert_eq!(x.offset(), 0);
    }

    #[test]
    fn size_based_allocation_picks_tight_exponent() {
        let mut a = NameAllocator::new(FpaFormat::COM);
        assert_eq!(a.alloc_for_size(1).unwrap().segment().exponent(), 0);
        assert_eq!(a.alloc_for_size(2).unwrap().segment().exponent(), 1);
        assert_eq!(a.alloc_for_size(33).unwrap().segment().exponent(), 6);
        assert_eq!(a.alloc_for_size(4096).unwrap().segment().exponent(), 12);
    }

    #[test]
    fn exhaustion_is_detected() {
        // DEMO16 class 11 has 2^(12-11) = 2 names.
        let mut a = NameAllocator::new(FpaFormat::DEMO16);
        a.alloc(11).unwrap();
        a.alloc(11).unwrap();
        assert_eq!(a.alloc(11), Err(FpaError::ClassExhausted { exponent: 11 }));
    }

    #[test]
    fn freeing_recycles_names() {
        let mut a = NameAllocator::new(FpaFormat::DEMO16);
        let x = a.alloc(11).unwrap();
        let y = a.alloc(11).unwrap();
        a.free(x.segment());
        let z = a.alloc(11).unwrap();
        assert_eq!(z.segment(), x.segment());
        assert_ne!(z.segment(), y.segment());
        assert_eq!(a.recycled(), 1);
    }

    #[test]
    fn rejects_bad_class() {
        let mut a = NameAllocator::new(FpaFormat::DEMO16);
        assert!(a.alloc(16).is_err());
        assert!(a.alloc_for_size(1 << 40).is_err());
    }
}
