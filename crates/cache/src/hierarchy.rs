//! A stack of cache levels modelling absolute→physical translation.
//!
//! §3.1: "To translate an absolute address to a physical address the
//! absolute address is offered to each level of the memory hierarchy in
//! turn. Each storage device is treated as a cache in which frequently
//! accessed portions of absolute space may be stored." Because the mapping
//! is performed "by hashing as in a conventional set associative cache, the
//! size of the page table is only a function of the size of physical memory
//! and does not place a limit on the size of absolute space."

use crate::{CacheConfig, CacheError, CacheStats, SetAssocCache};

/// Declaration of one level of the hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct LevelSpec {
    /// Human-readable level name (for reports).
    pub name: &'static str,
    /// Cache geometry, in *blocks*.
    pub config: CacheConfig,
    /// Words per block (absolute addresses are grouped into blocks of this
    /// size before lookup).
    pub block_words: u64,
    /// Access latency in processor cycles when this level hits.
    pub latency: u64,
}

/// Result of offering an absolute address to the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Index of the level that hit (0 = closest), or `None` if the backing
    /// store had to supply the block.
    pub hit_level: Option<usize>,
    /// Total cycles charged, including all levels probed on the way down.
    pub cycles: u64,
}

/// A multi-level physical memory model: every level is a set-associative
/// cache of absolute space blocks; the backing store always hits.
///
/// ```
/// use com_cache::{CacheConfig, LevelSpec, MemoryHierarchy};
/// # fn main() -> Result<(), com_cache::CacheError> {
/// let mut mem = MemoryHierarchy::new(
///     vec![LevelSpec {
///         name: "L1",
///         config: CacheConfig::new(64, 2)?,
///         block_words: 8,
///         latency: 1,
///     }],
///     20,
/// )?;
/// let first = mem.access(0x100);
/// assert_eq!(first.hit_level, None);      // cold: backing store
/// let again = mem.access(0x101);          // same 8-word block
/// assert_eq!(again.hit_level, Some(0));
/// assert!(again.cycles < first.cycles);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MemoryHierarchy {
    levels: Vec<(LevelSpec, SetAssocCache<u64, ()>)>,
    backing_latency: u64,
    accesses: u64,
    total_cycles: u64,
}

impl MemoryHierarchy {
    /// Builds a hierarchy from level specs (closest first) and the latency
    /// of the backing store that terminates every miss path.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::EmptyHierarchy`] when `levels` is empty and
    /// `backing_latency` is zero (a degenerate, free memory).
    pub fn new(levels: Vec<LevelSpec>, backing_latency: u64) -> Result<Self, CacheError> {
        if levels.is_empty() && backing_latency == 0 {
            return Err(CacheError::EmptyHierarchy);
        }
        Ok(MemoryHierarchy {
            levels: levels
                .into_iter()
                .map(|spec| {
                    let cache = SetAssocCache::with_indexer(spec.config, |k| *k);
                    (spec, cache)
                })
                .collect(),
            backing_latency,
            accesses: 0,
            total_cycles: 0,
        })
    }

    /// Offers an absolute word address to each level in turn; fills every
    /// missed level on the way back up (inclusive hierarchy).
    pub fn access(&mut self, absolute: u64) -> AccessOutcome {
        self.accesses += 1;
        let mut cycles = 0;
        let mut hit_level = None;
        for (i, (spec, cache)) in self.levels.iter_mut().enumerate() {
            let block = absolute / spec.block_words;
            cycles += spec.latency;
            if cache.lookup(&block).is_some() {
                hit_level = Some(i);
                break;
            }
        }
        if hit_level.is_none() {
            cycles += self.backing_latency;
        }
        // Fill the levels that missed (those above the hit level).
        let fill_upto = hit_level.unwrap_or(self.levels.len());
        for (spec, cache) in self.levels.iter_mut().take(fill_upto) {
            let block = absolute / spec.block_words;
            cache.fill(block, ());
        }
        self.total_cycles += cycles;
        AccessOutcome { hit_level, cycles }
    }

    /// Per-level statistics, closest level first.
    pub fn level_stats(&self) -> Vec<(&'static str, CacheStats)> {
        self.levels
            .iter()
            .map(|(spec, cache)| (spec.name, cache.stats()))
            .collect()
    }

    /// Total accesses offered to the hierarchy.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cycles charged across all accesses.
    pub fn total_cycles(&self) -> u64 {
        self.total_cycles
    }

    /// Average cycles per access; `None` before any access.
    pub fn average_latency(&self) -> Option<f64> {
        if self.accesses == 0 {
            None
        } else {
            Some(self.total_cycles as f64 / self.accesses as f64)
        }
    }

    /// Clears statistics on every level (contents retained).
    pub fn reset_stats(&mut self) {
        for (_, cache) in &mut self.levels {
            cache.reset_stats();
        }
        self.accesses = 0;
        self.total_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_level() -> MemoryHierarchy {
        MemoryHierarchy::new(
            vec![
                LevelSpec {
                    name: "L1",
                    config: CacheConfig::new(4, 2).unwrap(),
                    block_words: 4,
                    latency: 1,
                },
                LevelSpec {
                    name: "L2",
                    config: CacheConfig::new(64, 4).unwrap(),
                    block_words: 16,
                    latency: 4,
                },
            ],
            50,
        )
        .unwrap()
    }

    #[test]
    fn cold_miss_costs_full_path() {
        let mut m = two_level();
        let out = m.access(0);
        assert_eq!(out.hit_level, None);
        assert_eq!(out.cycles, 1 + 4 + 50);
    }

    #[test]
    fn locality_hits_l1() {
        let mut m = two_level();
        m.access(0);
        let out = m.access(1);
        assert_eq!(out.hit_level, Some(0));
        assert_eq!(out.cycles, 1);
    }

    #[test]
    fn l1_eviction_falls_to_l2() {
        let mut m = two_level();
        m.access(0);
        // Touch enough distinct L1 blocks (4-word) within distinct L2 blocks
        // to evict block 0 from L1 while keeping it in L2.
        for a in (16..16 + 16 * 16).step_by(16) {
            m.access(a);
        }
        let out = m.access(0);
        // Block 0 must not still be in L1 after 16 conflicting fills.
        assert!(out.hit_level == Some(1) || out.hit_level.is_none());
    }

    #[test]
    fn average_latency_accumulates() {
        let mut m = two_level();
        assert_eq!(m.average_latency(), None);
        m.access(0);
        m.access(1);
        assert!(m.average_latency().unwrap() > 1.0);
        m.reset_stats();
        assert_eq!(m.accesses(), 0);
    }

    #[test]
    fn rejects_degenerate() {
        assert!(MemoryHierarchy::new(vec![], 0).is_err());
        assert!(MemoryHierarchy::new(vec![], 10).is_ok());
    }
}
