//! Cache construction errors.

/// Errors raised when building cache structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheError {
    /// Entry count and associativity are inconsistent.
    BadGeometry {
        /// Requested total entries.
        entries: usize,
        /// Requested ways per set.
        ways: usize,
    },
    /// A memory hierarchy was declared with no levels and no backing latency.
    EmptyHierarchy,
}

impl core::fmt::Display for CacheError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            CacheError::BadGeometry { entries, ways } => write!(
                f,
                "invalid cache geometry: {entries} entries with {ways} ways (ways must divide entries, both nonzero)"
            ),
            CacheError::EmptyHierarchy => write!(f, "memory hierarchy has no levels"),
        }
    }
}

impl std::error::Error for CacheError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_mentions_fields() {
        let e = CacheError::BadGeometry {
            entries: 10,
            ways: 4,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));
    }
}
