//! Cache geometry and replacement policy.

use crate::CacheError;

/// Replacement policy applied within each set.
///
/// The paper's simulations (§5) sweep associativity under LRU; FIFO and a
/// seeded pseudo-random policy are provided for ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Replacement {
    /// Evict the least recently used line.
    #[default]
    Lru,
    /// Evict the oldest-filled line regardless of use.
    Fifo,
    /// Evict a pseudo-randomly chosen line (xorshift, deterministic seed).
    Random,
}

impl core::fmt::Display for Replacement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Replacement::Lru => write!(f, "lru"),
            Replacement::Fifo => write!(f, "fifo"),
            Replacement::Random => write!(f, "random"),
        }
    }
}

/// Geometry of a set-associative cache: total entry count and ways per set.
///
/// `entries / ways` sets are used; a fully associative cache is
/// `ways == entries`. Direct mapped is `ways == 1`.
///
/// ```
/// use com_cache::CacheConfig;
/// let cfg = CacheConfig::new(512, 2).unwrap();
/// assert_eq!(cfg.sets(), 256);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    entries: usize,
    ways: usize,
    replacement: Replacement,
    seed: u64,
    hash: HashKind,
}

/// Which hash indexes keys to sets in [`SetAssocCache`](crate::SetAssocCache).
///
/// `Sip` (the standard library's SipHash) is the historical default and is
/// kept for reproducibility of recorded figures. `Fx` is a multiply-xor
/// hash that is an order of magnitude cheaper per lookup; set mappings (and
/// therefore conflict-miss patterns) differ between the two, so a given
/// cache must pick one and stay with it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HashKind {
    /// SipHash via [`std::hash::DefaultHasher`].
    #[default]
    Sip,
    /// Multiply-xor fast hash ([`crate::FxHasher`]).
    Fx,
}

impl CacheConfig {
    /// Creates a geometry of `entries` total lines, `ways` per set, LRU.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadGeometry`] when `entries` is zero, `ways` is
    /// zero, or `ways` does not divide `entries`.
    pub fn new(entries: usize, ways: usize) -> Result<Self, CacheError> {
        if entries == 0 || ways == 0 || !entries.is_multiple_of(ways) {
            return Err(CacheError::BadGeometry { entries, ways });
        }
        Ok(CacheConfig {
            entries,
            ways,
            replacement: Replacement::Lru,
            seed: 0x9E37_79B9_7F4A_7C15,
            hash: HashKind::Sip,
        })
    }

    /// Creates a fully associative geometry of `entries` lines.
    ///
    /// # Errors
    ///
    /// Returns [`CacheError::BadGeometry`] when `entries` is zero.
    pub fn fully_associative(entries: usize) -> Result<Self, CacheError> {
        Self::new(entries, entries.max(1))
    }

    /// Replaces the replacement policy.
    pub fn with_replacement(mut self, replacement: Replacement) -> Self {
        self.replacement = replacement;
        self
    }

    /// Replaces the seed used by [`Replacement::Random`].
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed.max(1);
        self
    }

    /// Switches set indexing to the fast multiply-xor hash.
    pub fn with_fast_hash(mut self) -> Self {
        self.hash = HashKind::Fx;
        self
    }

    /// The set-indexing hash.
    pub fn hash_kind(self) -> HashKind {
        self.hash
    }

    /// Total number of lines.
    pub fn entries(self) -> usize {
        self.entries
    }

    /// Lines per set (associativity).
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Number of sets (`entries / ways`).
    pub fn sets(self) -> usize {
        self.entries / self.ways
    }

    /// The replacement policy.
    pub fn replacement(self) -> Replacement {
        self.replacement
    }

    /// The random-policy seed.
    pub fn seed(self) -> u64 {
        self.seed
    }
}

impl core::fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}-way {}", self.entries, self.ways, self.replacement)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_derives_sets() {
        let c = CacheConfig::new(4096, 4).unwrap();
        assert_eq!(c.sets(), 1024);
        assert_eq!(c.ways(), 4);
        let fa = CacheConfig::fully_associative(32).unwrap();
        assert_eq!(fa.sets(), 1);
        assert_eq!(fa.ways(), 32);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(CacheConfig::new(0, 1).is_err());
        assert!(CacheConfig::new(8, 0).is_err());
        assert!(CacheConfig::new(10, 4).is_err());
    }

    #[test]
    fn display_is_informative() {
        let c = CacheConfig::new(512, 2)
            .unwrap()
            .with_replacement(Replacement::Fifo);
        assert_eq!(c.to_string(), "512x2-way fifo");
    }
}
