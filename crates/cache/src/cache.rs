//! The generic set-associative cache.

use std::hash::{DefaultHasher, Hash, Hasher};

use crate::{CacheConfig, CacheStats, FxHasher, HashKind, Replacement};

/// One line of a set.
#[derive(Debug, Clone)]
struct Line<K, V> {
    key: K,
    value: V,
    /// Monotonic counter value at last use (LRU) …
    last_used: u64,
    /// … and at fill time (FIFO).
    filled_at: u64,
}

/// A set-associative key/value cache with hit/miss accounting.
///
/// Keys are mapped to a set either by the default hash indexer or by a
/// custom indexing function (address-bit indexing for instruction caches,
/// for example — see [`SetAssocCache::with_indexer`]); within a set, the
/// configured [`Replacement`] policy picks victims.
///
/// This is a *simulation* structure: it models the COM's associative
/// memories (ITLB, ATLB, instruction cache, cache levels of physical
/// memory). It deliberately exposes the miss path to the caller — a miss
/// returns `None` and the caller performs the authoritative lookup (method
/// dictionaries, segment tables…) and then [`fill`](SetAssocCache::fill)s.
#[derive(Clone)]
pub struct SetAssocCache<K, V> {
    config: CacheConfig,
    sets: Vec<Vec<Line<K, V>>>,
    clock: u64,
    rng: u64,
    stats: CacheStats,
    indexer: Option<fn(&K) -> u64>,
}

impl<K, V> std::fmt::Debug for SetAssocCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SetAssocCache")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<K: Hash + Eq + Clone, V> SetAssocCache<K, V> {
    /// Creates an empty cache with hash-based set indexing.
    pub fn new(config: CacheConfig) -> Self {
        SetAssocCache {
            config,
            sets: (0..config.sets()).map(|_| Vec::new()).collect(),
            clock: 0,
            rng: config.seed(),
            stats: CacheStats::default(),
            indexer: None,
        }
    }

    /// Creates an empty cache whose set index is `indexer(key) % sets`.
    ///
    /// Use address-bit indexing for caches that are indexed by low address
    /// bits in hardware (the instruction cache), and leave the default
    /// hashing for key tuples (the ITLB).
    pub fn with_indexer(config: CacheConfig, indexer: fn(&K) -> u64) -> Self {
        let mut c = Self::new(config);
        c.indexer = Some(indexer);
        c
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics accumulated since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters but keeps contents — call at the warmup/measurement
    /// boundary, as in the paper's §5 methodology.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid lines currently resident.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    fn set_index(&self, key: &K) -> usize {
        let h = match self.indexer {
            Some(f) => f(key),
            None => match self.config.hash_kind() {
                HashKind::Sip => {
                    let mut hasher = DefaultHasher::new();
                    key.hash(&mut hasher);
                    hasher.finish()
                }
                HashKind::Fx => {
                    let mut hasher = FxHasher::default();
                    key.hash(&mut hasher);
                    hasher.finish()
                }
            },
        };
        (h % self.config.sets() as u64) as usize
    }

    /// Looks `key` up, recording a hit or miss and refreshing recency.
    pub fn lookup(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let clock = self.clock;
        let set = self.set_index(key);
        let lines = &mut self.sets[set];
        if let Some(line) = lines.iter_mut().find(|l| l.key == *key) {
            line.last_used = clock;
            self.stats.hits += 1;
            Some(&line.value)
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Non-recording, non-mutating probe (for diagnostics and tests).
    pub fn peek(&self, key: &K) -> Option<&V> {
        let set = self.set_index(key);
        self.sets[set]
            .iter()
            .find(|l| l.key == *key)
            .map(|l| &l.value)
    }

    /// Inserts `key → value`, evicting per policy if the set is full.
    /// Returns the evicted pair, if any. Filling an already-present key
    /// replaces its value in place (no eviction).
    pub fn fill(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        let clock = self.clock;
        self.stats.fills += 1;
        let set = self.set_index(&key);
        let ways = self.config.ways();
        let replacement = self.config.replacement();
        let lines = &mut self.sets[set];

        if let Some(line) = lines.iter_mut().find(|l| l.key == key) {
            line.value = value;
            line.last_used = clock;
            return None;
        }
        if lines.len() < ways {
            lines.push(Line {
                key,
                value,
                last_used: clock,
                filled_at: clock,
            });
            return None;
        }
        let victim = match replacement {
            Replacement::Lru => lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.last_used)
                .map(|(i, _)| i)
                .expect("set is full, so nonempty"),
            Replacement::Fifo => lines
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.filled_at)
                .map(|(i, _)| i)
                .expect("set is full, so nonempty"),
            Replacement::Random => {
                // xorshift64*
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % ways as u64) as usize
            }
        };
        self.stats.evictions += 1;
        let old = std::mem::replace(
            &mut lines[victim],
            Line {
                key,
                value,
                last_used: clock,
                filled_at: clock,
            },
        );
        Some((old.key, old.value))
    }

    /// Looks up, and on a miss computes the value with `f` and fills it.
    /// Returns the value and whether the access hit.
    pub fn lookup_or_insert_with(&mut self, key: K, f: impl FnOnce() -> V) -> (&V, bool) {
        // Split borrow: lookup first (records stats), then fill on miss.
        let hit = self.lookup(&key).is_some();
        if !hit {
            let v = f();
            self.fill(key.clone(), v);
        }
        let set = self.set_index(&key);
        let v = self.sets[set]
            .iter()
            .find(|l| l.key == key)
            .map(|l| &l.value)
            .expect("just filled");
        (v, hit)
    }

    /// Removes `key` if present, returning its value.
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let set = self.set_index(key);
        let lines = &mut self.sets[set];
        let pos = lines.iter().position(|l| l.key == *key)?;
        self.stats.invalidations += 1;
        Some(lines.swap_remove(pos).value)
    }

    /// Drops all contents (statistics are kept; pair with
    /// [`reset_stats`](Self::reset_stats) for a full reset).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
    }

    /// Iterates over all resident `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.sets
            .iter()
            .flat_map(|s| s.iter().map(|l| (&l.key, &l.value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CacheError;

    fn cfg(entries: usize, ways: usize) -> CacheConfig {
        CacheConfig::new(entries, ways).unwrap()
    }

    #[test]
    fn hit_after_fill() {
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(cfg(8, 2));
        assert_eq!(c.lookup(&1), None);
        c.fill(1, 10);
        assert_eq!(c.lookup(&1), Some(&10));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Fully associative, 2 entries.
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(cfg(2, 2));
        c.fill(1, ());
        c.fill(2, ());
        c.lookup(&1); // 1 is now more recent than 2
        let evicted = c.fill(3, ());
        assert_eq!(evicted, Some((2, ())));
        assert!(c.peek(&1).is_some());
        assert!(c.peek(&3).is_some());
    }

    #[test]
    fn fifo_evicts_oldest_fill() {
        let c2 = cfg(2, 2).with_replacement(Replacement::Fifo);
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(c2);
        c.fill(1, ());
        c.fill(2, ());
        c.lookup(&1); // recency must not matter for FIFO
        let evicted = c.fill(3, ());
        assert_eq!(evicted, Some((1, ())));
    }

    #[test]
    fn refill_replaces_in_place() {
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(cfg(2, 2));
        c.fill(1, 10);
        assert_eq!(c.fill(1, 20), None);
        assert_eq!(c.peek(&1), Some(&20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn direct_mapped_conflicts() {
        // 2 sets, 1 way, address-bit indexing: keys 0 and 2 collide.
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::with_indexer(cfg(2, 1), |k| *k);
        c.fill(0, 100);
        c.fill(2, 102);
        assert_eq!(c.peek(&0), None, "0 evicted by conflicting 2");
        assert_eq!(c.peek(&2), Some(&102));
        c.fill(1, 101);
        assert_eq!(c.peek(&1), Some(&101), "odd keys use the other set");
        assert_eq!(c.peek(&2), Some(&102));
    }

    #[test]
    fn lookup_or_insert_with_runs_once() {
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(cfg(4, 4));
        let mut calls = 0;
        let (v, hit) = c.lookup_or_insert_with(9, || {
            calls += 1;
            99
        });
        assert_eq!((*v, hit), (99, false));
        let (v, hit) = c.lookup_or_insert_with(9, || {
            calls += 1;
            0
        });
        assert_eq!((*v, hit), (99, true));
        assert_eq!(calls, 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(cfg(4, 4));
        c.fill(5, 50);
        assert_eq!(c.invalidate(&5), Some(50));
        assert_eq!(c.invalidate(&5), None);
        assert_eq!(c.lookup(&5), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(cfg(4, 4));
        c.fill(5, 50);
        c.lookup(&5);
        c.reset_stats();
        assert_eq!(c.stats(), CacheStats::default());
        assert_eq!(c.lookup(&5), Some(&50));
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn len_counts_resident_lines() {
        let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(cfg(8, 2));
        assert!(c.is_empty());
        for k in 0..5 {
            c.fill(k, ());
        }
        assert!(c.len() <= 5);
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn geometry_error_is_reported() {
        assert_eq!(
            CacheConfig::new(6, 4).unwrap_err(),
            CacheError::BadGeometry {
                entries: 6,
                ways: 4
            }
        );
    }

    #[test]
    fn random_policy_is_deterministic() {
        let build = || {
            let cfgr = cfg(2, 2)
                .with_replacement(Replacement::Random)
                .with_seed(42);
            let mut c: SetAssocCache<u64, ()> = SetAssocCache::new(cfgr);
            for k in 0..100 {
                c.fill(k, ());
                c.lookup(&(k / 2));
            }
            c.stats()
        };
        assert_eq!(build(), build());
    }
}
