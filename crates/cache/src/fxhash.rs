//! A multiply-xor hasher for hot-path cache indexing.
//!
//! SipHash (the standard library default) costs tens of nanoseconds per
//! small key; simulation structures probed once per simulated instruction
//! or memory access (the ATLB, the decoded-method index) cannot afford
//! that. `FxHasher` is the classic firefox/rustc-style fold: xor the next
//! word in, multiply by a large odd constant. Deterministic across runs
//! and platforms; not DoS-resistant (irrelevant here: keys come from the
//! simulated machine, not an adversary).

use std::hash::{BuildHasherDefault, Hasher};

const K: u64 = 0x517c_c1b7_2722_0a95;

/// The multiply-xor hasher. Use [`FxBuildHasher`] with `HashMap`.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.hash = (self.hash ^ v).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Fold the well-mixed high bits down: callers commonly reduce the
        // result modulo a small power of two.
        self.hash ^ (self.hash >> 32)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut v = [0u8; 8];
            v[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(v));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`] (for `HashMap` hot paths).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of(parts: &[u64]) -> u64 {
        let mut h = FxHasher::default();
        for p in parts {
            h.write_u64(*p);
        }
        h.finish()
    }

    #[test]
    fn deterministic_and_sensitive() {
        assert_eq!(hash_of(&[1, 2]), hash_of(&[1, 2]));
        assert_ne!(hash_of(&[1, 2]), hash_of(&[2, 1]));
        assert_ne!(hash_of(&[0]), hash_of(&[1]));
    }

    #[test]
    fn low_bits_spread() {
        // Sequential keys must not collide in the low bits used for
        // small set counts.
        let mut seen = std::collections::HashSet::new();
        for i in 0..64u64 {
            seen.insert(hash_of(&[i]) % 32);
        }
        assert!(seen.len() >= 24, "only {} of 32 sets used", seen.len());
    }

    #[test]
    fn byte_stream_matches_word_writes_in_spirit() {
        let mut a = FxHasher::default();
        a.write(&1u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(1);
        assert_eq!(a.finish(), b.finish());
    }
}
