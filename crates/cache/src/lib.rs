//! Set-associative cache simulation for the Caltech Object Machine.
//!
//! The COM uses caching "throughout … to achieve performance by accelerating
//! frequently used translations" (§3.1): the **ITLB** (opcode × operand
//! classes → method), the **ATLB** (virtual segment → absolute descriptor),
//! an **instruction cache**, a **context cache**, and every level of the
//! physical memory hierarchy treated as a cache of absolute space.
//!
//! This crate provides the generic machinery all of those share:
//!
//! * [`SetAssocCache`] — a key/value set-associative cache with configurable
//!   entry count, associativity, replacement policy, and indexing function;
//!   it records [`CacheStats`] with a warmup-aware reset (the paper ran "a
//!   warmup trace … before the measurement trace", §5).
//! * [`CacheConfig`] / [`Replacement`] — cache geometry and policy.
//! * [`MemoryHierarchy`] — a stack of cache levels in front of a backing
//!   store, each level "treated as a cache in which frequently accessed
//!   portions of absolute space may be stored" (§3.1).
//!
//! ```
//! use com_cache::{CacheConfig, SetAssocCache};
//!
//! # fn main() -> Result<(), com_cache::CacheError> {
//! let mut itlb: SetAssocCache<u32, &'static str> =
//!     SetAssocCache::new(CacheConfig::new(512, 2)?);
//! assert!(itlb.lookup(&7).is_none());      // compulsory miss
//! itlb.fill(7, "int+int -> add");
//! assert_eq!(itlb.lookup(&7), Some(&"int+int -> add"));
//! assert_eq!(itlb.stats().hits, 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod addrset;
mod cache;
mod config;
mod error;
mod flat;
mod fxhash;
mod hierarchy;
mod stats;

pub use addrset::AddrSet;
pub use cache::SetAssocCache;
pub use config::{CacheConfig, HashKind, Replacement};
pub use error::CacheError;
pub use flat::FlatCache;
pub use fxhash::{FxBuildHasher, FxHasher};
pub use hierarchy::{AccessOutcome, LevelSpec, MemoryHierarchy};
pub use stats::CacheStats;
