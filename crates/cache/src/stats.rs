//! Hit/miss accounting.

/// Access statistics for one cache.
///
/// The paper's methodology runs a *warmup trace* before the *measurement
/// trace* "to avoid biasing the results by the initial faulting in of data
/// into the caches" (§5); [`SetAssocCache::reset_stats`] implements the
/// boundary between the two without disturbing cache contents.
///
/// [`SetAssocCache::reset_stats`]: crate::SetAssocCache::reset_stats
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found their key.
    pub hits: u64,
    /// Lookups that did not find their key.
    pub misses: u64,
    /// Fills that displaced a valid line.
    pub evictions: u64,
    /// Total fills.
    pub fills: u64,
    /// Explicit invalidations that found a line.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; `None` before any access.
    pub fn hit_ratio(&self) -> Option<f64> {
        let n = self.accesses();
        if n == 0 {
            None
        } else {
            Some(self.hits as f64 / n as f64)
        }
    }

    /// Miss ratio in `[0, 1]`; `None` before any access.
    pub fn miss_ratio(&self) -> Option<f64> {
        self.hit_ratio().map(|h| 1.0 - h)
    }

    /// Component-wise difference (`self` minus an earlier `snapshot`).
    pub fn since(&self, snapshot: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - snapshot.hits,
            misses: self.misses - snapshot.misses,
            evictions: self.evictions - snapshot.evictions,
            fills: self.fills - snapshot.fills,
            invalidations: self.invalidations - snapshot.invalidations,
        }
    }
}

impl core::fmt::Display for CacheStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.hit_ratio() {
            Some(r) => write!(
                f,
                "{} accesses, {:.2}% hit ({} evictions)",
                self.accesses(),
                r * 100.0,
                self.evictions
            ),
            None => write!(f, "no accesses"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let s = CacheStats {
            hits: 99,
            misses: 1,
            ..CacheStats::default()
        };
        assert_eq!(s.accesses(), 100);
        assert!((s.hit_ratio().unwrap() - 0.99).abs() < 1e-12);
        assert!((s.miss_ratio().unwrap() - 0.01).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_ratio(), None);
    }

    #[test]
    fn since_subtracts() {
        let a = CacheStats {
            hits: 10,
            misses: 5,
            evictions: 1,
            fills: 5,
            invalidations: 0,
        };
        let b = CacheStats {
            hits: 25,
            misses: 9,
            evictions: 3,
            fills: 9,
            invalidations: 2,
        };
        let d = b.since(&a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 4);
        assert_eq!(d.evictions, 2);
        assert_eq!(d.invalidations, 2);
    }
}
