//! A presence-only set-associative cache over address keys, backed by flat
//! arrays — the hot-path sibling of [`SetAssocCache`](crate::SetAssocCache).
//!
//! The COM's instruction cache is probed once per simulated instruction; a
//! generic key/value cache with per-set `Vec`s and a hashing indexer is
//! measurable overhead there. `AddrSet` models exactly the same cache —
//! identical geometry semantics (`addr % sets` indexing, the configured
//! replacement policy, identical hit/miss/fill/eviction accounting as
//! [`SetAssocCache::with_indexer`] with the identity indexer) — but stores
//! only tags, in one flat allocation.

use crate::{CacheConfig, CacheStats, Replacement};

/// Sentinel tag for an invalid line. Word addresses in the COM are at most
/// 36-bit, so the all-ones tag can never collide with a real address.
const EMPTY: u64 = u64::MAX;

/// A presence set over `u64` address keys with set-associative geometry.
///
/// ```
/// use com_cache::{AddrSet, CacheConfig};
///
/// # fn main() -> Result<(), com_cache::CacheError> {
/// let mut ic = AddrSet::new(CacheConfig::new(4096, 2)?);
/// assert!(!ic.lookup(0x40));     // compulsory miss
/// ic.fill(0x40);
/// assert!(ic.lookup(0x40));
/// assert_eq!(ic.stats().hits, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AddrSet {
    config: CacheConfig,
    sets: usize,
    /// `sets - 1` when the set count is a power of two, else 0 (fall back
    /// to the modulo). `addr & mask == addr % sets` in the former case, so
    /// indexing is identical to `SetAssocCache` either way.
    mask: u64,
    ways: usize,
    tags: Vec<u64>,
    last_used: Vec<u64>,
    filled_at: Vec<u64>,
    clock: u64,
    rng: u64,
    stats: CacheStats,
}

impl AddrSet {
    /// Creates an empty set with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways();
        AddrSet {
            config,
            sets,
            mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                0
            },
            ways,
            tags: vec![EMPTY; sets * ways],
            last_used: vec![0; sets * ways],
            filled_at: vec![0; sets * ways],
            clock: 0,
            rng: config.seed(),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics accumulated since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters but keeps contents (warmup boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid lines currently resident.
    pub fn len(&self) -> usize {
        self.tags.iter().filter(|t| **t != EMPTY).count()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn set_base(&self, addr: u64) -> usize {
        let set = if self.mask != 0 {
            (addr & self.mask) as usize
        } else {
            (addr % self.sets as u64) as usize
        };
        set * self.ways
    }

    /// Probes for `addr`, recording a hit or miss and refreshing recency.
    #[inline]
    pub fn lookup(&mut self, addr: u64) -> bool {
        self.clock += 1;
        let base = self.set_base(addr);
        for w in 0..self.ways {
            if self.tags[base + w] == addr {
                self.last_used[base + w] = self.clock;
                self.stats.hits += 1;
                return true;
            }
        }
        self.stats.misses += 1;
        false
    }

    /// Inserts `addr`, evicting per the configured policy if the set is
    /// full. Returns the evicted address, if any.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        self.clock += 1;
        self.stats.fills += 1;
        let base = self.set_base(addr);
        for w in 0..self.ways {
            if self.tags[base + w] == addr {
                self.last_used[base + w] = self.clock;
                return None;
            }
        }
        for w in 0..self.ways {
            if self.tags[base + w] == EMPTY {
                self.tags[base + w] = addr;
                self.last_used[base + w] = self.clock;
                self.filled_at[base + w] = self.clock;
                return None;
            }
        }
        let victim = match self.config.replacement() {
            Replacement::Lru => (0..self.ways)
                .min_by_key(|w| self.last_used[base + w])
                .expect("ways >= 1"),
            Replacement::Fifo => (0..self.ways)
                .min_by_key(|w| self.filled_at[base + w])
                .expect("ways >= 1"),
            Replacement::Random => {
                // xorshift64* (same generator as SetAssocCache)
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % self.ways as u64) as usize
            }
        };
        self.stats.evictions += 1;
        let old = self.tags[base + victim];
        self.tags[base + victim] = addr;
        self.last_used[base + victim] = self.clock;
        self.filled_at[base + victim] = self.clock;
        Some(old)
    }

    /// Drops all contents (statistics are kept).
    pub fn clear(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = EMPTY);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SetAssocCache;

    fn cfg(entries: usize, ways: usize) -> CacheConfig {
        CacheConfig::new(entries, ways).unwrap()
    }

    #[test]
    fn hit_after_fill() {
        let mut c = AddrSet::new(cfg(8, 2));
        assert!(!c.lookup(1));
        c.fill(1);
        assert!(c.lookup(1));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflicts() {
        let mut c = AddrSet::new(cfg(2, 1));
        c.fill(0);
        assert_eq!(c.fill(2), Some(0), "0 evicted by conflicting 2");
        c.fill(1);
        assert!(c.lookup(1));
        assert!(c.lookup(2));
        assert!(!c.lookup(0));
    }

    #[test]
    fn matches_set_assoc_cache_access_for_access() {
        // The architectural contract: identical hit/miss/eviction stats to
        // SetAssocCache with the identity indexer, on an arbitrary
        // reference stream with reuse and conflicts.
        let mut a = AddrSet::new(cfg(16, 2));
        let mut b: SetAssocCache<u64, ()> = SetAssocCache::with_indexer(cfg(16, 2), |k| *k);
        let mut x: u64 = 12345;
        for i in 0..10_000u64 {
            // Mix a hot working set with a sweeping stream.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = if i % 3 == 0 { i % 24 } else { x % 64 };
            let ha = a.lookup(addr);
            let hb = b.lookup(&addr).is_some();
            assert_eq!(ha, hb, "divergence at access {i} addr {addr}");
            if !ha {
                a.fill(addr);
                b.fill(addr, ());
            }
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn clear_keeps_stats() {
        let mut c = AddrSet::new(cfg(4, 4));
        c.fill(9);
        c.lookup(9);
        c.clear();
        assert!(!c.lookup(9));
        assert_eq!(c.stats().hits, 1);
        assert!(c.is_empty());
    }
}
