//! A flat-array set-associative cache for hot-path key/value translation.
//!
//! Same architectural semantics as [`SetAssocCache`](crate::SetAssocCache)
//! — configured geometry, per-set replacement policy, hit/miss/fill/
//! eviction accounting — but all lines live in one flat allocation, the
//! set index comes from the [`FxHasher`](crate::FxHasher) fold instead of
//! SipHash, and the ways of a set are probed in place. Use it for caches
//! probed on (nearly) every simulated instruction or memory reference:
//! the ATLB, and any future per-access translation structure.

use std::hash::{Hash, Hasher};

use crate::{CacheConfig, CacheStats, FxHasher, Replacement};

#[derive(Debug, Clone)]
struct FlatLine<K, V> {
    key: K,
    value: V,
    /// Monotonic counter value at last use (LRU) …
    last_used: u64,
    /// … and at fill time (FIFO).
    filled_at: u64,
}

/// A set-associative key/value cache in one flat allocation.
///
/// ```
/// use com_cache::{CacheConfig, FlatCache};
///
/// # fn main() -> Result<(), com_cache::CacheError> {
/// let mut atlb: FlatCache<(u16, u64), u64> = FlatCache::new(CacheConfig::new(64, 2)?);
/// assert!(atlb.lookup(&(0, 7)).is_none());
/// atlb.fill((0, 7), 0x4000);
/// assert_eq!(atlb.lookup(&(0, 7)), Some(&0x4000));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct FlatCache<K, V> {
    config: CacheConfig,
    sets: usize,
    /// `sets - 1` when the set count is a power of two, else 0 (fall back
    /// to the modulo).
    mask: u64,
    ways: usize,
    lines: Vec<Option<FlatLine<K, V>>>,
    clock: u64,
    rng: u64,
    stats: CacheStats,
}

impl<K: Copy + Eq + Hash, V> FlatCache<K, V> {
    /// Creates an empty cache with the given geometry.
    pub fn new(config: CacheConfig) -> Self {
        let sets = config.sets();
        let ways = config.ways();
        let mut lines = Vec::new();
        lines.resize_with(sets * ways, || None);
        FlatCache {
            config,
            sets,
            mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                0
            },
            ways,
            lines,
            clock: 0,
            rng: config.seed(),
            stats: CacheStats::default(),
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Statistics accumulated since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears counters but keeps contents (warmup boundary).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Number of valid lines currently resident.
    pub fn len(&self) -> usize {
        self.lines.iter().filter(|l| l.is_some()).count()
    }

    /// Whether no lines are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn set_base(&self, key: &K) -> usize {
        let mut h = FxHasher::default();
        key.hash(&mut h);
        let h = h.finish();
        let set = if self.mask != 0 {
            (h & self.mask) as usize
        } else {
            (h % self.sets as u64) as usize
        };
        set * self.ways
    }

    /// Looks `key` up, recording a hit or miss and refreshing recency.
    #[inline]
    pub fn lookup(&mut self, key: &K) -> Option<&V> {
        self.clock += 1;
        let base = self.set_base(key);
        let mut hit = None;
        for w in 0..self.ways {
            if let Some(l) = &self.lines[base + w] {
                if l.key == *key {
                    hit = Some(base + w);
                    break;
                }
            }
        }
        match hit {
            Some(i) => {
                self.stats.hits += 1;
                let l = self.lines[i].as_mut().expect("hit line is valid");
                l.last_used = self.clock;
                Some(&self.lines[i].as_ref().expect("hit line is valid").value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts `key → value`, evicting per policy if the set is full.
    /// Returns the evicted pair, if any. Filling an already-present key
    /// replaces its value in place (no eviction).
    pub fn fill(&mut self, key: K, value: V) -> Option<(K, V)> {
        self.clock += 1;
        self.stats.fills += 1;
        let base = self.set_base(&key);
        for w in 0..self.ways {
            if let Some(l) = &mut self.lines[base + w] {
                if l.key == key {
                    l.value = value;
                    l.last_used = self.clock;
                    return None;
                }
            }
        }
        for w in 0..self.ways {
            if self.lines[base + w].is_none() {
                self.lines[base + w] = Some(FlatLine {
                    key,
                    value,
                    last_used: self.clock,
                    filled_at: self.clock,
                });
                return None;
            }
        }
        let victim = match self.config.replacement() {
            Replacement::Lru => (0..self.ways)
                .min_by_key(|w| {
                    self.lines[base + w]
                        .as_ref()
                        .expect("set is full")
                        .last_used
                })
                .expect("ways >= 1"),
            Replacement::Fifo => (0..self.ways)
                .min_by_key(|w| {
                    self.lines[base + w]
                        .as_ref()
                        .expect("set is full")
                        .filled_at
                })
                .expect("ways >= 1"),
            Replacement::Random => {
                // xorshift64* (same generator as SetAssocCache)
                self.rng ^= self.rng << 13;
                self.rng ^= self.rng >> 7;
                self.rng ^= self.rng << 17;
                (self.rng % self.ways as u64) as usize
            }
        };
        self.stats.evictions += 1;
        let old = self.lines[base + victim].replace(FlatLine {
            key,
            value,
            last_used: self.clock,
            filled_at: self.clock,
        });
        old.map(|l| (l.key, l.value))
    }

    /// Removes `key` if present, returning its value.
    pub fn invalidate(&mut self, key: &K) -> Option<V> {
        let base = self.set_base(key);
        for w in 0..self.ways {
            if matches!(&self.lines[base + w], Some(l) if l.key == *key) {
                self.stats.invalidations += 1;
                return self.lines[base + w].take().map(|l| l.value);
            }
        }
        None
    }

    /// Drops all contents (statistics are kept).
    pub fn clear(&mut self) {
        self.lines.iter_mut().for_each(|l| *l = None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(entries: usize, ways: usize) -> CacheConfig {
        CacheConfig::new(entries, ways).unwrap()
    }

    #[test]
    fn hit_after_fill_and_invalidate() {
        let mut c: FlatCache<u64, u64> = FlatCache::new(cfg(8, 2));
        assert_eq!(c.lookup(&1), None);
        c.fill(1, 10);
        assert_eq!(c.lookup(&1), Some(&10));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.invalidate(&1), Some(10));
        assert_eq!(c.lookup(&1), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn refill_replaces_in_place() {
        let mut c: FlatCache<u64, u64> = FlatCache::new(cfg(2, 2));
        c.fill(1, 10);
        assert_eq!(c.fill(1, 20), None);
        assert_eq!(c.lookup(&1), Some(&20));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    fn lru_evicts_least_recent_in_full_set() {
        // Fully associative, 2 entries.
        let mut c: FlatCache<u64, ()> = FlatCache::new(cfg(2, 2));
        c.fill(1, ());
        c.fill(2, ());
        c.lookup(&1); // 1 more recent than 2
        let evicted = c.fill(3, ());
        assert_eq!(evicted, Some((2, ())));
        assert!(c.lookup(&1).is_some());
        assert!(c.lookup(&3).is_some());
    }

    #[test]
    fn tuple_keys_work() {
        let mut c: FlatCache<(u16, u64), u64> = FlatCache::new(cfg(64, 2));
        for i in 0..100u64 {
            c.fill((1, i), i * 2);
        }
        let mut present = 0;
        for i in 0..100u64 {
            if c.lookup(&(1, i)) == Some(&(i * 2)) {
                present += 1;
            }
        }
        assert!(present >= 50, "only {present} survived in a 64-entry cache");
        assert!(c.len() <= 64);
    }
}
