//! Property-based tests for cache-simulator invariants.

use com_cache::{CacheConfig, Replacement, SetAssocCache};
use proptest::prelude::*;

fn run_trace(entries: usize, ways: usize, trace: &[u64]) -> (u64, u64) {
    let mut c: SetAssocCache<u64, ()> =
        SetAssocCache::with_indexer(CacheConfig::new(entries, ways).unwrap(), |k| *k);
    for &k in trace {
        if c.lookup(&k).is_none() {
            c.fill(k, ());
        }
    }
    (c.stats().hits, c.stats().misses)
}

proptest! {
    /// LRU inclusion: with the number of sets fixed, adding ways never
    /// increases misses on any trace (the classic stack property applied
    /// per set).
    #[test]
    fn lru_ways_monotone(trace in prop::collection::vec(0u64..64, 1..600)) {
        let sets = 4;
        let (_, m1) = run_trace(sets, 1, &trace);
        let (_, m2) = run_trace(sets * 2, 2, &trace);
        let (_, m4) = run_trace(sets * 4, 4, &trace);
        prop_assert!(m2 <= m1, "2-way missed more than 1-way: {m2} > {m1}");
        prop_assert!(m4 <= m2, "4-way missed more than 2-way: {m4} > {m2}");
    }

    /// A fully associative LRU cache of N entries never misses on a key
    /// that is among the N most recently used distinct keys.
    #[test]
    fn fully_assoc_working_set(n in 1usize..16, reps in 1usize..8) {
        let mut c: SetAssocCache<u64, ()> =
            SetAssocCache::new(CacheConfig::fully_associative(n).unwrap());
        // Cycle over exactly n keys: after the first pass, every access hits.
        for _ in 0..=reps {
            for k in 0..n as u64 {
                if c.lookup(&k).is_none() {
                    c.fill(k, ());
                }
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.misses, n as u64, "only compulsory misses expected");
        prop_assert_eq!(s.hits, ((reps + 1) * n) as u64 - n as u64);
    }

    /// Occupancy never exceeds capacity, and every filled key is either
    /// resident or was evicted (conservation).
    #[test]
    fn occupancy_bounded(
        entries_pow in 1u32..6,
        ways_pow in 0u32..3,
        trace in prop::collection::vec(0u64..256, 1..400),
    ) {
        let ways = 1usize << ways_pow;
        let entries = (1usize << entries_pow) * ways;
        let mut c: SetAssocCache<u64, ()> =
            SetAssocCache::new(CacheConfig::new(entries, ways).unwrap());
        let mut evicted = 0u64;
        let mut filled = std::collections::HashSet::new();
        for &k in &trace {
            if c.lookup(&k).is_none() && c.fill(k, ()).is_some() {
                evicted += 1;
            }
            filled.insert(k);
        }
        prop_assert!(c.len() <= entries);
        prop_assert_eq!(c.len() as u64 + evicted, c.stats().fills - duplicate_fills(&c));
        // every resident key was filled at some point
        for (k, _) in c.iter() {
            prop_assert!(filled.contains(k));
        }
    }

    /// Stats identities: accesses = hits + misses; hit_ratio ∈ [0, 1].
    #[test]
    fn stats_identities(trace in prop::collection::vec(0u64..32, 1..200)) {
        let mut c: SetAssocCache<u64, ()> =
            SetAssocCache::new(CacheConfig::new(8, 2).unwrap());
        for &k in &trace {
            if c.lookup(&k).is_none() {
                c.fill(k, ());
            }
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses(), trace.len() as u64);
        let r = s.hit_ratio().unwrap();
        prop_assert!((0.0..=1.0).contains(&r));
    }

    /// All three replacement policies keep the cache consistent (resident
    /// keys always return their own value).
    #[test]
    fn value_integrity(
        policy in prop::sample::select(vec![
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::Random,
        ]),
        trace in prop::collection::vec(0u64..64, 1..300),
    ) {
        let cfg = CacheConfig::new(16, 4).unwrap().with_replacement(policy);
        let mut c: SetAssocCache<u64, u64> = SetAssocCache::new(cfg);
        for &k in &trace {
            match c.lookup(&k) {
                Some(v) => prop_assert_eq!(*v, k * 31),
                None => {
                    c.fill(k, k * 31);
                }
            }
        }
    }
}

/// In these traces we never refill a resident key, so duplicate fills are 0;
/// kept as a named helper to make the conservation identity readable.
fn duplicate_fills<V>(_c: &SetAssocCache<u64, V>) -> u64 {
    0
}
