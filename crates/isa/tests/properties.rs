//! Property-based tests for instruction encoding invariants.

use com_isa::{Instr, IsaError, Opcode, Operand};
use proptest::prelude::*;

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..=63).prop_map(Operand::Cur),
        (0u8..=63).prop_map(Operand::Next),
        (0u8..=127).prop_map(Operand::Const),
    ]
}

fn arb_src_operand() -> impl Strategy<Value = Operand> {
    arb_operand()
}

fn arb_dst_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        (0u8..=63).prop_map(Operand::Cur),
        (0u8..=63).prop_map(Operand::Next),
    ]
}

proptest! {
    /// Every constructible three-address instruction round-trips through
    /// its 36-bit encoding.
    #[test]
    fn three_address_roundtrip(
        op in 0u16..=0x3FF,
        ret in any::<bool>(),
        a in arb_dst_operand(),
        b in arb_src_operand(),
        c in arb_src_operand(),
    ) {
        let i = Instr::three_ret(Opcode(op), a, b, c, ret).expect("valid");
        let encoded = i.encode();
        prop_assert!(encoded < (1 << 36), "payload exceeds 36 bits");
        prop_assert_eq!(Instr::decode(encoded).expect("decodes"), i);
    }

    /// Zero-address instructions round-trip for all selectors and arities.
    #[test]
    fn zero_address_roundtrip(op in 0u16..=0x3FF, nargs in 0u8..=2, ret in any::<bool>()) {
        let i = Instr::zero(Opcode(op), nargs, ret).expect("valid");
        prop_assert_eq!(Instr::decode(i.encode()).expect("decodes"), i);
    }

    /// Decoding is total over valid payloads and never panics over
    /// arbitrary 36-bit patterns; when it succeeds, re-encoding the decoded
    /// instruction reproduces the bits (decode is a partial inverse).
    #[test]
    fn decode_never_panics_and_reencodes(raw in 0u64..(1 << 36)) {
        if let Ok(i) = Instr::decode(raw) {
            prop_assert_eq!(i.encode(), raw);
        }
    }

    /// Payloads above 36 bits are always rejected.
    #[test]
    fn wide_payloads_rejected(raw in (1u64 << 36)..u64::MAX) {
        prop_assert!(matches!(Instr::decode(raw), Err(IsaError::BadEncoding(_))));
    }

    /// A constant in the destination slot is rejected for every opcode.
    #[test]
    fn const_destination_always_rejected(
        op in 0u16..=0x3FF,
        k in 0u8..=127,
        b in arb_src_operand(),
        c in arb_src_operand(),
    ) {
        let rejected = matches!(
            Instr::three(Opcode(op), Operand::Const(k), b, c),
            Err(IsaError::MisplacedConstant { position: 0 })
        );
        prop_assert!(rejected);
    }

    /// `sources()` and `destination()` are consistent with the operand
    /// fields: sources are exactly B and C; the destination is A except
    /// for jumps and stores.
    #[test]
    fn source_destination_contract(
        op in 0u16..=0x3FF,
        a in arb_dst_operand(),
        b in arb_src_operand(),
        c in arb_src_operand(),
    ) {
        let i = Instr::three(Opcode(op), a, b, c).expect("valid");
        prop_assert_eq!(i.sources(), vec![b, c]);
        let opc = Opcode(op);
        if opc == Opcode::FJMP || opc == Opcode::RJMP || opc == Opcode::ATPUT {
            prop_assert_eq!(i.destination(), None);
        } else {
            prop_assert_eq!(i.destination(), Some(a));
        }
    }

    /// Operand descriptors round-trip through their byte encoding for all
    /// 256 values (exhaustive via proptest shrink coverage).
    #[test]
    fn operand_byte_roundtrip(byte in any::<u8>()) {
        prop_assert_eq!(Operand::decode(byte).encode(), byte);
    }
}
