//! A small assembler producing storable code objects.
//!
//! "Compilation [is] a simple matter of assembling opcodes" (§2.1). The
//! assembler resolves forward/backward jumps into `fjmp`/`rjmp`
//! displacements, interns method literals into the constant table (§3.4's
//! constant generator is loaded per method), and lays the result out as a
//! code segment in absolute space.

use com_mem::{AllocKind, ClassId, MemError, ObjectSpace, TeamId, Word};

use crate::{Instr, IsaError, Opcode, Operand};

/// A forward-referencable jump target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// One assembled method: instructions plus its literal (constant) table.
///
/// Code objects are stored in memory with the layout
///
/// ```text
/// word 0            Int(n_instrs)
/// word 1            Int(n_args)
/// word 2            Int(n_consts)
/// word 3 ..         instruction words
/// word 3+n_instrs.. constant words
/// ```
///
/// so the machine fetches instruction `pc` at `base + HEADER + pc` and
/// constant `k` at `base + HEADER + n_instrs + k`.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeObject {
    /// Diagnostic name (class ≫ selector).
    pub name: String,
    /// Number of declared arguments (receiver included as arg 1).
    pub n_args: u8,
    /// The instruction stream.
    pub instrs: Vec<Instr>,
    /// The method's constant table ("short integers, bit fields … and the
    /// objects true, false, and nil", §3.4).
    pub consts: Vec<Word>,
}

impl CodeObject {
    /// Words of header before the instruction stream.
    pub const HEADER_WORDS: u64 = 3;

    /// Total words this object occupies in memory.
    pub fn size_words(&self) -> u64 {
        Self::HEADER_WORDS + self.instrs.len() as u64 + self.consts.len() as u64
    }

    /// Stores the code object into `space`, returning its base capability.
    ///
    /// # Errors
    ///
    /// Propagates allocation and write errors.
    pub fn store(&self, space: &mut ObjectSpace, team: TeamId) -> Result<com_fpa::Fpa, MemError> {
        let mut words = Vec::with_capacity(self.size_words() as usize);
        words.push(Word::Int(self.instrs.len() as i64));
        words.push(Word::Int(self.n_args as i64));
        words.push(Word::Int(self.consts.len() as i64));
        words.extend(self.instrs.iter().map(|i| Word::Instr(i.encode())));
        words.extend_from_slice(&self.consts);
        // One pad word so a return continuation after the final instruction
        // (`pc == n_instrs`) is still encodable within the segment. It is
        // never written (reads as Uninit), exactly like the word-by-word
        // store it replaces.
        space.create_filled(
            team,
            ClassId::INSTR,
            self.size_words() + 1,
            AllocKind::Code,
            &words,
        )
    }
}

/// Pending instruction: either final or an unresolved jump.
#[derive(Debug, Clone)]
enum Pending {
    Ready(Instr),
    Jump {
        cond: Operand,
        label: Label,
        ret: bool,
    },
}

/// The assembler: emit instructions, bind labels, intern constants, finish.
///
/// ```
/// use com_isa::{Assembler, Opcode, Operand};
/// use com_mem::Word;
///
/// # fn main() -> Result<(), com_isa::IsaError> {
/// let mut asm = Assembler::new("demo", 1);
/// let k1 = asm.intern_const(Word::Int(1));
/// // c4 <- c3 + 1
/// asm.emit_three(Opcode::ADD, Operand::Cur(4), Operand::Cur(3), Operand::Const(k1))?;
/// let code = asm.finish()?;
/// assert_eq!(code.instrs.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Assembler {
    name: String,
    n_args: u8,
    instrs: Vec<Pending>,
    consts: Vec<Word>,
    labels: Vec<Option<usize>>,
}

impl Assembler {
    /// Starts assembling a method called `name` taking `n_args` arguments.
    pub fn new(name: impl Into<String>, n_args: u8) -> Self {
        Assembler {
            name: name.into(),
            n_args,
            instrs: Vec::new(),
            consts: Vec::new(),
            labels: Vec::new(),
        }
    }

    /// Index of the next instruction to be emitted.
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Interns a constant, deduplicating, and returns its table index.
    ///
    /// # Panics
    ///
    /// Panics if the method needs more than 128 distinct constants (the
    /// 7-bit field limit — a compiler-visible architectural constraint).
    pub fn intern_const(&mut self, w: Word) -> u8 {
        if let Some(i) = self.consts.iter().position(|c| *c == w) {
            return i as u8;
        }
        assert!(
            self.consts.len() <= Operand::MAX_CONST as usize,
            "constant table overflow in {}",
            self.name
        );
        self.consts.push(w);
        (self.consts.len() - 1) as u8
    }

    /// Emits a finished instruction.
    pub fn emit(&mut self, i: Instr) {
        self.instrs.push(Pending::Ready(i));
    }

    /// Builds and emits a three-address instruction.
    ///
    /// # Errors
    ///
    /// Propagates [`Instr::three`] validation errors.
    pub fn emit_three(
        &mut self,
        op: Opcode,
        a: Operand,
        b: Operand,
        c: Operand,
    ) -> Result<(), IsaError> {
        self.emit(Instr::three(op, a, b, c)?);
        Ok(())
    }

    /// Builds and emits a three-address instruction with the return bit.
    ///
    /// # Errors
    ///
    /// Propagates [`Instr::three_ret`] validation errors.
    pub fn emit_three_ret(
        &mut self,
        op: Opcode,
        a: Operand,
        b: Operand,
        c: Operand,
    ) -> Result<(), IsaError> {
        self.emit(Instr::three_ret(op, a, b, c, true)?);
        Ok(())
    }

    /// Builds and emits a zero-address instruction.
    ///
    /// # Errors
    ///
    /// Propagates [`Instr::zero`] validation errors.
    pub fn emit_zero(&mut self, op: Opcode, nargs: u8, ret: bool) -> Result<(), IsaError> {
        self.emit(Instr::zero(op, nargs, ret)?);
        Ok(())
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the next instruction index.
    pub fn bind(&mut self, label: Label) {
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Emits a conditional jump to `label`: taken when `cond` is true.
    /// Direction (`fjmp` vs `rjmp`) is chosen when the label resolves.
    pub fn jump_if(&mut self, cond: Operand, label: Label) {
        self.instrs.push(Pending::Jump {
            cond,
            label,
            ret: false,
        });
    }

    /// Emits an unconditional jump to `label` (condition = the constant
    /// `true`).
    pub fn jump(&mut self, label: Label) {
        let t = self.intern_const(Word::from(true));
        self.instrs.push(Pending::Jump {
            cond: Operand::Const(t),
            label,
            ret: false,
        });
    }

    /// Finishes assembly, resolving all jumps.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UnresolvedLabel`] for labels never bound and
    /// [`IsaError::JumpTooFar`] for displacements beyond the constant range.
    pub fn finish(mut self) -> Result<CodeObject, IsaError> {
        // Resolve jumps: displacement measured from the *following*
        // instruction (the branch is delayed one cycle, §3.6, and the IP has
        // already advanced).
        let mut out = Vec::with_capacity(self.instrs.len());
        let mut jump_fixups = Vec::new();
        for (pc, p) in self.instrs.iter().enumerate() {
            match p {
                Pending::Ready(i) => out.push(*i),
                Pending::Jump { cond, label, ret } => {
                    let target = self.labels[label.0].ok_or(IsaError::UnresolvedLabel(label.0))?;
                    let disp = target as i64 - (pc as i64 + 1);
                    jump_fixups.push((pc, *cond, disp, *ret));
                    out.push(Instr::Zero {
                        op: Opcode::FJMP,
                        ret: *ret,
                        nargs: 0,
                    }); // placeholder, replaced below
                }
            }
        }
        for (pc, cond, disp, ret) in jump_fixups {
            let (op, magnitude) = if disp >= 0 {
                (Opcode::FJMP, disp)
            } else {
                (Opcode::RJMP, -disp)
            };
            let k = self.intern_const(Word::Int(magnitude));
            out[pc] = Instr::three_ret(op, Operand::Cur(0), cond, Operand::Const(k), ret)
                .map_err(|_| IsaError::JumpTooFar { displacement: disp })?;
        }
        Ok(CodeObject {
            name: self.name,
            n_args: self.n_args,
            instrs: out,
            consts: self.consts,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_fpa::FpaFormat;

    #[test]
    fn constants_deduplicate() {
        let mut a = Assembler::new("t", 0);
        let k1 = a.intern_const(Word::Int(5));
        let k2 = a.intern_const(Word::Int(5));
        let k3 = a.intern_const(Word::Int(6));
        assert_eq!(k1, k2);
        assert_ne!(k1, k3);
    }

    #[test]
    fn forward_jump_resolves_to_fjmp() {
        let mut a = Assembler::new("t", 0);
        let end = a.label();
        a.jump_if(Operand::Cur(4), end);
        a.emit_three(
            Opcode::ADD,
            Operand::Cur(5),
            Operand::Cur(5),
            Operand::Cur(5),
        )
        .unwrap();
        a.bind(end);
        a.emit_zero(Opcode::XFER, 0, true).unwrap();
        let code = a.finish().unwrap();
        match code.instrs[0] {
            Instr::Three { op, c, .. } => {
                assert_eq!(op, Opcode::FJMP);
                // displacement: target 2 - (0 + 1) = 1
                let Operand::Const(k) = c else {
                    panic!("const expected")
                };
                assert_eq!(code.consts[k as usize], Word::Int(1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn backward_jump_resolves_to_rjmp() {
        let mut a = Assembler::new("t", 0);
        let top = a.label();
        a.bind(top);
        a.emit_three(
            Opcode::ADD,
            Operand::Cur(5),
            Operand::Cur(5),
            Operand::Cur(5),
        )
        .unwrap();
        a.jump(top);
        let code = a.finish().unwrap();
        match code.instrs[1] {
            Instr::Three { op, c, .. } => {
                assert_eq!(op, Opcode::RJMP);
                // displacement: target 0 - (1 + 1) = -2 → magnitude 2
                let Operand::Const(k) = c else {
                    panic!("const expected")
                };
                assert_eq!(code.consts[k as usize], Word::Int(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unresolved_label_is_an_error() {
        let mut a = Assembler::new("t", 0);
        let l = a.label();
        a.jump(l);
        assert!(matches!(a.finish(), Err(IsaError::UnresolvedLabel(_))));
    }

    #[test]
    fn store_layout_roundtrips() {
        let mut a = Assembler::new("t", 2);
        let k = a.intern_const(Word::Int(99));
        a.emit_three(
            Opcode::MOVE,
            Operand::Cur(5),
            Operand::Cur(5),
            Operand::Const(k),
        )
        .unwrap();
        a.emit_zero(Opcode::XFER, 0, true).unwrap();
        let code = a.finish().unwrap();

        let mut space = ObjectSpace::new(20, FpaFormat::COM);
        let team = TeamId(0);
        let base = code.store(&mut space, team).unwrap();
        assert_eq!(space.read(team, base).unwrap(), Word::Int(2));
        assert_eq!(
            space.read(team, base.with_offset(1).unwrap()).unwrap(),
            Word::Int(2)
        );
        assert_eq!(
            space.read(team, base.with_offset(2).unwrap()).unwrap(),
            Word::Int(1)
        );
        let w = space
            .read(team, base.with_offset(CodeObject::HEADER_WORDS).unwrap())
            .unwrap();
        let decoded = Instr::decode(w.as_instr().unwrap()).unwrap();
        assert_eq!(decoded, code.instrs[0]);
        // constant follows the instruction stream
        let c = space
            .read(
                team,
                base.with_offset(CodeObject::HEADER_WORDS + 2).unwrap(),
            )
            .unwrap();
        assert_eq!(c, Word::Int(99));
    }
}
