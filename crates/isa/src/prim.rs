//! Primitive operations: the function-unit repertoire of §3.3.

use crate::Opcode;

/// A primitive machine operation — what the ITLB's method field selects
/// "if the primitive bit is on" (§2.1).
///
/// One `PrimOp` may serve several (opcode, class-signature) pairs: `Add`
/// backs `+` on `(int, int)`, `(float, float)` and the mixed modes; the
/// machine's function units dispatch on the actual operand tags at
/// execution. What makes instructions *safe* is that no signature outside
/// the installed table ever reaches a function unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Arithmetic add (int/int, float/float, mixed).
    Add,
    /// Arithmetic subtract.
    Sub,
    /// Arithmetic multiply.
    Mul,
    /// Arithmetic divide.
    Div,
    /// Integer modulo (int only, §3.3).
    Mod,
    /// Arithmetic negate.
    Neg,
    /// Carry of addition (multiple-precision support).
    Carry,
    /// Low word of double-width multiply.
    Mult1,
    /// High word of double-width multiply.
    Mult2,
    /// Logical shift (negative counts shift right).
    Shift,
    /// Arithmetic shift.
    AShift,
    /// Rotate within 32 bits.
    Rotate,
    /// Extract a bit field: `b mask: c` keeps the low `c` bits.
    Mask,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise not.
    Not,
    /// Bitwise xor.
    Xor,
    /// Compare less-than.
    Lt,
    /// Compare less-or-equal.
    Le,
    /// Compare equal (value).
    EqVal,
    /// Compare not-equal (value).
    NeVal,
    /// Compare greater-than.
    Gt,
    /// Compare greater-or-equal.
    Ge,
    /// Same-object identity comparison (all types).
    Same,
    /// Move a word (all types).
    Move,
    /// Move effective address (pass a pointer).
    Movea,
    /// Indexed load from an object.
    At,
    /// Indexed store into an object.
    AtPut,
    /// Retag a word (privileged).
    TagAs,
    /// Read a word's tag as a small integer.
    TagOf,
    /// Forward conditional jump.
    Fjmp,
    /// Backward conditional jump.
    Rjmp,
    /// Transfer control to the next context.
    Xfer,
    /// Allocate a fresh object (software allocation bottoms out here).
    New,
    /// Grow an object into a wider segment (§2.2 aliasing).
    Grow,
}

/// What a static analysis can know about a primitive operation's result
/// class without evaluating it — the per-operation half of the
/// class-inference transfer function (`com-verify`'s interprocedural tier).
///
/// The shapes mirror the function-unit semantics: arithmetic follows the
/// int/float mixed-mode rules, comparisons produce atoms (`true`/`false`),
/// moves copy their operand's class, and the two escape hatches (`At` on
/// arbitrary memory, privileged retagging) admit any class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResultShape {
    /// Always a `SmallInteger` (bit fields, tags, multiple precision).
    Int,
    /// Always an atom — the comparisons produce `true`/`false`.
    Boolean,
    /// `SmallInteger` or `Float` by the mixed-mode rule: int×int→int,
    /// any float operand→float.
    Numeric,
    /// The same class as the B operand (negate, grow-in-place).
    OfB,
    /// The same class as the C operand (move).
    OfC,
    /// A pointer to an object; `New` tags it with the allocated class,
    /// `Movea` with the context class.
    Pointer,
    /// No data result (jumps, transfer, indexed store).
    None,
    /// Statically unknowable: any class (indexed load, privileged retag).
    Dynamic,
}

impl PrimOp {
    /// The standard opcode ↔ primitive-operation pairing for the machine's
    /// bootstrap: which `PrimOp` implements each standard selector.
    pub fn for_opcode(op: Opcode) -> Option<PrimOp> {
        Some(match op {
            Opcode::ADD => PrimOp::Add,
            Opcode::SUB => PrimOp::Sub,
            Opcode::MUL => PrimOp::Mul,
            Opcode::DIV => PrimOp::Div,
            Opcode::MOD => PrimOp::Mod,
            Opcode::NEG => PrimOp::Neg,
            Opcode::CARRY => PrimOp::Carry,
            Opcode::MULT1 => PrimOp::Mult1,
            Opcode::MULT2 => PrimOp::Mult2,
            Opcode::SHIFT => PrimOp::Shift,
            Opcode::ASHIFT => PrimOp::AShift,
            Opcode::ROTATE => PrimOp::Rotate,
            Opcode::MASK => PrimOp::Mask,
            Opcode::AND => PrimOp::And,
            Opcode::OR => PrimOp::Or,
            Opcode::NOT => PrimOp::Not,
            Opcode::XOR => PrimOp::Xor,
            Opcode::LT => PrimOp::Lt,
            Opcode::LE => PrimOp::Le,
            Opcode::EQ => PrimOp::EqVal,
            Opcode::NE => PrimOp::NeVal,
            Opcode::GT => PrimOp::Gt,
            Opcode::GE => PrimOp::Ge,
            Opcode::SAME => PrimOp::Same,
            Opcode::MOVE => PrimOp::Move,
            Opcode::MOVEA => PrimOp::Movea,
            Opcode::AT => PrimOp::At,
            Opcode::ATPUT => PrimOp::AtPut,
            Opcode::AS => PrimOp::TagAs,
            Opcode::TAG => PrimOp::TagOf,
            Opcode::FJMP => PrimOp::Fjmp,
            Opcode::RJMP => PrimOp::Rjmp,
            Opcode::XFER => PrimOp::Xfer,
            Opcode::NEW => PrimOp::New,
            Opcode::GROW => PrimOp::Grow,
            Opcode::RAWAT => PrimOp::At,
            Opcode::RAWATPUT => PrimOp::AtPut,
            _ => return None,
        })
    }

    /// Whether this operation accesses memory outside the contexts —
    /// §3.4: "Because memory access is restricted to these two instructions,
    /// the COM pipeline rarely has to wait for a memory cycle to complete."
    pub fn touches_memory(self) -> bool {
        matches!(
            self,
            PrimOp::At | PrimOp::AtPut | PrimOp::Movea | PrimOp::New | PrimOp::Grow
        )
    }

    /// Whether this operation redirects control flow.
    pub fn is_control(self) -> bool {
        matches!(self, PrimOp::Fjmp | PrimOp::Rjmp | PrimOp::Xfer)
    }

    /// The statically known shape of this operation's result — what a
    /// class-inference tier can conclude about the result's class without
    /// evaluating the operation (see [`ResultShape`]).
    pub fn result_shape(self) -> ResultShape {
        match self {
            PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div => ResultShape::Numeric,
            PrimOp::Neg => ResultShape::OfB,
            PrimOp::Mod
            | PrimOp::Carry
            | PrimOp::Mult1
            | PrimOp::Mult2
            | PrimOp::Shift
            | PrimOp::AShift
            | PrimOp::Rotate
            | PrimOp::Mask
            | PrimOp::And
            | PrimOp::Or
            | PrimOp::Not
            | PrimOp::Xor
            | PrimOp::TagOf => ResultShape::Int,
            PrimOp::Lt
            | PrimOp::Le
            | PrimOp::EqVal
            | PrimOp::NeVal
            | PrimOp::Gt
            | PrimOp::Ge
            | PrimOp::Same => ResultShape::Boolean,
            PrimOp::Move => ResultShape::OfC,
            PrimOp::Grow => ResultShape::OfB,
            PrimOp::Movea => ResultShape::Pointer,
            PrimOp::New => ResultShape::Pointer,
            PrimOp::Fjmp | PrimOp::Rjmp | PrimOp::Xfer | PrimOp::AtPut => ResultShape::None,
            PrimOp::At | PrimOp::TagAs => ResultShape::Dynamic,
        }
    }

    /// Whether this is a pure data operation: a function-unit result with
    /// no control or memory side effects — the set the engine's `data_op`
    /// evaluator (and the static verifier's constant folder) handles.
    pub fn is_pure_data(self) -> bool {
        !matches!(
            self,
            PrimOp::Fjmp
                | PrimOp::Rjmp
                | PrimOp::Xfer
                | PrimOp::At
                | PrimOp::AtPut
                | PrimOp::Movea
                | PrimOp::New
                | PrimOp::Grow
                | PrimOp::TagAs
        )
    }
}

impl core::fmt::Display for PrimOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_standard_opcode_has_a_primitive() {
        for &(op, _) in Opcode::standard() {
            assert!(PrimOp::for_opcode(op).is_some(), "no primitive for {op}");
        }
    }

    #[test]
    fn user_opcodes_have_no_primitive() {
        assert_eq!(PrimOp::for_opcode(Opcode(Opcode::USER_BASE)), None);
    }

    #[test]
    fn memory_restriction_matches_paper() {
        assert!(PrimOp::At.touches_memory());
        assert!(PrimOp::AtPut.touches_memory());
        assert!(!PrimOp::Add.touches_memory());
        assert!(!PrimOp::Move.touches_memory());
    }

    #[test]
    fn control_ops() {
        assert!(PrimOp::Fjmp.is_control());
        assert!(PrimOp::Xfer.is_control());
        assert!(!PrimOp::At.is_control());
    }

    #[test]
    fn result_shapes_follow_function_unit_semantics() {
        assert_eq!(PrimOp::Add.result_shape(), ResultShape::Numeric);
        assert_eq!(PrimOp::Lt.result_shape(), ResultShape::Boolean);
        assert_eq!(PrimOp::Mask.result_shape(), ResultShape::Int);
        assert_eq!(PrimOp::Move.result_shape(), ResultShape::OfC);
        assert_eq!(PrimOp::Neg.result_shape(), ResultShape::OfB);
        assert_eq!(PrimOp::New.result_shape(), ResultShape::Pointer);
        assert_eq!(PrimOp::Fjmp.result_shape(), ResultShape::None);
        assert_eq!(PrimOp::At.result_shape(), ResultShape::Dynamic);
    }

    #[test]
    fn pure_data_excludes_control_memory_and_privileged() {
        assert!(PrimOp::Add.is_pure_data());
        assert!(PrimOp::Move.is_pure_data());
        assert!(PrimOp::TagOf.is_pure_data());
        assert!(!PrimOp::Fjmp.is_pure_data());
        assert!(!PrimOp::At.is_pure_data());
        assert!(!PrimOp::New.is_pure_data());
        assert!(!PrimOp::TagAs.is_pure_data());
    }
}
