//! Operand descriptors: the two addressing modes of §3.4.

use crate::IsaError;

/// An 8-bit operand descriptor.
///
/// "Two addressing modes can be used in the operand descriptors of COM
/// instructions: *context* and *constant*. Context mode is used to access
/// the contents of the current and next contexts. … The constant mode can
/// only be used in the last operand descriptor of an instruction." (§3.4)
///
/// Encoding: bit 7 set → constant mode, bits 6..0 index the constant table;
/// bit 7 clear → context mode, bit 6 selects current (0) or next (1)
/// context, bits 5..0 are the positive word offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Word `offset` of the current context (CP-relative).
    Cur(u8),
    /// Word `offset` of the next context (NCP-relative).
    Next(u8),
    /// Entry `index` of the constant table — "frequently referenced
    /// constants including short integers, bit fields for byte insertion and
    /// the objects true, false, and nil".
    Const(u8),
}

impl Operand {
    /// Largest context offset (6-bit field; contexts are 32 words, so the
    /// field has headroom).
    pub const MAX_OFFSET: u8 = 63;
    /// Largest constant-table index (7-bit field).
    pub const MAX_CONST: u8 = 127;

    /// Encodes to the 8-bit descriptor.
    pub fn encode(self) -> u8 {
        match self {
            Operand::Cur(off) => off & 0x3F,
            Operand::Next(off) => 0x40 | (off & 0x3F),
            Operand::Const(idx) => 0x80 | (idx & 0x7F),
        }
    }

    /// Decodes an 8-bit descriptor.
    pub fn decode(byte: u8) -> Operand {
        if byte & 0x80 != 0 {
            Operand::Const(byte & 0x7F)
        } else if byte & 0x40 != 0 {
            Operand::Next(byte & 0x3F)
        } else {
            Operand::Cur(byte & 0x3F)
        }
    }

    /// Validates field ranges (useful when constructing from program text).
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::OperandOutOfRange`] if the offset or index does
    /// not fit its field.
    pub fn validated(self) -> Result<Operand, IsaError> {
        let ok = match self {
            Operand::Cur(o) | Operand::Next(o) => o <= Self::MAX_OFFSET,
            Operand::Const(i) => i <= Self::MAX_CONST,
        };
        if ok {
            Ok(self)
        } else {
            Err(IsaError::OperandOutOfRange(self))
        }
    }

    /// Whether this operand is constant mode (only legal in the last
    /// position, §3.4).
    pub fn is_const(self) -> bool {
        matches!(self, Operand::Const(_))
    }

    /// Whether this operand reads the next context.
    pub fn is_next(self) -> bool {
        matches!(self, Operand::Next(_))
    }
}

impl core::fmt::Display for Operand {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Operand::Cur(o) => write!(f, "c{o}"),
            Operand::Next(o) => write!(f, "n{o}"),
            Operand::Const(i) => write!(f, "k{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip_all_bytes() {
        for byte in 0..=255u8 {
            let op = Operand::decode(byte);
            assert_eq!(op.encode(), byte, "byte {byte:#x} did not roundtrip");
        }
    }

    #[test]
    fn mode_bits() {
        assert_eq!(Operand::Cur(5).encode(), 0x05);
        assert_eq!(Operand::Next(5).encode(), 0x45);
        assert_eq!(Operand::Const(5).encode(), 0x85);
    }

    #[test]
    fn validation_bounds() {
        assert!(Operand::Cur(63).validated().is_ok());
        assert!(Operand::Cur(64).validated().is_err());
        assert!(Operand::Const(127).validated().is_ok());
        assert!(Operand::Const(128).validated().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Operand::Cur(2).to_string(), "c2");
        assert_eq!(Operand::Next(3).to_string(), "n3");
        assert_eq!(Operand::Const(7).to_string(), "k7");
    }
}
