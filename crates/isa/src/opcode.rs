//! Opcodes: abstract instruction selectors.

use std::collections::HashMap;

/// A 10-bit opcode — simultaneously a machine opcode and a Smalltalk message
/// selector ("each instruction is a token whose meaning is determined in
/// conjunction with the Class of the instruction operand", §2.1).
///
/// Opcodes below [`Opcode::USER_BASE`] are the machine's standard selectors
/// (§3.3's primitive method families); the compiler interns user-defined
/// selectors above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Opcode(pub u16);

macro_rules! opcodes {
    ($($(#[$doc:meta])* $name:ident = $val:expr, $text:expr;)*) => {
        impl Opcode {
            $( $(#[$doc])* pub const $name: Opcode = Opcode($val); )*

            /// The printable name of a standard opcode, if it is one.
            pub fn standard_name(self) -> Option<&'static str> {
                match self.0 {
                    $( $val => Some($text), )*
                    _ => None,
                }
            }

            /// All standard opcodes with their names.
            pub fn standard() -> &'static [(Opcode, &'static str)] {
                &[ $( (Opcode($val), $text), )* ]
            }
        }
    };
}

opcodes! {
    // Arithmetic (§3.3): "defined for small integer and (except for modulo)
    // for floating point. Some mixed mode instructions are primitive."
    /// Addition (`+`).
    ADD = 0, "+";
    /// Subtraction (`-`).
    SUB = 1, "-";
    /// Multiplication (`*`).
    MUL = 2, "*";
    /// Division (`/`).
    DIV = 3, "/";
    /// Modulo (small integers only).
    MOD = 4, "\\\\";
    /// Negation.
    NEG = 5, "negated";

    // Multiple precision support: "Carry, Mult1, Mult2 … allow multiple
    // precision integer arithmetic to be implemented without flags."
    /// Carry of an addition.
    CARRY = 6, "carry:";
    /// Low word of a double-width multiply.
    MULT1 = 7, "mult1:";
    /// High word of a double-width multiply.
    MULT2 = 8, "mult2:";

    // Logical and bit field instructions.
    /// Logical shift.
    SHIFT = 9, "shift:";
    /// Arithmetic shift.
    ASHIFT = 10, "ashift:";
    /// Rotate.
    ROTATE = 11, "rotate:";
    /// Bit-field mask.
    MASK = 12, "mask:";
    /// Bitwise and.
    AND = 13, "bitAnd:";
    /// Bitwise or.
    OR = 14, "bitOr:";
    /// Bitwise not.
    NOT = 15, "bitNot";
    /// Bitwise xor.
    XOR = 16, "bitXor:";

    // Comparisons: "All comparisons are defined for small integer and
    // floating point. The ~ (same object) comparison is defined for all
    // types."
    /// Less than.
    LT = 17, "<";
    /// Less than or equal.
    LE = 18, "<=";
    /// Equal (value).
    EQ = 19, "=";
    /// Not equal (value).
    NE = 20, "~=";
    /// Greater than.
    GT = 21, ">";
    /// Greater than or equal.
    GE = 22, ">=";
    /// Same object (identity); defined for all types.
    SAME = 23, "==";

    // Move instructions.
    /// Move a word (defined for all types).
    MOVE = 24, "move";
    /// Move effective address — "calculates the effective address of an
    /// object and is used to pass pointers."
    MOVEA = 25, "movea";
    /// Indexed load: `a <- b at: c` (§3.4).
    AT = 26, "at:";
    /// Indexed store: `a at: b put: c` (§3.4).
    ATPUT = 27, "at:put:";

    // Tag access: "The as instruction is conditionally privileged to
    // prevent the forging of virtual addresses."
    /// Retag a word (privileged).
    AS = 28, "as:";
    /// Read a word's tag.
    TAG = 29, "tag";

    // Control: "The jump instructions jump within a method … The xfer
    // instruction transfers to the next context."
    /// Forward conditional jump.
    FJMP = 30, "fjmp";
    /// Backward conditional jump.
    RJMP = 31, "rjmp";
    /// General control transfer to the next context (Lampson XFER, §5).
    XFER = 32, "xfer";

    // Allocation support. The paper keeps storage management in software
    // ("higher level operating system functions … are not tied down in
    // hardware", §3) but its workloads allocate constantly; these two
    // selectors are the machine-level primitives the allocation software
    // bottoms out in. Documented as a deviation in DESIGN.md.
    /// Allocate an object: `a <- new(class_id: b, words: c)`.
    NEW = 33, "basicNew:";
    /// Grow an object (§2.2 aliasing): `a <- grow(obj: b, words: c)`.
    GROW = 34, "grow:";
    /// Raw indexed load: identical function unit to `at:` under a selector
    /// user classes never override (the standard library's storage
    /// accessors bottom out here).
    RAWAT = 35, "rawAt:";
    /// Raw indexed store (see [`Opcode::RAWAT`]).
    RAWATPUT = 36, "rawAt:put:";
}

impl Opcode {
    /// Largest encodable opcode (10-bit field).
    pub const MAX: u16 = 0x3FF;

    /// First opcode available for user-defined selectors.
    pub const USER_BASE: u16 = 64;

    /// Whether this opcode is in the user selector space.
    pub fn is_user(self) -> bool {
        self.0 >= Self::USER_BASE
    }
}

impl core::fmt::Display for Opcode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.standard_name() {
            Some(n) => f.write_str(n),
            None => write!(f, "sel#{}", self.0),
        }
    }
}

/// Interning table mapping selector names to opcodes.
///
/// The compiler uses one of these so that "compilation \[is\] a simple matter
/// of assembling opcodes" (§2.1): a source-level message send *is* an
/// opcode.
#[derive(Debug, Clone)]
pub struct OpcodeTable {
    names: HashMap<String, Opcode>,
    by_op: HashMap<Opcode, String>,
    next: u16,
}

impl OpcodeTable {
    /// Creates a table pre-loaded with the standard opcodes.
    pub fn new() -> Self {
        let mut t = OpcodeTable {
            names: HashMap::new(),
            by_op: HashMap::new(),
            next: Opcode::USER_BASE,
        };
        for &(op, name) in Opcode::standard() {
            t.names.insert(name.to_string(), op);
            t.by_op.insert(op, name.to_string());
        }
        t
    }

    /// Interns `name`, allocating a fresh user opcode if unseen.
    ///
    /// # Panics
    ///
    /// Panics if the 10-bit selector space (1024 entries) is exhausted —
    /// a program with >960 distinct selectors exceeds the architecture.
    pub fn intern(&mut self, name: &str) -> Opcode {
        if let Some(op) = self.names.get(name) {
            return *op;
        }
        assert!(
            self.next <= Opcode::MAX,
            "selector space exhausted interning {name:?}"
        );
        let op = Opcode(self.next);
        self.next += 1;
        self.names.insert(name.to_string(), op);
        self.by_op.insert(op, name.to_string());
        op
    }

    /// Looks up an already-interned selector.
    pub fn get(&self, name: &str) -> Option<Opcode> {
        self.names.get(name).copied()
    }

    /// The name of an opcode, if known.
    pub fn name(&self, op: Opcode) -> Option<&str> {
        self.by_op.get(&op).map(String::as_str)
    }

    /// Whether `op` is interned — a standard selector or one this table
    /// allocated. Static verification uses this to reject code words whose
    /// opcode field names a selector no source ever mentioned.
    pub fn contains(&self, op: Opcode) -> bool {
        self.by_op.contains_key(&op)
    }

    /// Iterates all interned opcodes with their selector names, in no
    /// particular order.
    pub fn iter(&self) -> impl Iterator<Item = (Opcode, &str)> {
        self.by_op.iter().map(|(op, name)| (*op, name.as_str()))
    }

    /// Number of interned selectors (standard + user).
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty (never: standard opcodes are preloaded).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

impl Default for OpcodeTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_opcodes_are_stable() {
        assert_eq!(Opcode::ADD, Opcode(0));
        assert_eq!(Opcode::XFER, Opcode(32));
        assert_eq!(Opcode::ADD.standard_name(), Some("+"));
        assert_eq!(Opcode(500).standard_name(), None);
    }

    #[test]
    fn interning_is_idempotent_and_fresh() {
        let mut t = OpcodeTable::new();
        let a = t.intern("foo:");
        let b = t.intern("foo:");
        let c = t.intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.is_user());
        assert_eq!(t.name(a), Some("foo:"));
    }

    #[test]
    fn standard_names_resolve() {
        let t = OpcodeTable::new();
        assert_eq!(t.get("+"), Some(Opcode::ADD));
        assert_eq!(t.get("at:put:"), Some(Opcode::ATPUT));
        assert_eq!(t.get("nonexistent"), None);
    }

    #[test]
    fn contains_tracks_interning() {
        let mut t = OpcodeTable::new();
        assert!(t.contains(Opcode::ADD));
        assert!(t.contains(Opcode::RAWATPUT));
        // The gap between the standard selectors and USER_BASE, and the
        // unallocated user space, are both absent.
        assert!(!t.contains(Opcode(37)));
        assert!(!t.contains(Opcode(Opcode::USER_BASE)));
        let op = t.intern("frob");
        assert!(t.contains(op));
        assert!(t.iter().any(|(o, n)| o == op && n == "frob"));
    }

    #[test]
    fn display_uses_names() {
        assert_eq!(Opcode::ADD.to_string(), "+");
        assert_eq!(Opcode(100).to_string(), "sel#100");
    }
}
