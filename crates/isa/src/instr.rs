//! Instruction formats and their 36-bit encodings.

use crate::{IsaError, Opcode, Operand};

/// Bit layout of the 36-bit instruction payload.
const FMT_BIT: u64 = 1 << 35;
const RET_BIT: u64 = 1 << 34;
const OPCODE_SHIFT: u32 = 24;
const OPCODE_MASK: u64 = 0x3FF;
const NARGS_SHIFT: u32 = 32;
const NARGS_MASK: u64 = 0x3;

/// One COM instruction (§3.3).
///
/// "All instructions are 32 bits in length and contain zero or three
/// operands." We honour Figure 4's field widths (`O<12> A<8> B<8> C<8>`,
/// which with the instruction tag occupy a 36-bit word) and carry the
/// payload in the low 36 bits of a `u64`.
///
/// ```
/// use com_isa::{Instr, Opcode, Operand};
///
/// // c2 <- c1 * c2   (figure 9's "Compute the product")
/// let i = Instr::three(
///     Opcode::MUL,
///     Operand::Cur(2),
///     Operand::Cur(1),
///     Operand::Cur(2),
/// ).unwrap();
/// let encoded = i.encode();
/// assert_eq!(Instr::decode(encoded).unwrap(), i);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instr {
    /// Three-address instruction: `A <- B op C` for data operations, or the
    /// operand roles a defined method assigns (result pointer, receiver,
    /// argument — §4).
    Three {
        /// The abstract opcode / message selector.
        op: Opcode,
        /// Return bit: after this instruction completes, return control to
        /// the calling context (§3.5).
        ret: bool,
        /// Destination (or first argument) operand.
        a: Operand,
        /// Source (receiver) operand.
        b: Operand,
        /// Source (argument) operand — the only slot that may be constant.
        c: Operand,
    },
    /// Zero-address instruction: a bare selector; "zero, one or two locals
    /// in the next context are considered as operands depending on the high
    /// order bits of the instruction" (§3.5).
    Zero {
        /// The abstract opcode / message selector.
        op: Opcode,
        /// Return bit.
        ret: bool,
        /// Number of next-context locals treated as operands (0..=2).
        nargs: u8,
    },
}

impl Instr {
    /// Builds a three-address instruction, validating operand placement.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::MisplacedConstant`] if `a` or `b` is constant
    /// mode, [`IsaError::OpcodeOutOfRange`] or
    /// [`IsaError::OperandOutOfRange`] on field overflow.
    pub fn three(op: Opcode, a: Operand, b: Operand, c: Operand) -> Result<Instr, IsaError> {
        Self::three_ret(op, a, b, c, false)
    }

    /// [`Instr::three`] with the return bit set.
    ///
    /// # Errors
    ///
    /// As for [`Instr::three`].
    pub fn three_ret(
        op: Opcode,
        a: Operand,
        b: Operand,
        c: Operand,
        ret: bool,
    ) -> Result<Instr, IsaError> {
        if op.0 as u64 > OPCODE_MASK {
            return Err(IsaError::OpcodeOutOfRange(op));
        }
        if a.is_const() {
            return Err(IsaError::MisplacedConstant { position: 0 });
        }
        // Deviation from the paper's "last operand only" constant rule,
        // documented in DESIGN.md: we model a dual-ported constant
        // generator, so either source operand (B or C) may be constant.
        // Only the destination A must name a context slot.
        a.validated()?;
        b.validated()?;
        c.validated()?;
        Ok(Instr::Three { op, ret, a, b, c })
    }

    /// Builds a zero-address instruction with `nargs` implicit next-context
    /// operands.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::TooManyImplicitOperands`] if `nargs > 2` or
    /// [`IsaError::OpcodeOutOfRange`].
    pub fn zero(op: Opcode, nargs: u8, ret: bool) -> Result<Instr, IsaError> {
        if op.0 as u64 > OPCODE_MASK {
            return Err(IsaError::OpcodeOutOfRange(op));
        }
        if nargs > 2 {
            return Err(IsaError::TooManyImplicitOperands(nargs));
        }
        Ok(Instr::Zero { op, ret, nargs })
    }

    /// The instruction's opcode.
    pub fn opcode(&self) -> Opcode {
        match self {
            Instr::Three { op, .. } | Instr::Zero { op, .. } => *op,
        }
    }

    /// Whether the return bit is set.
    pub fn returns(&self) -> bool {
        match self {
            Instr::Three { ret, .. } | Instr::Zero { ret, .. } => *ret,
        }
    }

    /// Encodes to the 36-bit payload of an instruction word.
    pub fn encode(&self) -> u64 {
        match *self {
            Instr::Three { op, ret, a, b, c } => {
                (if ret { RET_BIT } else { 0 })
                    | ((op.0 as u64) << OPCODE_SHIFT)
                    | ((a.encode() as u64) << 16)
                    | ((b.encode() as u64) << 8)
                    | (c.encode() as u64)
            }
            Instr::Zero { op, ret, nargs } => {
                // Zero format carries the selector in the low 10 bits so the
                // nargs field (bits 33..32) never overlaps it.
                FMT_BIT
                    | (if ret { RET_BIT } else { 0 })
                    | ((nargs as u64 & NARGS_MASK) << NARGS_SHIFT)
                    | (op.0 as u64)
            }
        }
    }

    /// Decodes a 36-bit payload.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::BadEncoding`] if bits above 35 are set or a
    /// zero-address payload carries operand bits, and
    /// [`IsaError::MisplacedConstant`] for a constant-mode A operand —
    /// decode admits exactly the instructions the [`Instr::three_ret`]
    /// constructor admits, so no decoded word can violate the
    /// destination-must-be-a-slot invariant downstream.
    pub fn decode(word: u64) -> Result<Instr, IsaError> {
        if word >> 36 != 0 {
            return Err(IsaError::BadEncoding(word));
        }
        let ret = word & RET_BIT != 0;
        let op = Opcode(((word >> OPCODE_SHIFT) & OPCODE_MASK) as u16);
        if word & FMT_BIT == 0 {
            let a = Operand::decode(((word >> 16) & 0xFF) as u8);
            if a.is_const() {
                return Err(IsaError::MisplacedConstant { position: 0 });
            }
            Ok(Instr::Three {
                op,
                ret,
                a,
                b: Operand::decode(((word >> 8) & 0xFF) as u8),
                c: Operand::decode((word & 0xFF) as u8),
            })
        } else {
            // Bits 31..10 must be clear in zero format.
            if word & 0xFFFF_FC00 != 0 {
                return Err(IsaError::BadEncoding(word));
            }
            let op = Opcode((word & OPCODE_MASK) as u16);
            let nargs = ((word >> NARGS_SHIFT) & NARGS_MASK) as u8;
            if nargs > 2 {
                return Err(IsaError::TooManyImplicitOperands(nargs));
            }
            Ok(Instr::Zero { op, ret, nargs })
        }
    }

    /// The source operands this instruction reads, in B, C order (used for
    /// ITLB keying and hazard checks). Zero-address instructions read their
    /// implicit next-context locals, reported as [`Operand::Next`].
    pub fn sources(&self) -> Vec<Operand> {
        match *self {
            Instr::Three { b, c, .. } => vec![b, c],
            Instr::Zero { nargs, .. } => (0..nargs)
                // Implicit operands are arg1, arg2 — operand offsets 1 and 2
                // (operand offset 0 is arg0; offsets are biased past the two
                // linkage words RCP/RIP of the §4 context layout).
                .map(|i| Operand::Next(1 + i))
                .collect(),
        }
    }

    /// The explicit operands of a three-address instruction in A, B, C
    /// order; `None` for zero-address instructions (their operands are
    /// implicit next-context locals — see [`Instr::sources`]).
    pub fn operands(&self) -> Option<[Operand; 3]> {
        match *self {
            Instr::Three { a, b, c, .. } => Some([a, b, c]),
            Instr::Zero { .. } => None,
        }
    }

    /// Whether this is a conditional jump (`fjmp`/`rjmp`) — a
    /// three-address control instruction whose C operand carries the
    /// branch displacement.
    pub fn is_jump(&self) -> bool {
        matches!(
            self,
            Instr::Three { op, .. } if *op == Opcode::FJMP || *op == Opcode::RJMP
        )
    }

    /// The destination operand this instruction writes, if any.
    pub fn destination(&self) -> Option<Operand> {
        match *self {
            Instr::Three { op, a, .. } => {
                // Jumps and at:put: do not write A.
                if op == Opcode::FJMP || op == Opcode::RJMP || op == Opcode::ATPUT {
                    None
                } else {
                    Some(a)
                }
            }
            Instr::Zero { .. } => None,
        }
    }
}

impl core::fmt::Display for Instr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Instr::Three { op, ret, a, b, c } => {
                write!(f, "{a} <- {b} {op} {c}")?;
                if *ret {
                    write!(f, " (ret)")?;
                }
                Ok(())
            }
            Instr::Zero { op, ret, nargs } => {
                write!(f, "{op}/{nargs}")?;
                if *ret {
                    write!(f, " (ret)")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_address_roundtrip() {
        let i = Instr::three(
            Opcode::SUB,
            Operand::Next(1),
            Operand::Cur(1),
            Operand::Const(1),
        )
        .unwrap();
        assert_eq!(Instr::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn zero_address_roundtrip() {
        for nargs in 0..=2 {
            for ret in [false, true] {
                let i = Instr::zero(Opcode(100), nargs, ret).unwrap();
                assert_eq!(Instr::decode(i.encode()).unwrap(), i);
            }
        }
    }

    #[test]
    fn constant_never_in_destination() {
        assert!(matches!(
            Instr::three(
                Opcode::ADD,
                Operand::Const(0),
                Operand::Cur(0),
                Operand::Cur(0)
            ),
            Err(IsaError::MisplacedConstant { position: 0 })
        ));
        // Sources may both be constants (dual-ported constant generator).
        assert!(Instr::three(
            Opcode::ADD,
            Operand::Cur(0),
            Operand::Const(0),
            Operand::Cur(0)
        )
        .is_ok());
        assert!(Instr::three(
            Opcode::ADD,
            Operand::Cur(0),
            Operand::Const(0),
            Operand::Const(1)
        )
        .is_ok());
        assert!(Instr::three(
            Opcode::ADD,
            Operand::Cur(0),
            Operand::Cur(0),
            Operand::Const(0)
        )
        .is_ok());
    }

    #[test]
    fn decode_rejects_constant_destinations_like_the_constructor() {
        // A valid instruction whose A field is re-encoded to constant
        // mode (high operand bit set) must not decode: decode admits
        // exactly what the constructors admit.
        let i = Instr::three(
            Opcode::ADD,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Cur(2),
        )
        .unwrap();
        let word = i.encode() | (0x80 << 16);
        assert!(matches!(
            Instr::decode(word),
            Err(IsaError::MisplacedConstant { position: 0 })
        ));
    }

    #[test]
    fn rejects_wide_opcode_and_nargs() {
        assert!(Instr::zero(Opcode(0x400), 0, false).is_err());
        assert!(Instr::zero(Opcode(1), 3, false).is_err());
    }

    #[test]
    fn rejects_bad_encodings() {
        assert!(Instr::decode(1 << 36).is_err());
        // zero-format with junk between the nargs and opcode fields
        assert!(Instr::decode(FMT_BIT | (1 << 20)).is_err());
    }

    #[test]
    fn destination_excludes_jumps_and_stores() {
        let store = Instr::three(
            Opcode::ATPUT,
            Operand::Cur(1),
            Operand::Cur(2),
            Operand::Cur(3),
        )
        .unwrap();
        assert_eq!(store.destination(), None);
        let jmp = Instr::three(
            Opcode::FJMP,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Const(2),
        )
        .unwrap();
        assert_eq!(jmp.destination(), None);
        let add = Instr::three(
            Opcode::ADD,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(2),
        )
        .unwrap();
        assert_eq!(add.destination(), Some(Operand::Cur(0)));
    }

    #[test]
    fn operand_introspection_reports_format_and_jumps() {
        let add = Instr::three(
            Opcode::ADD,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Const(2),
        )
        .unwrap();
        assert_eq!(
            add.operands(),
            Some([Operand::Cur(0), Operand::Cur(1), Operand::Const(2)])
        );
        assert!(!add.is_jump());
        let jmp = Instr::three(
            Opcode::RJMP,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Const(0),
        )
        .unwrap();
        assert!(jmp.is_jump());
        let z = Instr::zero(Opcode(70), 1, false).unwrap();
        assert_eq!(z.operands(), None);
        assert!(!z.is_jump());
    }

    #[test]
    fn sources_of_zero_address_are_next_locals() {
        let i = Instr::zero(Opcode(70), 2, false).unwrap();
        assert_eq!(i.sources(), vec![Operand::Next(1), Operand::Next(2)]);
    }

    #[test]
    fn payload_fits_36_bits() {
        let i = Instr::three_ret(
            Opcode(0x3FF),
            Operand::Cur(63),
            Operand::Next(63),
            Operand::Const(127),
            true,
        )
        .unwrap();
        assert!(i.encode() < (1 << 36));
        let z = Instr::zero(Opcode(0x3FF), 2, true).unwrap();
        assert!(z.encode() < (1 << 36));
    }

    #[test]
    fn display_matches_figure9_style() {
        let i = Instr::three(
            Opcode::MUL,
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Cur(2),
        )
        .unwrap();
        assert_eq!(i.to_string(), "c2 <- c1 * c2");
    }
}
