//! ISA-level errors.

use crate::{Opcode, Operand};

/// Errors from instruction construction, encoding and decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsaError {
    /// An opcode exceeds the 10-bit selector field.
    OpcodeOutOfRange(Opcode),
    /// An operand's offset or constant index exceeds its field.
    OperandOutOfRange(Operand),
    /// Constant mode used outside the last operand position (§3.4).
    MisplacedConstant {
        /// Which operand slot (0 = A) held the constant.
        position: u8,
    },
    /// A zero-address instruction with more than two implicit operands.
    TooManyImplicitOperands(u8),
    /// An instruction word whose payload is not a valid encoding.
    BadEncoding(u64),
    /// A jump target that the assembler could not resolve.
    UnresolvedLabel(usize),
    /// A jump displacement too large for the constant/offset field.
    JumpTooFar {
        /// The required displacement in instructions.
        displacement: i64,
    },
}

impl core::fmt::Display for IsaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            IsaError::OpcodeOutOfRange(op) => {
                write!(f, "opcode {} exceeds the 10-bit selector field", op.0)
            }
            IsaError::OperandOutOfRange(op) => write!(f, "operand {op} field overflow"),
            IsaError::MisplacedConstant { position } => write!(
                f,
                "constant mode in operand {position}; only the last operand may be constant"
            ),
            IsaError::TooManyImplicitOperands(n) => {
                write!(
                    f,
                    "zero-address instruction with {n} implicit operands (max 2)"
                )
            }
            IsaError::BadEncoding(w) => write!(f, "invalid instruction encoding {w:#x}"),
            IsaError::UnresolvedLabel(l) => write!(f, "unresolved label {l}"),
            IsaError::JumpTooFar { displacement } => {
                write!(f, "jump displacement {displacement} exceeds field range")
            }
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = IsaError::MisplacedConstant { position: 0 };
        assert!(e.to_string().contains("operand 0"));
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<IsaError>();
    }
}
