//! The COM instruction set architecture (§3.3–§3.5 of the paper).
//!
//! Instructions are **abstract** (§2.1): an opcode is a message name, and
//! "the meaning of a particular op code depends upon the type or Class of
//! the operand objects of the instruction". This crate defines the *syntax*
//! of that ISA — opcodes, operand descriptors, the two instruction formats,
//! their 36-bit encodings, and an assembler — while the *semantics* (the
//! ITLB, method lookup, function units) live in `com-obj` and `com-core`.
//!
//! Paper Figure 4 gives the formats:
//!
//! ```text
//! | O<12> | A<8> | B<8> | C<8> |      three-address
//! | O<31> |                           zero-address
//! ```
//!
//! We encode both in the 36-bit payload of an instruction-tagged word:
//! bit 35 selects the format, bit 34 is the return bit, bits 33..24 are the
//! 10-bit selector (together those are the paper's 12-bit `O` field), and
//! bits 23..0 hold the three operand descriptors. Zero-address instructions
//! use two of the freed bits for the implicit-operand count ("zero, one or
//! two locals in the next context are considered as operands depending on
//! the high order bits of the instruction", §3.5).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod asm;
mod error;
mod instr;
mod opcode;
mod operand;
mod prim;

pub use asm::{Assembler, CodeObject, Label};
pub use error::IsaError;
pub use instr::Instr;
pub use opcode::{Opcode, OpcodeTable};
pub use operand::Operand;
pub use prim::{PrimOp, ResultShape};
