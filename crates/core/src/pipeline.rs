//! Cycle accounting for the five-step pipeline of §3.6.
//!
//! "Instruction interpretation proceeds in five steps … This instruction
//! interpretation sequence can be pipelined … so that a new instruction is
//! started every two clock cycles. This instruction rate is limited by the
//! context cache."
//!
//! Rather than a structural pipeline simulation, the machine charges each
//! architectural event exactly the cost §3.6 assigns it; experiment T1
//! verifies the charges reproduce the paper's call/return arithmetic and T6
//! decomposes CPI by stall source.

/// Cycle and event counters for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CycleStats {
    /// Instructions completed.
    pub instructions: u64,
    /// Base issue cycles (2 per instruction).
    pub base_cycles: u64,
    /// One-cycle delay per taken branch (delayed branch, §3.6).
    pub branch_delay_cycles: u64,
    /// Pipeline flush + linkage cycles for method calls (2 per call: one
    /// flush, one linkage — the call instruction's own 2 cycles are in
    /// `base_cycles`).
    pub call_linkage_cycles: u64,
    /// One cycle per operand copied into a new context at call.
    pub operand_copy_cycles: u64,
    /// Cycles spent in full method lookup on ITLB misses.
    pub lookup_cycles: u64,
    /// Cycles lost to instruction cache misses.
    pub icache_miss_cycles: u64,
    /// Cycles lost faulting context blocks into the context cache.
    pub ctx_fault_cycles: u64,
    /// Cycles lost to `at:`/`at:put:`/`new`/`grow` memory operations.
    pub memory_op_cycles: u64,
    /// One-cycle interlocks for read-after-write hazards.
    pub interlock_cycles: u64,
    /// Cycles spent in garbage collection.
    pub gc_cycles: u64,
    /// Method calls performed.
    pub calls: u64,
    /// Method returns performed.
    pub returns: u64,
    /// Taken branches.
    pub taken_branches: u64,
    /// Full method lookups performed (ITLB misses or ITLB disabled).
    pub full_lookups: u64,
    /// Contexts allocated (call linkage).
    pub contexts_allocated: u64,
    /// Contexts freed eagerly as LIFO at return.
    pub contexts_freed_lifo: u64,
    /// Contexts left to the garbage collector (escaped / non-LIFO).
    pub contexts_left_to_gc: u64,
    /// Garbage collections run (minor and full).
    pub gc_runs: u64,
    /// Minor (nursery-only) collections among [`gc_runs`](Self::gc_runs).
    pub gc_minor_runs: u64,
    /// Traps handled in software: failed sends (and function-unit operand
    /// traps) reified and re-dispatched to an installed
    /// `doesNotUnderstand:`-style handler instead of killing the call.
    /// The dispatch's cycle costs are charged to `lookup_cycles` (the
    /// handler walk), `memory_op_cycles` (the reified message), and the
    /// ordinary call charges; this counts the events.
    pub soft_traps: u64,
}

impl CycleStats {
    /// Total cycles across all categories.
    pub fn total_cycles(&self) -> u64 {
        self.base_cycles
            + self.branch_delay_cycles
            + self.call_linkage_cycles
            + self.operand_copy_cycles
            + self.lookup_cycles
            + self.icache_miss_cycles
            + self.ctx_fault_cycles
            + self.memory_op_cycles
            + self.interlock_cycles
            + self.gc_cycles
    }

    /// Cycles per instruction; `None` before any instruction completes.
    pub fn cpi(&self) -> Option<f64> {
        if self.instructions == 0 {
            None
        } else {
            Some(self.total_cycles() as f64 / self.instructions as f64)
        }
    }

    /// Component-wise difference since an earlier snapshot.
    pub fn since(&self, s: &CycleStats) -> CycleStats {
        CycleStats {
            instructions: self.instructions - s.instructions,
            base_cycles: self.base_cycles - s.base_cycles,
            branch_delay_cycles: self.branch_delay_cycles - s.branch_delay_cycles,
            call_linkage_cycles: self.call_linkage_cycles - s.call_linkage_cycles,
            operand_copy_cycles: self.operand_copy_cycles - s.operand_copy_cycles,
            lookup_cycles: self.lookup_cycles - s.lookup_cycles,
            icache_miss_cycles: self.icache_miss_cycles - s.icache_miss_cycles,
            ctx_fault_cycles: self.ctx_fault_cycles - s.ctx_fault_cycles,
            memory_op_cycles: self.memory_op_cycles - s.memory_op_cycles,
            interlock_cycles: self.interlock_cycles - s.interlock_cycles,
            gc_cycles: self.gc_cycles - s.gc_cycles,
            calls: self.calls - s.calls,
            returns: self.returns - s.returns,
            taken_branches: self.taken_branches - s.taken_branches,
            full_lookups: self.full_lookups - s.full_lookups,
            contexts_allocated: self.contexts_allocated - s.contexts_allocated,
            contexts_freed_lifo: self.contexts_freed_lifo - s.contexts_freed_lifo,
            contexts_left_to_gc: self.contexts_left_to_gc - s.contexts_left_to_gc,
            gc_runs: self.gc_runs - s.gc_runs,
            gc_minor_runs: self.gc_minor_runs - s.gc_minor_runs,
            soft_traps: self.soft_traps - s.soft_traps,
        }
    }

    /// `(label, cycles)` rows for stall-source reports (T6).
    pub fn breakdown(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("base (2/instr)", self.base_cycles),
            ("branch delay", self.branch_delay_cycles),
            ("call linkage", self.call_linkage_cycles),
            ("operand copy", self.operand_copy_cycles),
            ("method lookup", self.lookup_cycles),
            ("icache miss", self.icache_miss_cycles),
            ("context fault", self.ctx_fault_cycles),
            ("memory ops", self.memory_op_cycles),
            ("interlocks", self.interlock_cycles),
            ("gc", self.gc_cycles),
        ]
    }
}

impl core::fmt::Display for CycleStats {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} instrs, {} cycles (CPI {:.2})",
            self.instructions,
            self.total_cycles(),
            self.cpi().unwrap_or(f64::NAN)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_cpi() {
        let s = CycleStats {
            instructions: 10,
            base_cycles: 20,
            branch_delay_cycles: 3,
            ..CycleStats::default()
        };
        assert_eq!(s.total_cycles(), 23);
        assert!((s.cpi().unwrap() - 2.3).abs() < 1e-12);
        assert_eq!(CycleStats::default().cpi(), None);
    }

    #[test]
    fn since_subtracts() {
        let a = CycleStats {
            instructions: 5,
            base_cycles: 10,
            ..CycleStats::default()
        };
        let b = CycleStats {
            instructions: 9,
            base_cycles: 18,
            calls: 2,
            ..CycleStats::default()
        };
        let d = b.since(&a);
        assert_eq!(d.instructions, 4);
        assert_eq!(d.base_cycles, 8);
        assert_eq!(d.calls, 2);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let s = CycleStats {
            instructions: 1,
            base_cycles: 2,
            lookup_cycles: 40,
            memory_op_cycles: 4,
            gc_cycles: 100,
            ..CycleStats::default()
        };
        let sum: u64 = s.breakdown().iter().map(|(_, c)| c).sum();
        assert_eq!(sum, s.total_cycles());
    }
}
