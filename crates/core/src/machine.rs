//! The COM machine: registers, interpretation loop, traps.
//!
//! # Architectural statistics vs. wall-clock speed
//!
//! The machine keeps two notions of time that must never be confused:
//!
//! * **Architectural cycles** ([`CycleStats`], the cache hit/miss counters)
//!   model the *hardware the paper describes*. They are semantics: every
//!   optimisation of this simulator must leave them bit-identical on a
//!   given program. The regression tests in `tests/interp_fastpath.rs`
//!   enforce this by running the same workload through both interpreter
//!   loops.
//! * **Wall-clock speed** is how fast the simulator itself executes. The
//!   hot loop is free to change shape for wall-clock speed — and does:
//!   [`Machine::run`] is a *threaded* loop that borrows the current
//!   decoded method across the inner loop, re-fetching it only on
//!   call/return/xfer, resolves operands from their decode-time lowered
//!   form ([`LowOperand`]: context-slot offsets pre-biased, constants
//!   pre-fetched), dispatches through the direct-mapped ITLB probe array,
//!   and batches the per-instruction counters into loop-locals that are
//!   flushed at run end, trap, or control transfer.
//!
//! [`Machine::step`] (and [`Machine::run_stepwise`], which drives it) is
//! the reference interpreter: one instruction per call with every
//! invariant re-established from machine state, exactly as the
//! pre-overhaul loop did. It is the baseline the bench pipeline
//! (`BENCH_interp.json`) measures the threaded loop against, and the
//! oracle the differential tests compare it to.

// The hot paths repeatedly need one field of `self` (a context register)
// while `self.cc` is known-present; `if self.cc.is_some()` + a later
// `expect` keeps those borrows disjoint where `if let` could not.
#![allow(clippy::unnecessary_unwrap)]

use std::collections::{HashMap, HashSet};

use std::sync::Arc;

use com_cache::{AddrSet, CacheStats, FxBuildHasher, SetAssocCache};
use com_fpa::{Fpa, SegmentName};
use com_isa::{CodeObject, Instr, Opcode, OpcodeTable, Operand, PrimOp};
use com_mem::{
    gc,
    gc::{GcKind, GcStats},
    AbsAddr, AllocKind, ClassId, MemError, ObjectSpace, TeamId, Word,
};
use com_obj::{
    lookup_method, lookup_trap_handler, AtomTable, ClassTable, DefinedMethod, Itlb, ItlbKey,
    MethodRef, TrapSelector,
};

use crate::{
    ContextCache, CtxCacheStats, CycleStats, MachineConfig, MachineError, ProgramImage,
    CONTEXT_WORDS, CTX_ARG0, CTX_ARG1, CTX_RCP, CTX_RIP, OPERAND_BIAS,
};

/// An operand in its decode-time lowered form: context-mode operands carry
/// their final (bias-applied) context word offset, constant-mode operands
/// are pre-resolved to the value and class they will always produce. The
/// per-step translation work of [`Operand`] — mode match, bias add,
/// constant-table index — happens once, at decode.
#[derive(Debug, Clone, Copy)]
pub(crate) enum LowOperand {
    /// Current-context slot (raw context word offset, bias applied).
    Cur(u64),
    /// Next-context slot (raw context word offset, bias applied).
    Next(u64),
    /// Constant, resolved against the method's constant table at decode.
    Imm(Word, ClassId),
    /// Constant index beyond the method's table (the index is carried for
    /// the trap). Kept as a lowered form — not a decode error — because
    /// the reference interpreter only traps this if the instruction
    /// actually executes.
    BadConst(u8),
}

/// A context-slot hazard source: (reads next context?, raw word offset).
type HazardSrc = Option<(bool, u64)>;

/// One instruction with its operands pre-lowered (§3.6 fast path).
#[derive(Debug, Clone, Copy)]
pub(crate) struct LowInstr {
    /// The original instruction (generic execution paths match on it).
    instr: Instr,
    /// Lowered A operand (three-address form only) — the destination, or
    /// the result-pointer slot when the return bit is set.
    a: LowOperand,
    /// Lowered B source (three-address form only).
    b: LowOperand,
    /// Lowered C source (three-address form only).
    c: LowOperand,
    /// Destination slot for the pure-data fast path: present when the
    /// instruction is three-address, does not return, and writes a
    /// context slot. `(next context?, raw word offset)`.
    dest: Option<(bool, u64)>,
    /// The context-mode source slots, for the §3.6 read-after-write hazard
    /// check: an O(1) compare of precomputed slots against the previous
    /// instruction's destination.
    hazards: [HazardSrc; 2],
}

impl LowInstr {
    fn lower_src(op: Operand, consts: &[(Word, ClassId)]) -> LowOperand {
        match op {
            Operand::Cur(o) => LowOperand::Cur(o as u64 + OPERAND_BIAS),
            Operand::Next(o) => LowOperand::Next(o as u64 + OPERAND_BIAS),
            Operand::Const(i) => match consts.get(i as usize) {
                Some((w, c)) => LowOperand::Imm(*w, *c),
                None => LowOperand::BadConst(i),
            },
        }
    }

    fn hazard_src(op: Operand) -> HazardSrc {
        match op {
            Operand::Cur(o) => Some((false, o as u64 + OPERAND_BIAS)),
            Operand::Next(o) => Some((true, o as u64 + OPERAND_BIAS)),
            Operand::Const(_) => None,
        }
    }

    fn lower(instr: Instr, consts: &[(Word, ClassId)]) -> LowInstr {
        match instr {
            Instr::Three { op, ret, a, b, c } => LowInstr {
                instr,
                a: Self::lower_src(a, consts),
                b: Self::lower_src(b, consts),
                c: Self::lower_src(c, consts),
                dest: if ret || op == Opcode::FJMP || op == Opcode::RJMP || op == Opcode::ATPUT {
                    None
                } else {
                    match a {
                        Operand::Cur(o) => Some((false, o as u64 + OPERAND_BIAS)),
                        Operand::Next(o) => Some((true, o as u64 + OPERAND_BIAS)),
                        Operand::Const(_) => None,
                    }
                },
                hazards: [Self::hazard_src(b), Self::hazard_src(c)],
            },
            Instr::Zero { nargs, .. } => LowInstr {
                instr,
                a: LowOperand::Imm(Word::Uninit, ClassId::NONE),
                b: LowOperand::Imm(Word::Uninit, ClassId::NONE),
                c: LowOperand::Imm(Word::Uninit, ClassId::NONE),
                dest: None,
                // Implicit operands arg1, arg2 of the next context.
                hazards: [
                    if nargs >= 1 {
                        Some((true, 1 + OPERAND_BIAS))
                    } else {
                        None
                    },
                    if nargs >= 2 {
                        Some((true, 2 + OPERAND_BIAS))
                    } else {
                        None
                    },
                ],
            },
        }
    }
}

/// The position-independent payload of a decoded method: the lowered
/// instruction stream and the pre-classed constant table. Bodies carry no
/// memory addresses, so one body can back the same method in any number of
/// machines — [`crate::LoadedImage`] pre-decodes every method once and
/// every [`Machine::load_image`] call binds the shared bodies to that
/// machine's stored code objects without re-decoding.
#[derive(Debug)]
pub(crate) struct DecodedBody {
    pub(crate) consts: Vec<(Word, ClassId)>,
    /// The instruction stream in decode-time lowered form; the original
    /// [`Instr`] rides along in each entry for the generic paths.
    pub(crate) low: Vec<LowInstr>,
    #[allow(dead_code)]
    pub(crate) n_args: u8,
}

impl DecodedBody {
    /// Decodes a [`CodeObject`] directly (no machine, no memory reads).
    /// Returns `None` when the method cannot be decoded
    /// position-independently — a constant without a primitive class
    /// (i.e. a pointer) needs the owning machine's space to classify, so
    /// such methods fall back to the per-machine lazy decode.
    pub(crate) fn from_code(code: &CodeObject) -> Option<DecodedBody> {
        let mut consts = Vec::with_capacity(code.consts.len());
        for w in &code.consts {
            consts.push((*w, w.primitive_class()?));
        }
        let low = code
            .instrs
            .iter()
            .map(|i| LowInstr::lower(*i, &consts))
            .collect();
        Some(DecodedBody {
            consts,
            low,
            n_args: code.n_args,
        })
    }
}

/// A decoded, resident method (simulator-side cache; the architectural
/// instruction cache is modelled separately for timing). Entries live in
/// the machine's decoded-method slab and are reached from an ITLB hit by
/// array index (the small integer carried in [`DefinedMethod::slab`]).
/// The per-machine part is just the binding — base capability and
/// absolute base of the stored code object; the body may be shared with
/// other machines through a [`crate::LoadedImage`].
#[derive(Debug)]
struct Decoded {
    /// Base capability of the stored code object.
    base: Fpa,
    /// Its absolute base (code objects are GC roots and the collector is
    /// non-moving, so this stays valid for the machine's lifetime).
    abs: AbsAddr,
    /// The decoded instruction stream and constants (possibly shared).
    body: Arc<DecodedBody>,
}

/// Instruction-cache storage: the flat probe array, or the legacy generic
/// cache (the pre-overhaul structure, kept for the bench baseline). The two
/// are access-for-access identical in hits/misses/evictions.
#[derive(Debug)]
enum Icache {
    Fast(AddrSet),
    Reference(SetAssocCache<u64, ()>),
}

impl Icache {
    #[inline]
    fn probe(&mut self, addr: u64) -> bool {
        match self {
            Icache::Fast(c) => {
                if c.lookup(addr) {
                    true
                } else {
                    c.fill(addr);
                    false
                }
            }
            Icache::Reference(c) => {
                if c.lookup(&addr).is_some() {
                    true
                } else {
                    c.fill(addr, ());
                    false
                }
            }
        }
    }

    fn stats(&self) -> CacheStats {
        match self {
            Icache::Fast(c) => c.stats(),
            Icache::Reference(c) => c.stats(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            Icache::Fast(c) => c.reset_stats(),
            Icache::Reference(c) => c.reset_stats(),
        }
    }

    /// Drops all contents (statistics are kept).
    fn clear(&mut self) {
        match self {
            Icache::Fast(c) => c.clear(),
            Icache::Reference(c) => c.clear(),
        }
    }
}

/// A context register: virtual address plus its pretranslated absolute base
/// ("the CP, NCP, and IP are pre-translated to absolute addresses and are
/// cached in special hardware registers", §3.6).
#[derive(Debug, Clone, Copy)]
struct CtxReg {
    fpa: Fpa,
    abs: AbsAddr,
    /// Context cache block index, when the context cache is enabled.
    block: Option<usize>,
}

/// One memoized frame of the dynamic call chain (see `Machine::shadow`).
#[derive(Debug, Clone, Copy)]
struct ShadowFrame {
    /// The caller's context register at call time.
    reg: CtxReg,
    /// The continuation stored into the caller's RIP slot.
    rip: Fpa,
    /// Decoded-slab slot of the caller's method.
    slab: u32,
}

/// Aggregate garbage-collection work across a machine's lifetime, split by
/// generation. Simulator-side observability (bench pipeline, reports) —
/// the *architectural* cost lives in [`CycleStats::gc_cycles`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcTotals {
    /// Minor (nursery-only) collections run.
    pub minor_collections: u64,
    /// Full collections run.
    pub full_collections: u64,
    /// Words scanned by minor collections.
    pub minor_words_scanned: u64,
    /// Words scanned by full collections.
    pub full_words_scanned: u64,
    /// Words freed by minor collections.
    pub minor_words_freed: u64,
    /// Words freed by full collections.
    pub full_words_freed: u64,
    /// Segments swept by minor collections.
    pub minor_segments_swept: u64,
    /// Segments swept by full collections.
    pub full_segments_swept: u64,
    /// Nursery survivors promoted to the tenured generation.
    pub promoted_segments: u64,
}

impl GcTotals {
    fn absorb(&mut self, st: &GcStats) {
        if st.minor {
            self.minor_collections += 1;
            self.minor_words_scanned += st.words_scanned;
            self.minor_words_freed += st.words_freed;
            self.minor_segments_swept += st.swept_segments;
        } else {
            self.full_collections += 1;
            self.full_words_scanned += st.words_scanned;
            self.full_words_freed += st.words_freed;
            self.full_segments_swept += st.swept_segments;
        }
        self.promoted_segments += st.promoted_segments;
    }

    /// Total words scanned across both generations.
    pub fn words_scanned(&self) -> u64 {
        self.minor_words_scanned + self.full_words_scanned
    }

    /// Total words freed across both generations.
    pub fn words_freed(&self) -> u64 {
        self.minor_words_freed + self.full_words_freed
    }
}

/// The outcome of a bounded run ([`Machine::run_for`]): done, or out of
/// budget with the machine ready to resume.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The entry send returned; the machine halted with this result.
    Done(RunResult),
    /// The step budget was exhausted mid-program. Machine state (registers,
    /// caches, GC cadence, statistics) is consistent; call
    /// [`Machine::run_for`] again to continue.
    OutOfBudget,
}

/// The outcome of a completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The value the entry send stored through its result pointer.
    pub result: Word,
    /// Cycle accounting for the run.
    pub stats: CycleStats,
    /// Instructions executed.
    pub steps: u64,
}

/// One dispatch as observed at the ITLB boundary: the current method's
/// code base capability, the program counter, and the translation key
/// the machine is about to resolve.
#[derive(Debug, Clone, Copy)]
pub struct DispatchEvent {
    /// Code base capability of the method executing the send.
    pub method: Fpa,
    /// Program counter within that method.
    pub pc: u64,
    /// The ITLB key built from the opcode and operand class tags.
    pub key: ItlbKey,
}

/// A callback invoked on every instruction dispatch, before ITLB
/// translation — instrumentation for differential testing and trace
/// capture. Both interpreter paths (the generic `step` loop and the
/// lowered threaded loop) report through it; when none is installed the
/// hot loops pay only an `is_some` check.
pub struct DispatchObserver(Box<dyn FnMut(DispatchEvent) + Send>);

impl std::fmt::Debug for DispatchObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("DispatchObserver(..)")
    }
}

/// The Caltech Object Machine.
///
/// ```
/// use com_core::{Machine, MachineConfig, ProgramImage};
/// use com_isa::{Assembler, Opcode, Operand};
/// use com_mem::{ClassId, Word};
///
/// # fn main() -> Result<(), com_core::MachineError> {
/// // A method on SmallInteger: "double" answers self + self.
/// let mut image = ProgramImage::empty();
/// let sel = image.opcodes.intern("double");
/// let mut asm = Assembler::new("SmallInteger>>double", 1);
/// // c2 <- c1 + c1 ; return c2 via the result pointer in c0
/// asm.emit_three(Opcode::ADD, Operand::Cur(2), Operand::Cur(1), Operand::Cur(1))?;
/// asm.emit_three_ret(Opcode::MOVE, Operand::Cur(0), Operand::Cur(2), Operand::Cur(2))?;
/// image.add_method(ClassId::SMALL_INT, sel, asm.finish()?);
///
/// let mut m = Machine::new(MachineConfig::default());
/// m.load(&image)?;
/// let out = m.send("double", Word::Int(21), &[], 10_000)?;
/// assert_eq!(out.result, Word::Int(42));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    /// Mirror of [`MachineConfig::reference_interpreter`]: route method
    /// residency, the copyback check, and context-directory probes through
    /// the pre-overhaul data paths (the wall-clock bench baseline).
    reference: bool,
    space: ObjectSpace,
    team: TeamId,
    classes: ClassTable,
    atoms: AtomTable,
    opcodes: OpcodeTable,
    itlb: Option<Itlb>,
    icache: Option<Icache>,
    cc: Option<ContextCache>,
    /// Decoded-method slab: a resident-method hit is one array index.
    decoded: Vec<Arc<Decoded>>,
    /// Cold-path index (code virtual base → slab slot), consulted only
    /// when a dictionary entry has not been resolved to a slab slot yet
    /// (and on shadow-miss returns, to re-enter the caller's method).
    decoded_index: HashMap<u64, u32, FxBuildHasher>,
    /// The pre-overhaul residency index (translated absolute base, SipHash
    /// map), used instead of the slab fast paths when
    /// [`MachineConfig::reference_interpreter`] is set.
    methods_reference: HashMap<u64, u32>,
    code_roots: Vec<Fpa>,
    context_class: ClassId,
    cp: Option<CtxReg>,
    ncp: Option<CtxReg>,
    /// FP register: the free context list (simulated as a vector; each
    /// alloc/free is the paper's single memory reference).
    free_list: Vec<CtxReg>,
    /// Segments of contexts whose pointers escaped into heap objects —
    /// non-LIFO contexts that must be left to the garbage collector.
    escaped: HashSet<SegmentName, FxBuildHasher>,
    /// Simulator-side memo of the dynamic call chain: the caller's context
    /// register, continuation, and decoded-method slot are pushed at call
    /// and popped at return, so a LIFO return reuses the pretranslated
    /// caller base and re-enters the caller's method by slab index instead
    /// of re-translating. Purely an acceleration: entries are validated
    /// against the RCP/RIP actually read from the context, and the stack
    /// is discarded on any non-LIFO control flow (xfer, mismatch) and on
    /// GC (segment names can be recycled after a sweep).
    shadow: Vec<ShadowFrame>,
    /// Slab slot of the method `ip` currently points into.
    cur_slab: u32,
    /// Current method: base capability, absolute base, program counter.
    ip: Option<(Fpa, AbsAddr, Arc<Decoded>)>,
    /// Bumped on every control transfer (call/return/xfer/entry). The
    /// threaded loop snapshots this to know when its borrowed decoded
    /// method is stale and must be re-fetched.
    ip_gen: u64,
    pc: u64,
    privileged: bool,
    /// Code root of the current send's synthesized entry method, released
    /// (un-rooted, decode caches purged) once the send halts.
    entry_base: Option<Fpa>,
    /// Reusable slab slot for synthesized entry methods, so repeated sends
    /// do not grow the decoded-method slab.
    entry_slab: Option<u32>,
    result_cell: Option<Fpa>,
    last_dest: Option<(AbsAddr, u64)>,
    stats: CycleStats,
    gc_totals: GcTotals,
    steps: u64,
    halted: Option<Word>,
    observer: Option<DispatchObserver>,
}

impl Machine {
    /// Creates a machine with standard primitives installed and one team.
    pub fn new(config: MachineConfig) -> Self {
        let mut space = ObjectSpace::new(config.space_log2, config.format);
        if config.reference_interpreter {
            space.set_reference_paths(true);
        }
        let mut classes = ClassTable::new();
        com_obj::install_standard_primitives(&mut classes);
        let context_class = classes
            .define("Context", Some(ClassTable::OBJECT), 0)
            .expect("fresh table");
        Self::assemble(config, space, classes, context_class)
    }

    /// Boots a machine directly from a pre-decoded [`crate::LoadedImage`]
    /// — the cheapest constructor. When the image's pre-booted template
    /// matches `config`'s space geometry, the machine is assembled around
    /// clones of the template's space, class table and decoded slab;
    /// [`new`](Self::new)'s throwaway table and space are never built.
    /// Otherwise this is exactly `Machine::new` + [`load_image`]
    /// (Self::load_image).
    ///
    /// [`load_image`]: Self::load_image
    ///
    /// # Errors
    ///
    /// Propagates storage errors from the fallback path.
    pub fn boot(
        config: MachineConfig,
        loaded: &crate::LoadedImage,
    ) -> Result<Machine, MachineError> {
        match loaded.template_for(config.format, config.space_log2) {
            Some(t) => {
                let mut space = t.space.lock().expect("template lock").clone();
                if config.reference_interpreter {
                    space.set_reference_paths(true);
                }
                let mut m = Self::assemble(config, space, t.classes.clone(), t.context_class);
                m.finish_template_adopt(loaded, t);
                Ok(m)
            }
            None => {
                let mut m = Machine::new(config);
                m.load_image(loaded)?;
                Ok(m)
            }
        }
    }

    /// The common constructor tail: every register, cache and counter in
    /// its boot state around the given space and class table.
    fn assemble(
        config: MachineConfig,
        space: ObjectSpace,
        classes: ClassTable,
        context_class: ClassId,
    ) -> Machine {
        Machine {
            reference: config.reference_interpreter,
            itlb: config.itlb.map(Itlb::new),
            icache: config.icache.map(|c| {
                if config.icache_reference {
                    Icache::Reference(SetAssocCache::with_indexer(c, |k| *k))
                } else {
                    Icache::Fast(AddrSet::new(c))
                }
            }),
            cc: config.ctx_blocks.map(|b| {
                let mut cc = ContextCache::new(b);
                cc.set_reference_paths(config.reference_interpreter);
                cc
            }),
            config,
            space,
            team: TeamId(0),
            classes,
            atoms: AtomTable::new(),
            opcodes: OpcodeTable::new(),
            decoded: Vec::new(),
            decoded_index: HashMap::default(),
            methods_reference: HashMap::new(),
            code_roots: Vec::new(),
            context_class,
            cp: None,
            ncp: None,
            free_list: Vec::new(),
            escaped: HashSet::default(),
            shadow: Vec::new(),
            cur_slab: DefinedMethod::UNRESOLVED,
            ip: None,
            ip_gen: 0,
            pc: 0,
            privileged: false,
            entry_base: None,
            entry_slab: None,
            result_cell: None,
            last_dest: None,
            stats: CycleStats::default(),
            gc_totals: GcTotals::default(),
            steps: 0,
            halted: None,
            observer: None,
        }
    }

    /// Loads a program image: adopts its class hierarchy and interning
    /// tables, stores every method's code object, and installs the defined
    /// methods into the class dictionaries.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn load(&mut self, image: &ProgramImage) -> Result<(), MachineError> {
        self.adopt_tables(image);
        for m in &image.methods {
            let base = m.code.store(&mut self.space, self.team)?;
            self.code_roots.push(base);
            self.classes.install(
                m.class,
                m.selector,
                MethodRef::Defined(DefinedMethod::new(base, m.code.n_args)),
            );
        }
        // Loading an image invalidates every decoded method: slab slots
        // cached in the ITLB would otherwise dangle into the old program.
        self.invalidate_decoded();
        Ok(())
    }

    /// Loads a pre-decoded [`crate::LoadedImage`]: adopts its tables, stores every
    /// method's code object, and installs **pre-resolved** defined methods
    /// whose decoded-slab entries reuse the image's shared bodies.
    ///
    /// This is the cheap multi-tenant boot path: the expensive work —
    /// compiling, decoding, operand lowering — was done once when the
    /// [`crate::LoadedImage`] was prepared, and is shared (via `Arc`) by every
    /// machine loaded from it. Only the per-machine state is built here:
    /// code words stored into this machine's object space and the slab
    /// bound to their addresses.
    ///
    /// Architectural behaviour and [`CycleStats`] are identical to
    /// [`load`](Self::load) followed by lazy decodes — decode work is
    /// simulator-side and charges no cycles.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn load_image(&mut self, loaded: &crate::LoadedImage) -> Result<(), MachineError> {
        let image = loaded.image();
        // Fast boot: a pristine machine whose geometry matches the image's
        // pre-booted template adopts the template wholesale — the space
        // with code already stored, the installed class table, and the
        // decoded slab are each one clone. (A machine that already holds
        // objects must not have its space replaced; it takes the
        // store-per-method path below.)
        let pristine = self.space.memory().buddy().live_blocks() == 0;
        if pristine {
            if let Some(t) = loaded.template_for(self.config.format, self.config.space_log2) {
                self.invalidate_decoded();
                let mut space = t.space.lock().expect("template lock").clone();
                if self.reference {
                    space.set_reference_paths(true);
                }
                self.space = space;
                self.classes = t.classes.clone();
                self.context_class = t.context_class;
                self.code_roots.clear();
                self.finish_template_adopt(loaded, t);
                return Ok(());
            }
        }
        self.adopt_tables(image);
        self.invalidate_decoded();
        let decoded = &mut self.decoded;
        let decoded_index = &mut self.decoded_index;
        crate::loaded::store_and_install(
            &mut self.space,
            self.team,
            &mut self.classes,
            image,
            |i| loaded.body(i),
            &mut self.code_roots,
            |base, abs, body| {
                let id = u32::try_from(decoded.len()).expect("slab outgrew u32");
                decoded.push(Arc::new(Decoded { base, abs, body }));
                decoded_index.insert(base.raw(), id);
                id
            },
        )?;
        Ok(())
    }

    /// The shared tail of template adoption: interning tables, code
    /// roots, and the decoded slab (classes, context class and space are
    /// already in place).
    fn finish_template_adopt(
        &mut self,
        loaded: &crate::LoadedImage,
        t: &crate::loaded::BootTemplate,
    ) {
        self.atoms = loaded.image().atoms.clone();
        self.opcodes = loaded.image().opcodes.clone();
        self.code_roots.extend_from_slice(&t.code_roots);
        self.decoded = t
            .slab
            .iter()
            .map(|(base, abs, body)| {
                Arc::new(Decoded {
                    base: *base,
                    abs: *abs,
                    body: Arc::clone(body),
                })
            })
            .collect();
        self.decoded_index = t.index.clone();
    }

    /// Adopts an image's class hierarchy and interning tables.
    fn adopt_tables(&mut self, image: &ProgramImage) {
        self.classes = image.classes.clone();
        self.atoms = image.atoms.clone();
        self.opcodes = image.opcodes.clone();
        self.context_class = match self.classes.by_name("Context") {
            Some(c) => c,
            None => self
                .classes
                .define("Context", Some(ClassTable::OBJECT), 0)
                .expect("name free"),
        };
    }

    /// Drops every decoded method (and the caches that reach them): slab
    /// slots cached in the ITLB would otherwise dangle into an old program.
    fn invalidate_decoded(&mut self) {
        self.release_entry();
        self.decoded.clear();
        self.decoded_index.clear();
        self.methods_reference.clear();
        self.shadow.clear();
        self.cur_slab = DefinedMethod::UNRESOLVED;
        self.entry_slab = None;
        if let Some(itlb) = &mut self.itlb {
            itlb.flush();
        }
    }

    /// The class table (inspection).
    pub fn classes(&self) -> &ClassTable {
        &self.classes
    }

    /// The atom table (inspection).
    pub fn atoms(&self) -> &AtomTable {
        &self.atoms
    }

    /// The selector table (inspection).
    pub fn opcodes(&self) -> &OpcodeTable {
        &self.opcodes
    }

    /// The object space (inspection: allocation stats, ATLB stats).
    pub fn space(&self) -> &ObjectSpace {
        &self.space
    }

    /// Mutable object space access (test setup, workload data).
    pub fn space_mut(&mut self) -> &mut ObjectSpace {
        &mut self.space
    }

    /// The machine's team.
    pub fn team(&self) -> TeamId {
        self.team
    }

    /// The class used for contexts.
    pub fn context_class(&self) -> ClassId {
        self.context_class
    }

    /// Cycle statistics so far.
    pub fn stats(&self) -> CycleStats {
        self.stats
    }

    /// Aggregate garbage-collection work so far, split by generation.
    pub fn gc_totals(&self) -> GcTotals {
        self.gc_totals
    }

    /// ITLB first-level statistics, if an ITLB is configured.
    pub fn itlb_stats(&self) -> Option<CacheStats> {
        self.itlb.as_ref().map(|t| t.l1_stats())
    }

    /// Instruction cache statistics, if configured.
    pub fn icache_stats(&self) -> Option<CacheStats> {
        self.icache.as_ref().map(Icache::stats)
    }

    /// Context cache statistics, if configured.
    pub fn ctx_cache_stats(&self) -> Option<CtxCacheStats> {
        self.cc.as_ref().map(|c| c.stats())
    }

    /// Resets all statistics (warmup boundary); contents stay resident.
    pub fn reset_stats(&mut self) {
        self.stats = CycleStats::default();
        self.gc_totals = GcTotals::default();
        if let Some(t) = &mut self.itlb {
            t.reset_stats();
        }
        if let Some(c) = &mut self.icache {
            c.reset_stats();
        }
        if let Some(c) = &mut self.cc {
            c.reset_stats();
        }
    }

    /// Grants or revokes the PS privilege bit (`as:` legality, §3.3).
    pub fn set_privileged(&mut self, p: bool) {
        self.privileged = p;
    }

    /// Interns a selector (delegates to the opcode table).
    pub fn intern_selector(&mut self, name: &str) -> Opcode {
        self.opcodes.intern(name)
    }

    // ------------------------------------------------------------------
    // Word classes
    // ------------------------------------------------------------------

    fn class_of_word(&mut self, w: &Word) -> Result<ClassId, MachineError> {
        match w.primitive_class() {
            Some(c) => Ok(c),
            None => {
                let p = w.as_ptr().expect("only pointers lack primitive class");
                Ok(self.space.class_of(self.team, p)?)
            }
        }
    }

    // ------------------------------------------------------------------
    // Context access
    // ------------------------------------------------------------------

    #[inline]
    fn ctx_reg(&self, next: bool) -> Result<CtxReg, MachineError> {
        let r = if next { self.ncp } else { self.cp };
        r.ok_or(MachineError::NoContext)
    }

    #[inline(always)]
    fn ctx_read_raw(&mut self, next: bool, off: u64) -> Result<(Word, ClassId), MachineError> {
        if off >= CONTEXT_WORDS {
            return Err(MachineError::SlotOutOfRange { offset: off });
        }
        // Touch only the fields the chosen path needs — copying the whole
        // register out costs more than the cached read itself.
        if self.cc.is_some() {
            let reg = if next { &self.ncp } else { &self.cp };
            let block = match reg {
                Some(r) => r.block.expect("vector contexts are resident"),
                None => return Err(MachineError::NoContext),
            };
            Ok(self.cc.as_mut().expect("checked").read(block, off))
        } else {
            let reg = self.ctx_reg(next)?;
            let w =
                self.space
                    .read_kind(self.team, reg.fpa.with_offset(off)?, AllocKind::Context)?;
            let c = self.class_of_word(&w)?;
            Ok((w, c))
        }
    }

    #[inline(always)]
    fn ctx_write_raw(
        &mut self,
        next: bool,
        off: u64,
        w: Word,
        class: ClassId,
    ) -> Result<(), MachineError> {
        if off >= CONTEXT_WORDS {
            return Err(MachineError::SlotOutOfRange { offset: off });
        }
        if self.cc.is_some() {
            let reg = if next { &self.ncp } else { &self.cp };
            let block = match reg {
                Some(r) => r.block.expect("vector contexts are resident"),
                None => return Err(MachineError::NoContext),
            };
            self.cc
                .as_mut()
                .expect("checked")
                .write(block, off, w, class);
            Ok(())
        } else {
            let reg = self.ctx_reg(next)?;
            self.space
                .write_kind(self.team, reg.fpa.with_offset(off)?, w, AllocKind::Context)?;
            Ok(())
        }
    }

    /// Reads an operand-space context slot (bias applied).
    #[inline]
    fn ctx_read(&mut self, next: bool, op_off: u64) -> Result<(Word, ClassId), MachineError> {
        self.ctx_read_raw(next, op_off + OPERAND_BIAS)
    }

    /// Writes an operand-space context slot (bias applied).
    fn ctx_write(
        &mut self,
        next: bool,
        op_off: u64,
        w: Word,
        class: ClassId,
    ) -> Result<(), MachineError> {
        self.ctx_write_raw(next, op_off + OPERAND_BIAS, w, class)
    }

    // ------------------------------------------------------------------
    // Coherent memory access (at:/at:put: and indirect result writes)
    // ------------------------------------------------------------------

    /// Resolves `ptr` advanced by `idx` words, following growth forwarding
    /// when the stale exponent cannot even encode the offset (§2.2).
    fn index_addr(&mut self, ptr: Fpa, idx: u64) -> Result<Fpa, MachineError> {
        let mut p = ptr;
        for _ in 0..64 {
            match p.with_offset(p.offset() + idx) {
                Ok(a) => return Ok(a),
                Err(_) => {
                    // Out of this name's range: consult the descriptor for a
                    // forward, exactly like the bounds trap handler.
                    let seg = p.segment();
                    let ts = self.space.mmu().team(self.team)?;
                    match ts.table.get(seg).and_then(|d| d.forward) {
                        Some(fwd) => p = fwd.with_offset(p.offset()).unwrap_or(fwd),
                        None => {
                            return Err(MachineError::Mem(MemError::Bounds {
                                addr: p,
                                offset: p.offset() + idx,
                                length: 0,
                            }))
                        }
                    }
                }
            }
        }
        Err(MachineError::Mem(MemError::Bounds {
            addr: ptr,
            offset: idx,
            length: 0,
        }))
    }

    /// Memory read that checks the context cache directory first ("to
    /// access a context using an absolute address, the address is input to
    /// the cache directory", §3.6).
    fn mem_read(&mut self, p: Fpa) -> Result<(Word, ClassId), MachineError> {
        let t = self.space.translate(self.team, p)?;
        let kind = if t.class == self.context_class {
            AllocKind::Context
        } else {
            AllocKind::Object
        };
        if self.cc.is_some() && kind == AllocKind::Context {
            let base = AbsAddr(t.abs.0 & !(CONTEXT_WORDS - 1));
            let cc = self.cc.as_mut().expect("checked");
            let hit = if self.reference {
                cc.find_reference(base)
            } else {
                cc.find(base)
            };
            if let Some(block) = hit {
                let off = t.abs.0 & (CONTEXT_WORDS - 1);
                return Ok(self.cc.as_mut().expect("checked").read(block, off));
            }
        }
        let w = self.space.read_abs(t.abs, kind)?;
        let c = self.class_of_word(&w)?;
        Ok((w, c))
    }

    /// Memory write, coherent with the context cache, with escape marking:
    /// a context pointer stored into a *heap object* makes that context
    /// non-LIFO (it may outlive its activation).
    fn mem_write(&mut self, p: Fpa, w: Word, class: ClassId) -> Result<(), MachineError> {
        let t = self.space.translate(self.team, p)?;
        let target_is_context = t.class == self.context_class;
        if !target_is_context && class == self.context_class {
            if let Some(ptr) = w.as_ptr() {
                self.escaped.insert(ptr.segment());
                self.stats.contexts_left_to_gc += 1;
            }
        }
        let kind = if target_is_context {
            AllocKind::Context
        } else {
            AllocKind::Object
        };
        if self.cc.is_some() && target_is_context {
            let base = AbsAddr(t.abs.0 & !(CONTEXT_WORDS - 1));
            let cc = self.cc.as_mut().expect("checked");
            let hit = if self.reference {
                cc.find_reference(base)
            } else {
                cc.find(base)
            };
            if let Some(block) = hit {
                let off = t.abs.0 & (CONTEXT_WORDS - 1);
                self.cc
                    .as_mut()
                    .expect("checked")
                    .write(block, off, w, class);
                return Ok(());
            }
        }
        self.space.write_abs(t.abs, w, kind)?;
        Ok(())
    }

    /// Stores a method result through its result pointer. The common case
    /// — a LIFO return storing into the *caller's* context — is resolved
    /// against the shadow stack's pretranslated base instead of paying a
    /// translation; anything else (heap result cells, rewritten pointers,
    /// the reference baseline) takes the general coherent write.
    fn store_result(&mut self, p: Fpa, value: Word, class: ClassId) -> Result<(), MachineError> {
        if !self.reference {
            if let Some(frame) = self.shadow.last() {
                let seg = frame.reg.fpa.segment();
                if p.segment() == seg && p.offset() < CONTEXT_WORDS {
                    // Alignment invariant: context bases are multiples of
                    // the segment capacity, so OR equals ADD.
                    let abs = AbsAddr(frame.reg.abs.0 | p.offset());
                    // Mirror of `mem_write`'s context-target path (the
                    // target is a context, so no escape marking applies).
                    if self.cc.is_some() {
                        let base = AbsAddr(abs.0 & !(CONTEXT_WORDS - 1));
                        let hit = self.cc.as_mut().expect("checked").find(base);
                        if let Some(block) = hit {
                            let off = abs.0 & (CONTEXT_WORDS - 1);
                            self.cc
                                .as_mut()
                                .expect("checked")
                                .write(block, off, value, class);
                            return Ok(());
                        }
                    }
                    self.space.write_abs(abs, value, AllocKind::Context)?;
                    return Ok(());
                }
            }
        }
        self.mem_write(p, value, class)
    }

    // ------------------------------------------------------------------
    // Context allocation / free list
    // ------------------------------------------------------------------

    fn alloc_context(&mut self) -> Result<CtxReg, MachineError> {
        self.stats.contexts_allocated += 1;
        if let Some(mut reg) = self.free_list.pop() {
            // One memory reference pops the free list (§2.3); the block is
            // placed and cleared in the context cache.
            if let Some(cc) = &mut self.cc {
                let (block, ev) = cc.alloc_next(reg.abs);
                self.write_back(ev)?;
                reg.block = Some(block);
            } else {
                self.clear_context_memory(reg.fpa)?;
            }
            return Ok(reg);
        }
        // Pool empty: create a fresh context object.
        let fpa = match self.space.create(
            self.team,
            self.context_class,
            CONTEXT_WORDS,
            AllocKind::Context,
        ) {
            Ok(f) => f,
            Err(MemError::OutOfAbsoluteSpace { .. }) => {
                self.collect_garbage()?;
                self.space.create(
                    self.team,
                    self.context_class,
                    CONTEXT_WORDS,
                    AllocKind::Context,
                )?
            }
            Err(e) => return Err(e.into()),
        };
        let abs = self.space.translate(self.team, fpa)?.abs;
        let block = if let Some(cc) = &mut self.cc {
            let (block, ev) = cc.alloc_next(abs);
            self.write_back(ev)?;
            Some(block)
        } else {
            None
        };
        Ok(CtxReg { fpa, abs, block })
    }

    fn clear_context_memory(&mut self, fpa: Fpa) -> Result<(), MachineError> {
        for off in 0..CONTEXT_WORDS {
            self.space.write_kind(
                self.team,
                fpa.with_offset(off)?,
                Word::Uninit,
                AllocKind::Context,
            )?;
        }
        Ok(())
    }

    fn write_back(&mut self, ev: Option<crate::ctxcache::Eviction>) -> Result<(), MachineError> {
        if let Some(ev) = ev {
            if ev.dirty {
                for (i, (w, _)) in ev.words.iter().enumerate() {
                    self.space
                        .write_abs(ev.abs.offset(i as u64), *w, AllocKind::Context)?;
                }
            }
        }
        Ok(())
    }

    /// Runs the copyback engine if the free vector is low (§2.3). The copy
    /// runs "concurrently with program execution", so no cycles are charged.
    fn maybe_copyback(&mut self) -> Result<(), MachineError> {
        if !self.config.copyback {
            return Ok(());
        }
        let low = self.config.copyback_low_water;
        let reference = self.reference;
        loop {
            let Some(cc) = &mut self.cc else {
                return Ok(());
            };
            let free = if reference {
                // The pre-overhaul low-water check scanned the block array.
                cc.free_count_reference()
            } else {
                cc.free_count()
            };
            if free > low {
                return Ok(());
            }
            let Some(ev) = cc.copyback_victim() else {
                return Ok(());
            };
            // Victim blocks may belong to CP/NCP ancestors; fix block links.
            self.write_back(Some(ev))?;
        }
    }

    // ------------------------------------------------------------------
    // Method residency
    // ------------------------------------------------------------------

    /// Decodes `code` into the slab (or finds it already there) and returns
    /// its slot. The hash probe here is the *cold* path: dispatch caches
    /// the returned slot in the ITLB, so a warm send never reaches this.
    fn ensure_decoded(&mut self, code: Fpa) -> Result<u32, MachineError> {
        let base = code.base();
        // Keyed on the virtual name, not the absolute base: a warm return
        // re-enters the caller's method without a translation.
        if let Some(&id) = self.decoded_index.get(&base.raw()) {
            return Ok(id);
        }
        let d = Arc::new(self.decode_from_memory(code)?);
        let id = u32::try_from(self.decoded.len()).expect("slab outgrew u32");
        self.decoded.push(d);
        self.decoded_index.insert(base.raw(), id);
        Ok(id)
    }

    /// Reads and decodes the code object at `code` from this machine's
    /// object space (the honest path — no shared body available).
    fn decode_from_memory(&mut self, code: Fpa) -> Result<Decoded, MachineError> {
        let base = code.base();
        let t = self.space.translate(self.team, base)?;
        // Header words come from memory, so a corrupted code object may
        // carry any Int here: negative or oversized counts are a malformed
        // method, not a cue to allocate unbounded buffers.
        let header = |m: &mut Self, off: u64| -> Result<i64, MachineError> {
            m.space
                .read_kind(m.team, base.with_offset(off)?, AllocKind::Code)?
                .as_int()
                .ok_or(MachineError::BadMethod(code))
        };
        let n_instrs =
            u64::try_from(header(self, 0)?).map_err(|_| MachineError::BadMethod(code))?;
        let n_args = u8::try_from(header(self, 1)?).map_err(|_| MachineError::BadMethod(code))?;
        let n_consts =
            u64::try_from(header(self, 2)?).map_err(|_| MachineError::BadMethod(code))?;
        // Oversized (but non-negative) counts fail at the first
        // out-of-object read below; cap the pre-reservation so they cannot
        // abort on allocation first.
        let mut instrs = Vec::with_capacity(n_instrs.min(4096) as usize);
        for i in 0..n_instrs {
            let w = self.space.read_kind(
                self.team,
                base.with_offset(CodeObject::HEADER_WORDS + i)?,
                AllocKind::Code,
            )?;
            let payload = w.as_instr().ok_or(MachineError::ExecutingData(w))?;
            instrs.push(Instr::decode(payload)?);
        }
        let mut consts = Vec::with_capacity(n_consts.min(4096) as usize);
        for i in 0..n_consts {
            let w = self.space.read_kind(
                self.team,
                base.with_offset(CodeObject::HEADER_WORDS + n_instrs + i)?,
                AllocKind::Code,
            )?;
            let c = self.class_of_word(&w)?;
            consts.push((w, c));
        }
        let low = instrs
            .iter()
            .map(|i| LowInstr::lower(*i, &consts))
            .collect();
        Ok(Decoded {
            base,
            abs: t.abs,
            body: Arc::new(DecodedBody {
                consts,
                low,
                n_args,
            }),
        })
    }

    /// Decodes a synthesized entry method into the machine's reusable
    /// entry slab slot (creating the slot on first use), so repeated sends
    /// do not grow the slab. Mirrors what [`method_slot`](Self::method_slot)
    /// would record on both the overhauled and reference residency paths.
    fn install_entry(&mut self, code: Fpa) -> Result<u32, MachineError> {
        let base = code.base();
        let d = Arc::new(self.decode_from_memory(code)?);
        let abs = d.abs;
        let id = match self.entry_slab {
            Some(slot) => {
                self.decoded[slot as usize] = d;
                slot
            }
            None => {
                let id = u32::try_from(self.decoded.len()).expect("slab outgrew u32");
                self.decoded.push(d);
                self.entry_slab = Some(id);
                id
            }
        };
        self.decoded_index.insert(base.raw(), id);
        if self.reference {
            self.methods_reference.insert(abs.0, id);
        }
        Ok(id)
    }

    /// Releases the previous send's synthesized entry method, if any: the
    /// code object loses its GC root (the collector may reclaim it) and
    /// the decode caches are purged so a later code object recycling the
    /// swept segment's name cannot hit the stale decode. Runs when a send
    /// halts and again defensively at the next [`start_send`]
    /// (covering sends that ended in a trap instead of a halt).
    ///
    /// [`start_send`]: Self::start_send
    fn release_entry(&mut self) {
        if let Some(base) = self.entry_base.take() {
            if let Some(pos) = self.code_roots.iter().rposition(|f| *f == base) {
                self.code_roots.swap_remove(pos);
            }
            if let Some(id) = self.decoded_index.remove(&base.base().raw()) {
                let abs = self.decoded[id as usize].abs;
                self.methods_reference.remove(&abs.0);
            }
        }
    }

    /// Number of code objects currently pinned as GC roots (observability
    /// for the repeated-send leak regression tests: this must not grow
    /// across completed sends).
    pub fn code_root_count(&self) -> usize {
        self.code_roots.len()
    }

    /// The decoded method at slab slot `id`.
    #[inline]
    fn slab_entry(&self, id: u32) -> (Fpa, AbsAddr, Arc<Decoded>) {
        let d = &self.decoded[id as usize];
        (d.base, d.abs, Arc::clone(d))
    }

    /// The slab slot for `code`, through the configured residency path:
    /// the overhauled index, or the pre-overhaul translate + SipHash map
    /// sequence (reference baseline).
    fn method_slot(&mut self, code: Fpa) -> Result<u32, MachineError> {
        if !self.reference {
            return self.ensure_decoded(code);
        }
        // The pre-overhaul sequence: translate the base, then probe the
        // residency map keyed on the absolute address.
        let base = code.base();
        let t = self.space.translate(self.team, base)?;
        if let Some(&id) = self.methods_reference.get(&t.abs.0) {
            return Ok(id);
        }
        let id = self.ensure_decoded(code)?;
        self.methods_reference.insert(t.abs.0, id);
        Ok(id)
    }

    /// Installs a new current method, invalidating the threaded loop's
    /// borrowed decode.
    #[inline]
    fn set_ip(&mut self, f: Fpa, a: AbsAddr, d: Arc<Decoded>) {
        self.ip = Some((f, a, d));
        self.ip_gen = self.ip_gen.wrapping_add(1);
    }

    // ------------------------------------------------------------------
    // Operand fetch
    // ------------------------------------------------------------------

    fn fetch_operand(&mut self, op: Operand) -> Result<(Word, ClassId), MachineError> {
        match op {
            Operand::Cur(o) => self.ctx_read(false, o as u64),
            Operand::Next(o) => self.ctx_read(true, o as u64),
            Operand::Const(i) => {
                let (_, _, d) = self.ip.as_ref().ok_or(MachineError::NoContext)?;
                d.body
                    .consts
                    .get(i as usize)
                    .copied()
                    .ok_or(MachineError::ConstOutOfRange { index: i })
            }
        }
    }

    /// Absolute address of a context-slot operand, for hazard tracking.
    fn operand_abs(&self, op: Operand) -> Option<(AbsAddr, u64)> {
        match op {
            Operand::Cur(o) => self.cp.map(|r| (r.abs, o as u64 + OPERAND_BIAS)),
            Operand::Next(o) => self.ncp.map(|r| (r.abs, o as u64 + OPERAND_BIAS)),
            Operand::Const(_) => None,
        }
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    /// Installs a dispatch observer: `f` is invoked with the current
    /// method, program counter, and ITLB key for every instruction
    /// dispatch on both interpreter paths.
    pub fn set_dispatch_observer(&mut self, f: impl FnMut(DispatchEvent) + Send + 'static) {
        self.observer = Some(DispatchObserver(Box::new(f)));
    }

    /// Removes any installed dispatch observer.
    pub fn clear_dispatch_observer(&mut self) {
        self.observer = None;
    }

    /// Code base capabilities of the loaded methods, in image order
    /// (entry-send methods synthesized later are appended after them).
    /// Lets analysis tooling map a [`DispatchEvent::method`] capability
    /// back to a `ProgramImage` method index.
    pub fn code_roots(&self) -> &[Fpa] {
        &self.code_roots
    }

    #[cold]
    fn observe_dispatch(&mut self, key: ItlbKey) {
        let method = match &self.ip {
            Some((f, _, _)) => *f,
            None => return,
        };
        let pc = self.pc;
        if let Some(obs) = &mut self.observer {
            (obs.0)(DispatchEvent { method, pc, key });
        }
    }

    /// Warms the ITLB from statically predicted dispatch keys (e.g. the
    /// monomorphic send sites in a `com-verify` facts artifact). Each
    /// key runs the same full-association lookup a real miss would run
    /// and, when it lands on a method, is filled into the buffer — so a
    /// pre-seeded entry is bit-identical to what the first genuine
    /// dispatch would have cached. Keys that do not resolve (unknown
    /// selector, chain cycle, undecodable code) are skipped. Returns
    /// the number of entries filled. No lookup statistics are charged:
    /// pre-seeding models boot-time cache warming, not execution.
    pub fn preseed_itlb(&mut self, keys: &[ItlbKey]) -> usize {
        if self.itlb.is_none() {
            return 0;
        }
        let mut filled = 0;
        for key in keys {
            let out = lookup_method(&self.classes, key.classes[0], key.opcode);
            if out.cycle {
                continue;
            }
            let Some(mut m) = out.method else { continue };
            if let MethodRef::Defined(d) = m {
                if !d.is_resolved() {
                    match self.ensure_decoded(d.code) {
                        Ok(id) => m = MethodRef::Defined(d.resolved(id)),
                        Err(_) => continue,
                    }
                }
            }
            if let Some(itlb) = &mut self.itlb {
                itlb.fill(*key, m);
                filled += 1;
            }
        }
        filled
    }

    fn resolve(&mut self, key: ItlbKey) -> Result<MethodRef, MachineError> {
        if let Some(itlb) = &mut self.itlb {
            if let Some(m) = itlb.lookup(key) {
                return Ok(m);
            }
        }
        // Full association: "a step which always occurs in the execution of
        // Smalltalk" when the buffer misses.
        let out = lookup_method(&self.classes, key.classes[0], key.opcode);
        self.stats.full_lookups += 1;
        self.stats.lookup_cycles += out.cost_cycles(self.config.lookup_cost);
        if out.cycle {
            return Err(MachineError::ClassChainCycle {
                opcode: key.opcode,
                class: key.classes[0],
            });
        }
        let mut m = out.method.ok_or(MachineError::DoesNotUnderstand {
            opcode: key.opcode,
            class: key.classes[0],
        })?;
        // Resolve defined methods to their decoded-slab slot before caching,
        // so a later translation hit reaches code by one array index.
        if let MethodRef::Defined(d) = m {
            if !d.is_resolved() {
                let id = self.ensure_decoded(d.code)?;
                m = MethodRef::Defined(d.resolved(id));
            }
        }
        if let Some(itlb) = &mut self.itlb {
            itlb.fill(key, m);
        }
        Ok(m)
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::Halted`] when the program returns from its
    /// entry send, or any trap raised during execution.
    pub fn step(&mut self) -> Result<(), MachineError> {
        if let Some(w) = self.halted {
            return Err(MachineError::Halted(w));
        }
        let (method_fpa, method_abs, decoded) = match &self.ip {
            Some((f, a, d)) => (*f, *a, Arc::clone(d)),
            None => return Err(MachineError::NoContext),
        };
        if self.pc >= decoded.body.low.len() as u64 {
            return Err(MachineError::BadMethod(method_fpa));
        }
        // Step 1: fetch through the instruction cache.
        if let Some(ic) = &mut self.icache {
            let addr = method_abs.0 + CodeObject::HEADER_WORDS + self.pc;
            if !ic.probe(addr) {
                self.stats.icache_miss_cycles += self.config.icache_miss_penalty;
            }
        }
        let instr = decoded.body.low[self.pc as usize].instr;
        self.stats.instructions += 1;
        self.stats.base_cycles += 2;
        self.steps += 1;

        // Hazard check (§3.6): the compiler must not read the previous
        // instruction's destination.
        if let Some(last) = self.last_dest {
            let hazard = instr
                .sources()
                .iter()
                .filter_map(|s| self.operand_abs(*s))
                .any(|loc| loc == last);
            if hazard {
                if self.config.strict_hazards {
                    return Err(MachineError::Hazard { pc: self.pc });
                }
                self.stats.interlock_cycles += 1;
            }
        }
        self.last_dest = None;

        // Step 2: operand fetch (values + class tags).
        let (b, c, key) = match instr {
            Instr::Three { op, b, c, .. } => {
                let bv = self.fetch_operand(b)?;
                let cv = self.fetch_operand(c)?;
                (bv, cv, ItlbKey::binary(op, bv.1, cv.1))
            }
            Instr::Zero { op, nargs, .. } => {
                // Implicit operands: arg1 (receiver) and arg2 in the next
                // context. Dispatch still keys on the receiver's class even
                // for nargs = 0 sends (the receiver slot is always arg1).
                let bv = self.ctx_read(true, 1)?;
                let cv = if nargs >= 2 {
                    self.ctx_read(true, 2)?
                } else {
                    (Word::Uninit, ClassId::NONE)
                };
                let key = if nargs >= 2 {
                    ItlbKey::binary(op, bv.1, cv.1)
                } else {
                    ItlbKey::unary(op, bv.1)
                };
                (bv, cv, key)
            }
        };
        if self.observer.is_some() {
            self.observe_dispatch(key);
        }

        // Step 3: translate through the ITLB (or pay full lookup), then
        // steps 4-5: perform the operation / method call, store results.
        // A failed translation is offered to software trap dispatch
        // before it is allowed to kill the send.
        match self.resolve(key) {
            Ok(MethodRef::Primitive(p)) => self.exec_primitive(instr, p, b, c)?,
            Ok(MethodRef::Defined(d)) => self.do_call(instr, d, b, c)?,
            Err(e) => self.trap_dispatch(instr, b, c, e)?,
        }

        if let Some(kind) = self.gc_due(self.steps) {
            self.collect_garbage_kind(kind)?;
        }
        self.maybe_copyback()?;
        if let Some(w) = self.halted {
            return Err(MachineError::Halted(w));
        }
        Ok(())
    }

    fn truthy(&self, w: Word) -> Result<bool, MachineError> {
        match w {
            Word::Atom(a) => AtomTable::truthiness(a).ok_or(MachineError::BadBranchCondition(w)),
            Word::Int(i) => Ok(i != 0),
            other => Err(MachineError::BadBranchCondition(other)),
        }
    }

    fn exec_primitive(
        &mut self,
        instr: Instr,
        p: PrimOp,
        b: (Word, ClassId),
        c: (Word, ClassId),
    ) -> Result<(), MachineError> {
        let opcode = instr.opcode();
        let bad = |reason: &'static str| MachineError::BadOperands { opcode, reason };
        match p {
            PrimOp::Fjmp | PrimOp::Rjmp => {
                let taken = self.truthy(b.0)?;
                // The displacement is an unsigned magnitude (direction is
                // the opcode); a negative Int here is malformed code, not a
                // huge forward jump.
                let disp =
                    c.0.as_int()
                        .filter(|d| *d >= 0)
                        .ok_or_else(|| bad("jump displacement must be a non-negative integer"))?
                        as u64;
                if taken {
                    self.stats.taken_branches += 1;
                    self.stats.branch_delay_cycles += 1;
                    if p == PrimOp::Fjmp {
                        self.pc = (self.pc + 1)
                            .checked_add(disp)
                            .ok_or_else(|| bad("forward jump target overflows"))?;
                    } else {
                        let target = (self.pc + 1)
                            .checked_sub(disp)
                            .ok_or_else(|| bad("backward jump before method start"))?;
                        self.pc = target;
                    }
                } else {
                    self.pc += 1;
                }
                Ok(())
            }
            PrimOp::Xfer => self.do_xfer(instr),
            PrimOp::At => {
                self.stats.memory_op_cycles += self.config.memory_penalty;
                let ptr =
                    b.0.as_ptr()
                        .ok_or_else(|| bad("at: requires an object pointer"))?;
                let idx =
                    c.0.as_int()
                        .ok_or_else(|| bad("at: requires an integer index"))?;
                if idx < 0 {
                    return Err(bad("at: index is negative"));
                }
                let addr = self.index_addr(ptr, idx as u64)?;
                let v = self.mem_read(addr)?;
                self.write_result(instr, v.0, v.1)
            }
            PrimOp::AtPut => {
                self.stats.memory_op_cycles += self.config.memory_penalty;
                // a at: b put: c — A holds the value (read, not written).
                let (value, vclass) = match instr {
                    Instr::Three { a, .. } => self.fetch_operand(a)?,
                    Instr::Zero { .. } => return Err(bad("at:put: needs three operands")),
                };
                let ptr =
                    b.0.as_ptr()
                        .ok_or_else(|| bad("at:put: requires an object pointer"))?;
                let idx =
                    c.0.as_int()
                        .ok_or_else(|| bad("at:put: requires an integer index"))?;
                if idx < 0 {
                    return Err(bad("at:put: index is negative"));
                }
                let addr = self.index_addr(ptr, idx as u64)?;
                self.mem_write(addr, value, vclass)?;
                if instr.returns() {
                    self.do_return()?;
                } else {
                    self.pc += 1;
                }
                self.last_dest = None;
                Ok(())
            }
            PrimOp::Movea => {
                let target = match instr {
                    Instr::Three { b: src, .. } => src,
                    Instr::Zero { .. } => return Err(bad("movea needs operands")),
                };
                let ptr = match target {
                    Operand::Cur(o) => {
                        let r = self.ctx_reg(false)?;
                        r.fpa.with_offset(o as u64 + OPERAND_BIAS)?
                    }
                    Operand::Next(o) => {
                        let r = self.ctx_reg(true)?;
                        r.fpa.with_offset(o as u64 + OPERAND_BIAS)?
                    }
                    Operand::Const(_) => return Err(bad("movea of a constant")),
                };
                self.write_result(instr, Word::Ptr(ptr), self.context_class)
            }
            PrimOp::New => {
                self.stats.memory_op_cycles += self.config.memory_penalty;
                let class = ClassId(
                    b.0.as_int()
                        .ok_or_else(|| bad("new requires an integer class id"))?
                        as u16,
                );
                if self.classes.get(class).is_none() {
                    return Err(bad("new of an unknown class"));
                }
                let words =
                    c.0.as_int()
                        .ok_or_else(|| bad("new requires an integer size"))?;
                if words < 0 {
                    return Err(bad("new with negative size"));
                }
                let obj = match self
                    .space
                    .create(self.team, class, words as u64, AllocKind::Object)
                {
                    Ok(o) => o,
                    Err(MemError::OutOfAbsoluteSpace { .. }) => {
                        self.collect_garbage()?;
                        self.space
                            .create(self.team, class, words as u64, AllocKind::Object)?
                    }
                    Err(e) => return Err(e.into()),
                };
                self.write_result(instr, Word::Ptr(obj), class)
            }
            PrimOp::Grow => {
                self.stats.memory_op_cycles += self.config.memory_penalty;
                let ptr =
                    b.0.as_ptr()
                        .ok_or_else(|| bad("grow requires an object pointer"))?;
                let words =
                    c.0.as_int()
                        .ok_or_else(|| bad("grow requires an integer size"))?;
                if words < 0 {
                    return Err(bad("grow with negative size"));
                }
                let new = self.space.grow(self.team, ptr.base(), words as u64)?;
                let class = self.space.class_of(self.team, new)?;
                self.write_result(instr, Word::Ptr(new), class)
            }
            PrimOp::TagAs => {
                if !self.privileged {
                    return Err(MachineError::Privileged);
                }
                let code =
                    c.0.as_int()
                        .ok_or_else(|| bad("as: requires an integer tag code"))?;
                let v = match (b.0, code) {
                    (Word::Int(x), 3) => Word::Atom(com_mem::AtomId(x as u32)),
                    (Word::Int(x), 5) => {
                        let f =
                            Fpa::from_raw(x as u64, self.config.format).map_err(MemError::from)?;
                        Word::Ptr(f)
                    }
                    (Word::Atom(a), 1) => Word::Int(a.0 as i64),
                    (Word::Ptr(f), 1) => Word::Int(f.raw() as i64),
                    _ => return Err(bad("unsupported retagging")),
                };
                let class = self.class_of_word(&v)?;
                self.write_result(instr, v, class)
            }
            // Pure data operations. A function-unit operand trap is
            // offered to software trap dispatch (an installed
            // `badOperands:` handler) before it kills the send.
            other => {
                let v = match crate::exec::data_op(other, opcode, b.0, c.0) {
                    Ok(v) => v,
                    Err(e) => return self.trap_dispatch(instr, b, c, e),
                };
                let class = self.class_of_word(&v)?;
                self.write_result(instr, v, class)
            }
        }
    }

    /// Stores a primitive result per the instruction's format, performing
    /// the return sequence when the return bit is set.
    fn write_result(
        &mut self,
        instr: Instr,
        value: Word,
        class: ClassId,
    ) -> Result<(), MachineError> {
        if instr.returns() {
            // "When a method completes it is expected to place its result
            // (if any) at the address specified by the first operand": the
            // A slot holds the result pointer; indirect through it.
            if let Instr::Three { a, .. } = instr {
                let (ptr_w, _) = self.fetch_operand(a)?;
                match ptr_w {
                    Word::Ptr(p) => self.store_result(p, value, class)?,
                    // No result expected (result pointer never set).
                    Word::Uninit => {}
                    other => {
                        return Err(MachineError::BadOperands {
                            opcode: instr.opcode(),
                            reason: "result pointer slot does not hold a pointer",
                        })
                        .inspect_err(|_e| {
                            let _ = other;
                        })
                    }
                }
            }
            self.do_return()?;
            self.last_dest = None;
            return Ok(());
        }
        match instr {
            Instr::Three { a, .. } => {
                match a {
                    Operand::Cur(o) => self.ctx_write(false, o as u64, value, class)?,
                    Operand::Next(o) => self.ctx_write(true, o as u64, value, class)?,
                    // Both the constructors and decode refuse constant-mode
                    // destinations; a typed trap keeps even a hand-built
                    // Instr from panicking the engine.
                    Operand::Const(_) => {
                        return Err(MachineError::BadOperands {
                            opcode: instr.opcode(),
                            reason: "constant-mode destination",
                        })
                    }
                }
                self.last_dest = self.operand_abs(a);
            }
            Instr::Zero { .. } => {
                return Err(MachineError::BadOperands {
                    opcode: instr.opcode(),
                    reason: "zero-address primitive without return bit has no destination",
                });
            }
        }
        self.pc += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Calls, returns, transfers
    // ------------------------------------------------------------------

    fn do_call(
        &mut self,
        instr: Instr,
        d: DefinedMethod,
        b: (Word, ClassId),
        c: (Word, ClassId),
    ) -> Result<(), MachineError> {
        self.do_call_impl(instr, d, b, c, false)
    }

    /// Calls a software trap handler in place of the faulting instruction:
    /// like [`do_call`](Self::do_call), but the argument register (arg2 of
    /// the handler's context) carries the reified trap message instead of
    /// the faulting instruction's C operand.
    fn do_call_reified(
        &mut self,
        instr: Instr,
        d: DefinedMethod,
        b: (Word, ClassId),
        msg: (Word, ClassId),
    ) -> Result<(), MachineError> {
        self.do_call_impl(instr, d, b, msg, true)
    }

    fn do_call_impl(
        &mut self,
        instr: Instr,
        d: DefinedMethod,
        b: (Word, ClassId),
        c: (Word, ClassId),
        reified: bool,
    ) -> Result<(), MachineError> {
        // Operand copy (automatic argument transmission, §3.5): arg0 is the
        // effective address of A, arg1 = B, arg2 = C. The B and C values
        // were already fetched for dispatch; the hardware copies them from
        // the operand buses rather than re-reading the context.
        let copied: u64 = match instr {
            Instr::Three { a, .. } => {
                let result_ptr = {
                    let r = match a {
                        Operand::Cur(_) => self.cp.as_ref(),
                        Operand::Next(_) => self.ncp.as_ref(),
                        Operand::Const(_) => unreachable!("validated at construction"),
                    }
                    .ok_or(MachineError::NoContext)?;
                    let o = match a {
                        Operand::Cur(o) | Operand::Next(o) => o,
                        Operand::Const(_) => unreachable!("validated at construction"),
                    };
                    Word::Ptr(r.fpa.with_offset(o as u64 + OPERAND_BIAS)?)
                };
                // The pre-overhaul call sequence re-read both source
                // operands here; the baseline keeps that cost. A reified
                // handler call must not re-read: its argument register is
                // the trap message, not the faulting C operand.
                let (b, c) = if self.reference && !reified {
                    if let Instr::Three { b: bo, c: co, .. } = instr {
                        (self.fetch_operand(bo)?, self.fetch_operand(co)?)
                    } else {
                        (b, c)
                    }
                } else {
                    (b, c)
                };
                let arg0 = (result_ptr, self.context_class);
                if self.cc.is_some() {
                    let block = match self.ncp.as_ref() {
                        Some(r) => r.block.expect("vector contexts are resident"),
                        None => return Err(MachineError::NoContext),
                    };
                    self.cc
                        .as_mut()
                        .expect("checked")
                        .write_linkage(block, arg0, b, c);
                } else {
                    self.ctx_write_raw(true, CTX_ARG0, arg0.0, arg0.1)?;
                    self.ctx_write_raw(true, CTX_ARG1, b.0, b.1)?;
                    self.ctx_write_raw(true, CTX_ARG1 + 1, c.0, c.1)?;
                }
                3
            }
            // Programmer placed arguments already — except for a reified
            // handler call, whose trap message replaces the argument
            // register (one operand copied into the handler's context).
            Instr::Zero { .. } => {
                if reified {
                    self.ctx_write_raw(true, CTX_ARG1 + 1, c.0, c.1)?;
                    1
                } else {
                    0
                }
            }
        };
        self.stats.calls += 1;
        // One cycle to flush the prefetched instruction, one for the
        // linkage operations (§3.6), one per operand copied.
        self.stats.call_linkage_cycles += 2;
        self.stats.operand_copy_cycles += copied;

        // Store the continuation into the current context.
        let (method_fpa, _, _) = self.ip.as_ref().ok_or(MachineError::NoContext)?;
        let rip = method_fpa.with_offset(CodeObject::HEADER_WORDS + self.pc + 1)?;
        self.ctx_write_raw(false, CTX_RIP, Word::Ptr(rip), ClassId::INSTR)?;

        // CP <- NCP; the next context's RCP was set at allocation.
        let new_cp = self.ctx_reg(true)?;
        if !self.reference {
            if let Some(caller) = self.cp {
                self.shadow.push(ShadowFrame {
                    reg: caller,
                    rip,
                    slab: self.cur_slab,
                });
            }
        }
        self.cp = Some(new_cp);
        if let Some(cc) = &mut self.cc {
            cc.set_current(new_cp.block);
            cc.set_next(None);
        }
        // Allocate the new next context ("any NCP relative accesses will be
        // held up until the new context is available").
        let mut next = self.alloc_context()?;
        if let Some(cc) = &mut self.cc {
            next.block = cc.next();
        }
        self.ncp = Some(next);
        self.ctx_write_raw(true, CTX_RCP, Word::Ptr(new_cp.fpa), self.context_class)?;

        // IP <- first instruction of the method. A slab-resolved reference
        // (the warm path: every ITLB hit) is one array index; only an
        // unresolved dictionary reference pays the decode/index probe. The
        // reference baseline always pays the pre-overhaul translate+map
        // sequence instead.
        let id = if d.is_resolved() && !self.reference {
            d.slab
        } else {
            self.method_slot(d.code)?
        };
        let (f, a, dec) = self.slab_entry(id);
        self.set_ip(f, a, dec);
        self.cur_slab = id;
        self.pc = 0;
        self.last_dest = None;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Software trap dispatch
    // ------------------------------------------------------------------

    /// Software trap dispatch — the paper's §2.1 position that type
    /// errors "are handled in software via message dispatch" rather than
    /// killing the program. When a send fails to resolve
    /// ([`MachineError::DoesNotUnderstand`]) or a function unit refuses
    /// its operands ([`MachineError::BadOperands`]), and the receiver's
    /// class chain installs the matching [`TrapSelector`] handler method
    /// (`doesNotUnderstand:` / `badOperands:`), the faulting operation is
    /// reified into a message object and the handler is called in its
    /// place: the handler's answer lands where the faulting operation's
    /// result would have gone (its arg0 is the faulting instruction's
    /// result pointer) and execution continues at the next instruction.
    ///
    /// Shared verbatim by [`step`](Self::step) and the threaded
    /// [`run`](Self::run) loop, so dispatch behaviour and every charged
    /// cycle are bit-identical between the two.
    ///
    /// The original trap propagates unchanged when:
    /// * the trap is any other kind (machine-integrity conditions);
    /// * the faulting instruction has the return bit set (its
    ///   continuation — store *and* return — is not representable as a
    ///   handler continuation);
    /// * the handler selector was never interned, or no class on the
    ///   receiver's chain defines it (the chain walk, when it happens, is
    ///   charged like any full lookup);
    /// * the handler resolves to a primitive (cannot accept a message).
    fn trap_dispatch(
        &mut self,
        instr: Instr,
        b: (Word, ClassId),
        c: (Word, ClassId),
        e: MachineError,
    ) -> Result<(), MachineError> {
        let kind = match &e {
            MachineError::DoesNotUnderstand { .. } => TrapSelector::DoesNotUnderstand,
            MachineError::BadOperands { .. } => TrapSelector::BadOperands,
            _ => return Err(e),
        };
        if instr.returns() {
            return Err(e);
        }
        let Some(handler_sel) = self.opcodes.get(kind.name()) else {
            return Err(e);
        };
        let (handler, out) = lookup_trap_handler(&self.classes, b.1, handler_sel);
        self.stats.full_lookups += 1;
        self.stats.lookup_cycles += out.cost_cycles(self.config.lookup_cost);
        if out.cycle {
            return Err(MachineError::ClassChainCycle {
                opcode: handler_sel,
                class: b.1,
            });
        }
        let Some(handler) = handler else {
            return Err(e);
        };
        let nargs = match instr {
            Instr::Three { .. } => 2u8,
            Instr::Zero { nargs, .. } => nargs,
        };
        let msg = self.reify_message(instr.opcode(), nargs, c)?;
        self.stats.soft_traps += 1;
        self.do_call_reified(instr, handler, b, msg)
    }

    /// Reifies a faulting operation into a three-word message object —
    /// `[selector opcode, nargs, argument]` — for a software trap
    /// handler. Charged as one memory operation (like `new`).
    ///
    /// The message records what the *instruction* transmitted, which is
    /// all this layer can see:
    ///
    /// * word 1 (`nargs`) counts operand-register arguments including
    ///   the receiver — the encoded count for a zero-format send, and
    ///   always 2 for a three-address send, whose B and C buses always
    ///   carry values. A source-level *unary* send compiled to
    ///   three-address form duplicates the receiver on C (compiler
    ///   convention, §3.5), so its message reads `nargs = 2` with the
    ///   receiver as the argument word.
    /// * word 2 is the faulting instruction's C operand (Uninit for a
    ///   one-operand zero-format send). Extra arguments of a send that
    ///   staged them into the next context stay readable in the
    ///   handler's own context slots 3.., which *are* the faulting
    ///   send's argument slots.
    fn reify_message(
        &mut self,
        opcode: Opcode,
        nargs: u8,
        arg: (Word, ClassId),
    ) -> Result<(Word, ClassId), MachineError> {
        self.stats.memory_op_cycles += self.config.memory_penalty;
        let msg = match self
            .space
            .create(self.team, ClassTable::OBJECT, 3, AllocKind::Object)
        {
            Ok(o) => o,
            Err(MemError::OutOfAbsoluteSpace { .. }) => {
                self.collect_garbage()?;
                self.space
                    .create(self.team, ClassTable::OBJECT, 3, AllocKind::Object)?
            }
            Err(e) => return Err(e.into()),
        };
        self.mem_write(msg, Word::Int(opcode.0 as i64), ClassId::SMALL_INT)?;
        self.mem_write(
            msg.with_offset(1)?,
            Word::Int(nargs as i64),
            ClassId::SMALL_INT,
        )?;
        self.mem_write(msg.with_offset(2)?, arg.0, arg.1)?;
        Ok((Word::Ptr(msg), ClassTable::OBJECT))
    }

    fn do_return(&mut self) -> Result<(), MachineError> {
        self.stats.returns += 1;
        let callee = self.ctx_reg(false)?;
        let (rcp, _) = self.ctx_read_raw(false, CTX_RCP)?;
        let caller_fpa = match rcp {
            Word::Ptr(p) => p,
            // RCP never set: returning from the entry send — halt. The
            // send is over, so its synthesized entry method is released
            // (un-rooted and purged) here.
            _ => {
                let result = match self.result_cell {
                    Some(cell) => self.mem_read(cell)?.0,
                    None => Word::Uninit,
                };
                self.halted = Some(result);
                self.release_entry();
                return Ok(());
            }
        };

        let old_ncp = self.ncp;
        let callee_escaped =
            !self.escaped.is_empty() && self.escaped.contains(&callee.fpa.segment());

        if callee_escaped || !self.config.eager_lifo_free {
            // Non-LIFO (or eager freeing disabled): the callee survives for
            // the garbage collector; keep the pre-allocated next context.
            if !self.config.eager_lifo_free && !callee_escaped {
                self.stats.contexts_left_to_gc += 1;
            }
        } else {
            // LIFO: recycle the callee as the next context and return the
            // pre-allocated next to the free list (explicit free, §2.3).
            if let Some(ncp) = old_ncp {
                if let Some(cc) = &mut self.cc {
                    match ncp.block {
                        // The pre-allocated next is still resident in its
                        // block; skip the directory probe.
                        Some(b) if !self.reference && cc.block_abs(b) == Some(ncp.abs) => {
                            cc.release_block(b)
                        }
                        _ => cc.release(ncp.abs),
                    }
                }
                self.free_list.push(CtxReg { block: None, ..ncp });
                self.stats.contexts_freed_lifo += 1;
            }
            let mut recycled = callee;
            if let Some(cc) = &mut self.cc {
                let block = callee.block.expect("current context resident");
                cc.recycle_as_next(block);
                recycled.block = Some(block);
            } else {
                self.clear_context_memory(callee.fpa)?;
            }
            self.ncp = Some(recycled);
        }

        // CP <- RCP: the caller may have been copied back; fault it in.
        // A LIFO return finds the caller's pretranslated base (and its
        // method's slab slot) on the shadow stack; anything else (xfer
        // games, RCP rewritten through memory, the reference baseline)
        // misses the memo and pays the translation.
        let frame = match self.shadow.pop() {
            Some(f) if f.reg.fpa == caller_fpa => Some(f),
            Some(_) => {
                self.shadow.clear();
                None
            }
            None => None,
        };
        let caller_abs = match frame {
            Some(f) => f.reg.abs,
            None => self.space.translate(self.team, caller_fpa)?.abs,
        };
        let reference = self.reference;
        // The memoized caller block is still valid when it caches the same
        // absolute base (copyback may have evicted it mid-call); then the
        // directory need not be consulted at all.
        let memo_block = match (&frame, reference) {
            (Some(f), false) => f.reg.block.filter(|b| {
                self.cc
                    .as_ref()
                    .is_some_and(|cc| cc.block_abs(*b) == Some(caller_abs))
            }),
            _ => None,
        };
        let caller_block = if let Some(b) = memo_block {
            Some(b)
        } else if let Some(cc) = &mut self.cc {
            let hit = if reference {
                cc.find_reference(caller_abs)
            } else {
                cc.find(caller_abs)
            };
            match hit {
                Some(bi) => Some(bi),
                None => {
                    // Context cache miss: fault the caller in from memory.
                    self.stats.ctx_fault_cycles += self.config.ctx_fault_penalty;
                    let mut words = Vec::with_capacity(CONTEXT_WORDS as usize);
                    for off in 0..CONTEXT_WORDS {
                        let w = self
                            .space
                            .read_abs(caller_abs.offset(off), AllocKind::Context)?;
                        let c = self.class_of_word(&w)?;
                        words.push((w, c));
                    }
                    let cc = self.cc.as_mut().expect("checked");
                    let (bi, ev) = cc.install(caller_abs, words);
                    self.write_back(ev)?;
                    Some(bi)
                }
            }
        } else {
            None
        };
        let caller = CtxReg {
            fpa: caller_fpa,
            abs: caller_abs,
            block: caller_block,
        };
        self.cp = Some(caller);
        if let Some(cc) = &mut self.cc {
            cc.set_current(caller_block);
        }
        if callee_escaped || !self.config.eager_lifo_free {
            // Refresh the next vector (it was untouched but the cc vectors
            // may have been disturbed by the fault path).
            if let (Some(cc), Some(ncp)) = (&mut self.cc, old_ncp) {
                cc.set_next(ncp.block);
            }
        }
        // Whether recycled or kept, the next context's RCP must name the
        // context control just returned into — it was linked to the (now
        // defunct) callee when it was allocated.
        self.ctx_write_raw(true, CTX_RCP, Word::Ptr(caller_fpa), self.context_class)?;

        // IP <- caller's RIP. When the continuation matches the memoized
        // frame, the caller's method is re-entered by slab index; any
        // divergence (the program rewrote its RIP) decodes the honest way.
        let (rip, _) = self.ctx_read_raw(false, CTX_RIP)?;
        let rip = rip.as_ptr().ok_or(MachineError::NoContext)?;
        let pc = rip.offset() - CodeObject::HEADER_WORDS;
        let id = match frame {
            Some(f) if f.rip == rip && (f.slab as usize) < self.decoded.len() => f.slab,
            _ => self.method_slot(rip.base())?,
        };
        let (f, a, dec) = self.slab_entry(id);
        self.set_ip(f, a, dec);
        self.cur_slab = id;
        self.pc = pc;
        self.last_dest = None;
        Ok(())
    }

    /// XFER (§5): general control transfer to the next context. The current
    /// continuation is saved; the next context becomes current and its RIP
    /// is resumed; a fresh next context is allocated.
    fn do_xfer(&mut self, _instr: Instr) -> Result<(), MachineError> {
        // General transfer breaks LIFO call discipline: drop the memo.
        self.shadow.clear();
        self.stats.calls += 1;
        self.stats.call_linkage_cycles += 2;
        let (method_fpa, _, _) = self.ip.as_ref().ok_or(MachineError::NoContext)?;
        let rip = method_fpa.with_offset(CodeObject::HEADER_WORDS + self.pc + 1)?;
        self.ctx_write_raw(false, CTX_RIP, Word::Ptr(rip), ClassId::INSTR)?;
        let new_cp = self.ctx_reg(true)?;
        self.cp = Some(new_cp);
        if let Some(cc) = &mut self.cc {
            cc.set_current(new_cp.block);
            cc.set_next(None);
        }
        let mut next = self.alloc_context()?;
        if let Some(cc) = &mut self.cc {
            next.block = cc.next();
        }
        self.ncp = Some(next);
        self.ctx_write_raw(true, CTX_RCP, Word::Ptr(new_cp.fpa), self.context_class)?;
        let (tip, _) = self.ctx_read_raw(false, CTX_RIP)?;
        let tip = tip.as_ptr().ok_or(MachineError::NoContext)?;
        let method = tip.base();
        let pc = tip.offset() - CodeObject::HEADER_WORDS;
        let id = self.method_slot(method)?;
        let (f, a, dec) = self.slab_entry(id);
        self.set_ip(f, a, dec);
        self.cur_slab = id;
        self.pc = pc;
        self.last_dest = None;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Runs a stop-the-world **full** collection (see
    /// [`collect_garbage_kind`](Self::collect_garbage_kind)).
    ///
    /// # Errors
    ///
    /// Propagates memory errors (a failing GC is a machine-fatal event).
    pub fn collect_garbage(&mut self) -> Result<(), MachineError> {
        self.collect_garbage_kind(GcKind::Full)
    }

    /// Runs a stop-the-world collection of the given generation scope:
    /// flush the context cache's dirty blocks (a bounded cost — at most
    /// the cache's block count), mark from the machine roots with every
    /// cache-resident context **pinned**, sweep, then drop stale
    /// bookkeeping.
    ///
    /// Residents are pinned — passed to [`gc::collect`]/
    /// [`gc::collect_minor`] as segments that are marked *and scanned* —
    /// because the context cache is machine state: its blocks may hold the
    /// only pointer to a captured context, stored through the cache's
    /// directory-bypassing write path where no write barrier runs. Without
    /// the pin, a minor collection would never scan a tenured resident
    /// context and would sweep the captured callee it alone references.
    ///
    /// # Errors
    ///
    /// Propagates memory errors (a failing GC is a machine-fatal event).
    pub fn collect_garbage_kind(&mut self, kind: GcKind) -> Result<(), MachineError> {
        // Memory must be coherent before the collector scans contexts.
        if let Some(cc) = &mut self.cc {
            for ev in cc.dirty_blocks() {
                for (i, (w, _)) in ev.words.iter().enumerate() {
                    self.space
                        .write_abs(ev.abs.offset(i as u64), *w, AllocKind::Context)?;
                }
            }
        }
        let mut roots: Vec<Fpa> = Vec::new();
        if let Some(cp) = self.cp {
            roots.push(cp.fpa);
        }
        if let Some(ncp) = self.ncp {
            roots.push(ncp.fpa);
        }
        roots.extend(self.free_list.iter().map(|r| r.fpa));
        roots.extend(self.code_roots.iter().copied());
        if let Some(cell) = self.result_cell {
            roots.push(cell);
        }
        // Pin every cache-resident context.
        let mut pinned: Vec<SegmentName> = Vec::new();
        if let Some(cc) = &self.cc {
            for abs in cc.resident() {
                if let Some(seg) = self.space.segment_at_base(abs) {
                    pinned.push(seg);
                }
            }
        }
        // Swept segment names can be recycled: a stale shadow entry could
        // otherwise validate against a recycled name.
        self.shadow.clear();
        let st = match kind {
            GcKind::Full => gc::collect(&mut self.space, self.team, &roots, &pinned)?,
            GcKind::Minor => gc::collect_minor(&mut self.space, self.team, &roots, &pinned)?,
        };
        self.stats.gc_runs += 1;
        if st.minor {
            self.stats.gc_minor_runs += 1;
        }
        self.stats.gc_cycles += st.cost_cycles();
        self.gc_totals.absorb(&st);
        // Swept names may be recycled; stale escape marks must not leak
        // onto fresh contexts.
        let team = self.team;
        let table_has = |space: &ObjectSpace, seg: &SegmentName| {
            space
                .mmu()
                .team(team)
                .map(|t| t.table.get(*seg).is_some())
                .unwrap_or(false)
        };
        let space_ref = &self.space;
        self.escaped.retain(|seg| table_has(space_ref, seg));
        // Decoded-method cache: code objects are roots, so still live.
        Ok(())
    }

    /// Which periodic collection is due once `step` instructions have
    /// completed, if any. Shared by [`step`](Self::step) and the threaded
    /// [`run`](Self::run) loop so the two charge GC cycles at identical
    /// boundaries; a step on both cadences runs the full collection.
    fn gc_due(&self, step: u64) -> Option<GcKind> {
        for interval in [self.config.gc_interval, self.config.gc_full_interval]
            .into_iter()
            .flatten()
        {
            if step.is_multiple_of(interval) {
                return Some(GcKind::Full);
            }
        }
        if let Some(interval) = self.config.gc_minor_interval {
            if step.is_multiple_of(interval) {
                return Some(GcKind::Minor);
            }
        }
        None
    }

    // ------------------------------------------------------------------
    // Entry
    // ------------------------------------------------------------------

    /// Sends `selector` to `receiver` with `args` and runs to completion.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::UnknownSelector`] if `selector` was never
    /// interned in the loaded image, [`MachineError::StepLimit`] if the
    /// program does not halt in `max_steps` instructions,
    /// [`MachineError::DoesNotUnderstand`] for a selector no class answers,
    /// or any trap the program raises.
    pub fn send(
        &mut self,
        selector: &str,
        receiver: Word,
        args: &[Word],
        max_steps: u64,
    ) -> Result<RunResult, MachineError> {
        let opcode = self.selector(selector)?;
        self.start_send(opcode, receiver, args)?;
        self.run(max_steps)
    }

    /// Resolves a selector name against the loaded image's interning
    /// table — the one place a missing name becomes
    /// [`MachineError::UnknownSelector`] (both [`send`](Self::send) and
    /// the embedding facade route through here).
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::UnknownSelector`] if the name was never
    /// interned.
    pub fn selector(&self, name: &str) -> Result<Opcode, MachineError> {
        self.opcodes
            .get(name)
            .ok_or_else(|| MachineError::UnknownSelector(name.to_string()))
    }

    /// Abandons the current send (in flight, trapped, or completed) and
    /// unwinds the machine to a defined, re-callable state:
    ///
    /// * the synthesized entry method's code root is released;
    /// * the context registers, instruction pointer and result cell drop
    ///   out of the root set, and every context-cache block is released
    ///   (resident contexts are pinned by the collector, and with the
    ///   registers gone their contents are dead — free-list contexts are
    ///   cleared on reuse, so nothing needs writing back);
    /// * the pooled free contexts and stale escape marks are dropped
    ///   (both are per-call-graph state a fresh machine does not have);
    /// * the ITLB and instruction cache **contents** are flushed (their
    ///   cumulative statistics counters are machine history and stay).
    ///
    /// The abandoned call graph is then fully collectable, and the next
    /// [`start_send`](Self::start_send) is indistinguishable from one on
    /// a freshly booted machine: same answers, same [`CycleStats`]
    /// deltas, same heap after a collection. [`run_for`](Self::run_for)
    /// (and [`run_stepwise`](Self::run_stepwise)) route every trap exit
    /// through here, so an unhandled trap can never wedge the machine or
    /// leave the dead call graph rooted.
    pub fn abort_send(&mut self) {
        self.release_entry();
        self.cp = None;
        self.ncp = None;
        self.ip = None;
        self.result_cell = None;
        self.halted = None;
        self.shadow.clear();
        self.last_dest = None;
        self.cur_slab = DefinedMethod::UNRESOLVED;
        self.free_list.clear();
        self.escaped.clear();
        if let Some(cc) = &mut self.cc {
            cc.set_current(None);
            cc.set_next(None);
            for abs in cc.resident() {
                cc.release(abs);
            }
        }
        if let Some(itlb) = &mut self.itlb {
            itlb.flush();
        }
        if let Some(ic) = &mut self.icache {
            ic.clear();
        }
    }

    /// Prepares the bootstrap contexts and entry code for a send, without
    /// running. Useful for single-stepping tests.
    ///
    /// # Errors
    ///
    /// Propagates allocation errors.
    pub fn start_send(
        &mut self,
        selector: Opcode,
        receiver: Word,
        args: &[Word],
    ) -> Result<(), MachineError> {
        self.halted = None;
        self.shadow.clear();
        // A trapped (never-halted) previous send left its entry rooted.
        self.release_entry();
        // A one-word cell receives the program result.
        let cell = self
            .space
            .create(self.team, ClassTable::OBJECT, 1, AllocKind::Object)?;
        self.result_cell = Some(cell);

        // Synthesise the entry method:
        //   0: <selector>/n         (the send)
        //   1: move/0 (ret)         (return-from-entry: halts the machine)
        let nargs = (1 + args.len()).min(2) as u8;
        let entry = CodeObject {
            name: format!("entry>>{selector}"),
            n_args: 1 + args.len() as u8,
            instrs: vec![
                Instr::zero(selector, nargs, false)?,
                Instr::zero(Opcode::MOVE, 0, true)?,
            ],
            consts: vec![],
        };
        let entry_base = entry.store(&mut self.space, self.team)?;
        self.code_roots.push(entry_base);
        self.entry_base = Some(entry_base);

        // Bootstrap contexts: main (current) and the callee's (next).
        let mut main = self.alloc_context()?;
        if let Some(cc) = &mut self.cc {
            main.block = cc.next();
            cc.set_current(main.block);
            cc.set_next(None);
        }
        self.cp = Some(main);
        let mut next = self.alloc_context()?;
        if let Some(cc) = &mut self.cc {
            next.block = cc.next();
        }
        self.ncp = Some(next);
        // main's RCP stays Uninit: returning into it halts the machine.
        self.ctx_write_raw(true, CTX_RCP, Word::Ptr(main.fpa), self.context_class)?;
        self.ctx_write_raw(true, CTX_ARG0, Word::Ptr(cell), ClassTable::OBJECT)?;
        let rclass = self.class_of_word(&receiver)?;
        self.ctx_write_raw(true, CTX_ARG1, receiver, rclass)?;
        for (i, a) in args.iter().enumerate() {
            let c = self.class_of_word(a)?;
            self.ctx_write_raw(true, CTX_ARG1 + 1 + i as u64, *a, c)?;
        }

        let id = self.install_entry(entry_base)?;
        let (f, a, dec) = self.slab_entry(id);
        self.set_ip(f, a, dec);
        self.cur_slab = id;
        self.pc = 0;
        self.last_dest = None;
        Ok(())
    }

    /// Runs until the entry send returns or `max_steps` is exhausted.
    ///
    /// Budget exhaustion surfaces as [`MachineError::StepLimit`]; callers
    /// that want to treat an exhausted budget as a resumable yield rather
    /// than an error should use [`run_for`](Self::run_for), which this
    /// delegates to.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::StepLimit`] on exhaustion or any trap.
    pub fn run(&mut self, max_steps: u64) -> Result<RunResult, MachineError> {
        match self.run_for(max_steps)? {
            RunOutcome::Done(r) => Ok(r),
            RunOutcome::OutOfBudget => Err(MachineError::StepLimit),
        }
    }

    /// Runs for at most `budget` instructions, returning
    /// [`RunOutcome::Done`] when the entry send completes and
    /// [`RunOutcome::OutOfBudget`] when the budget runs out mid-program.
    ///
    /// Exhaustion is **not** an error: every machine invariant (registers,
    /// caches, GC cadence, [`CycleStats`]) is consistent at the yield
    /// point, and a later `run_for` continues exactly where this one
    /// stopped — a program driven by many small budgets produces the same
    /// result and bit-identical statistics as one uninterrupted run. This
    /// is the engine primitive under the `com-vm` facade's resumable
    /// `Session::resume` and its cooperative scheduler.
    ///
    /// This is the *threaded* hot loop: the current decoded method is
    /// borrowed across the inner loop and re-fetched only on control
    /// transfers, operands execute from their decode-time lowered form,
    /// and the per-instruction counters are batched into loop-locals that
    /// flush at run end, trap, or transfer. Architectural behaviour and
    /// statistics are bit-identical to [`run_stepwise`](Self::run_stepwise)
    /// — only wall-clock differs.
    ///
    /// # Errors
    ///
    /// Any trap the program raises — and a trap exit **unwinds**: the
    /// statistics accrued up to the faulting instruction are flushed and
    /// kept, then the machine routes through
    /// [`abort_send`](Self::abort_send), so the trapped call graph is
    /// immediately collectable and the next
    /// [`start_send`](Self::start_send) is indistinguishable from one on
    /// a fresh machine. (Budget exhaustion is a yield, not a trap: the
    /// in-flight call survives and resumes.)
    pub fn run_for(&mut self, budget: u64) -> Result<RunOutcome, MachineError> {
        match self.run_for_inner(budget) {
            Ok(out) => Ok(out),
            Err(e) => {
                self.abort_send();
                Err(e)
            }
        }
    }

    /// [`run_for`](Self::run_for) without the trap-exit unwind: the
    /// threaded loop itself.
    fn run_for_inner(&mut self, budget: u64) -> Result<RunOutcome, MachineError> {
        /// Why an inner threaded segment ended.
        enum SegEnd {
            /// The step budget ran out mid-method.
            Budget,
            /// Control transferred (call/return/xfer): re-fetch the method.
            Transfer,
            /// The program halted.
            Halt,
            /// The periodic garbage collection came due.
            GcDue,
            /// The program counter left the method body.
            BadPc,
            /// A trap unwound execution.
            Trap(MachineError),
        }

        let mut remaining = budget;
        loop {
            if remaining == 0 {
                return Ok(RunOutcome::OutOfBudget);
            }
            if let Some(result) = self.halted {
                return Ok(RunOutcome::Done(RunResult {
                    result,
                    stats: self.stats,
                    steps: self.steps,
                }));
            }
            let (method_fpa, method_abs, dec) = match &self.ip {
                Some((f, a, d)) => (*f, *a, Arc::clone(d)),
                None => return Err(MachineError::NoContext),
            };
            let gen = self.ip_gen;
            let gc_on = self.config.gc_interval.is_some()
                || self.config.gc_minor_interval.is_some()
                || self.config.gc_full_interval.is_some();
            let steps_base = self.steps;
            // Instructions completed against `dec`, not yet in the stats.
            let mut done: u64 = 0;
            let end = loop {
                if done == remaining {
                    break SegEnd::Budget;
                }
                let Some(low) = dec.body.low.get(self.pc as usize) else {
                    break SegEnd::BadPc;
                };
                // Step 1: fetch through the instruction cache.
                if let Some(ic) = &mut self.icache {
                    let addr = method_abs.0 + CodeObject::HEADER_WORDS + self.pc;
                    if !ic.probe(addr) {
                        self.stats.icache_miss_cycles += self.config.icache_miss_penalty;
                    }
                }
                // The instruction issues: it counts even if a later stage
                // traps, exactly as the reference interpreter counts it.
                done += 1;
                if let Err(e) = self.exec_low(low) {
                    break SegEnd::Trap(e);
                }
                if gc_on && self.gc_due(steps_base + done).is_some() {
                    break SegEnd::GcDue;
                }
                if self.ip_gen != gen || self.halted.is_some() {
                    // The reference loop runs the copyback check after
                    // every instruction; here it runs only after control
                    // transfers (and halts). The two are event-identical:
                    // the free-block count only *decreases* via context
                    // allocation and installation, which happen solely in
                    // call/return/xfer (all of which bump `ip_gen`) — so
                    // between transfers the low-water check cannot newly
                    // trip, and the skipped checks were no-ops.
                    if let Err(e) = self.maybe_copyback() {
                        break SegEnd::Trap(e);
                    }
                    break if self.halted.is_some() {
                        SegEnd::Halt
                    } else {
                        SegEnd::Transfer
                    };
                }
            };
            // Flush the batched counters before anything can observe them.
            self.stats.instructions += done;
            self.stats.base_cycles += 2 * done;
            self.steps += done;
            remaining -= done;
            match end {
                SegEnd::Budget | SegEnd::Transfer => {}
                SegEnd::Halt => {
                    let result = self.halted.expect("halt segment end");
                    return Ok(RunOutcome::Done(RunResult {
                        result,
                        stats: self.stats,
                        steps: self.steps,
                    }));
                }
                SegEnd::GcDue => {
                    // Mirrors the reference interpreter's post-instruction
                    // sequence: collect, then copyback, then re-dispatch
                    // (the outer loop re-checks halt).
                    let kind = self.gc_due(self.steps).expect("a collection was due");
                    self.collect_garbage_kind(kind)?;
                    self.maybe_copyback()?;
                }
                SegEnd::BadPc => return Err(MachineError::BadMethod(method_fpa)),
                SegEnd::Trap(e) => return Err(e),
            }
        }
    }

    /// Executes one lowered instruction: hazard check, operand fetch,
    /// ITLB translation, then either the pure-data fast path (function
    /// unit straight to a context slot) or the shared generic paths.
    #[inline(always)]
    fn exec_low(&mut self, low: &LowInstr) -> Result<(), MachineError> {
        // Hazard check (§3.6): an O(1) compare of precomputed slots
        // against the previous instruction's destination.
        if let Some(last) = self.last_dest {
            let mut hazard = false;
            for (next, off) in low.hazards.into_iter().flatten() {
                let reg = if next { self.ncp } else { self.cp };
                if let Some(r) = reg {
                    if (r.abs, off) == last {
                        hazard = true;
                        break;
                    }
                }
            }
            if hazard {
                if self.config.strict_hazards {
                    return Err(MachineError::Hazard { pc: self.pc });
                }
                self.stats.interlock_cycles += 1;
            }
        }
        self.last_dest = None;

        // Step 2: operand fetch (values + class tags).
        let instr = low.instr;
        let (b, c, key) = match instr {
            Instr::Three { op, .. } => {
                let bv = self.read_low(low.b)?;
                let cv = self.read_low(low.c)?;
                (bv, cv, ItlbKey::binary(op, bv.1, cv.1))
            }
            Instr::Zero { op, nargs, .. } => {
                let bv = self.ctx_read(true, 1)?;
                let cv = if nargs >= 2 {
                    self.ctx_read(true, 2)?
                } else {
                    (Word::Uninit, ClassId::NONE)
                };
                let key = if nargs >= 2 {
                    ItlbKey::binary(op, bv.1, cv.1)
                } else {
                    ItlbKey::unary(op, bv.1)
                };
                (bv, cv, key)
            }
        };
        if self.observer.is_some() {
            self.observe_dispatch(key);
        }

        // Step 3: translate through the ITLB (or pay full lookup). A
        // failed translation is offered to software trap dispatch (the
        // same shared path `step` uses) before it kills the send.
        let method = match self.resolve(key) {
            Ok(m) => m,
            Err(e) => return self.trap_dispatch(instr, b, c, e),
        };

        // Steps 4-5: perform the operation, store results.
        match method {
            MethodRef::Primitive(p) => {
                if instr.returns() && is_pure_data(p) && matches!(instr, Instr::Three { .. }) {
                    // Fast return: function unit result through the result
                    // pointer, then the return sequence — the lowered
                    // mirror of `write_result`'s returning branch. An
                    // operand trap propagates directly: `trap_dispatch`
                    // refuses return-fused instructions before charging
                    // anything, so `?` here is exactly equivalent.
                    let v = crate::exec::data_op(p, instr.opcode(), b.0, c.0)?;
                    let class = self.class_of_word(&v)?;
                    let (ptr_w, _) = self.read_low(low.a)?;
                    match ptr_w {
                        Word::Ptr(ptr) => self.store_result(ptr, v, class)?,
                        // No result expected (result pointer never set).
                        Word::Uninit => {}
                        _ => {
                            return Err(MachineError::BadOperands {
                                opcode: instr.opcode(),
                                reason: "result pointer slot does not hold a pointer",
                            })
                        }
                    }
                    self.do_return()?;
                    self.last_dest = None;
                    return Ok(());
                }
                if let Some((dnext, doff)) = low.dest {
                    if is_pure_data(p) {
                        // Fast path: function unit result into a context
                        // slot. Charges exactly what the generic
                        // `exec_primitive` + `write_result` pair charges
                        // for the same instruction: nothing beyond base.
                        // An operand trap takes the same software
                        // dispatch offer the generic path takes.
                        let v = match crate::exec::data_op(p, instr.opcode(), b.0, c.0) {
                            Ok(v) => v,
                            Err(e) => return self.trap_dispatch(instr, b, c, e),
                        };
                        let class = self.class_of_word(&v)?;
                        self.ctx_write_raw(dnext, doff, v, class)?;
                        let reg = if dnext { &self.ncp } else { &self.cp };
                        self.last_dest = reg.as_ref().map(|r| (r.abs, doff));
                        self.pc += 1;
                        return Ok(());
                    }
                }
                self.exec_primitive(instr, p, b, c)
            }
            MethodRef::Defined(d) => self.do_call(instr, d, b, c),
        }
    }

    /// Fetches a lowered operand (the fast-path analogue of
    /// [`fetch_operand`](Self::fetch_operand)).
    #[inline(always)]
    fn read_low(&mut self, op: LowOperand) -> Result<(Word, ClassId), MachineError> {
        match op {
            LowOperand::Cur(off) => self.ctx_read_raw(false, off),
            LowOperand::Next(off) => self.ctx_read_raw(true, off),
            LowOperand::Imm(w, c) => Ok((w, c)),
            LowOperand::BadConst(i) => Err(MachineError::ConstOutOfRange { index: i }),
        }
    }

    /// Runs via the reference single-step interpreter: one
    /// [`step`](Self::step) per instruction, every invariant
    /// re-established from machine state each time — the pre-overhaul
    /// loop. Results and architectural statistics are bit-identical to
    /// [`run`](Self::run); only wall-clock differs. The bench pipeline
    /// measures the threaded loop against this baseline, and the
    /// differential tests use it as the oracle.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::StepLimit`] on exhaustion (the in-flight
    /// call survives and can be driven further, exactly like
    /// [`run_for`](Self::run_for)'s out-of-budget outcome) or any trap —
    /// and a trap exit unwinds through [`abort_send`](Self::abort_send)
    /// exactly as [`run_for`](Self::run_for)'s does, so the two loops
    /// leave bit-identical machines on every trap path.
    pub fn run_stepwise(&mut self, max_steps: u64) -> Result<RunResult, MachineError> {
        for _ in 0..max_steps {
            match self.step() {
                Ok(()) => {}
                Err(MachineError::Halted(result)) => {
                    return Ok(RunResult {
                        result,
                        stats: self.stats,
                        steps: self.steps,
                    })
                }
                Err(e) => {
                    self.abort_send();
                    return Err(e);
                }
            }
        }
        Err(MachineError::StepLimit)
    }
}

/// Whether a primitive is a pure data operation — the set
/// `exec_primitive` routes to [`data_op`](crate::exec::data_op). The
/// classification lives on [`PrimOp::is_pure_data`] so the static
/// verifier folds exactly the set the engine evaluates.
#[inline]
fn is_pure_data(p: PrimOp) -> bool {
    p.is_pure_data()
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::Assembler;

    /// The engine's concurrency contract: a machine owns all of its
    /// mutable state (the decoded slab shares only immutable
    /// [`DecodedBody`]s behind `Arc`), so it may be moved across threads.
    /// Compile-time: regressing to a non-`Send` handle type (`Rc`, raw
    /// pointers) fails this test at build, not at runtime.
    #[test]
    fn machine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<Machine>();
        assert_send::<RunResult>();
        assert_send::<MachineError>();
    }

    fn image_with(
        class: ClassId,
        selector: &str,
        build: impl FnOnce(&mut Assembler),
    ) -> (ProgramImage, Opcode) {
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern(selector);
        let mut asm = Assembler::new(format!("test>>{selector}"), 2);
        build(&mut asm);
        img.add_method(class, sel, asm.finish().unwrap());
        (img, sel)
    }

    fn run(img: &ProgramImage, selector: &str, recv: Word, args: &[Word]) -> RunResult {
        let mut m = Machine::new(MachineConfig::default());
        m.load(img).unwrap();
        m.send(selector, recv, args, 100_000).unwrap()
    }

    #[test]
    fn primitive_add_via_defined_wrapper() {
        // SmallInteger>>plus: other — c3 <- self + other; return c3.
        let (img, _) = image_with(ClassId::SMALL_INT, "plus:", |asm| {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Cur(2),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(3),
                Operand::Cur(3),
            )
            .unwrap();
        });
        let out = run(&img, "plus:", Word::Int(20), &[Word::Int(22)]);
        assert_eq!(out.result, Word::Int(42));
        assert!(out.stats.calls >= 1);
        assert!(out.stats.returns >= 1);
    }

    #[test]
    fn constants_and_jumps() {
        // abs: return self < 0 ? self negated : self
        let (img, _) = image_with(ClassId::SMALL_INT, "abs", |asm| {
            let k0 = asm.intern_const(Word::Int(0));
            // c3 <- self < 0
            asm.emit_three(
                Opcode::LT,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Const(k0),
            )
            .unwrap();
            let neg = asm.label();
            asm.jump_if(Operand::Cur(3), neg);
            // return self
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(1),
                Operand::Cur(1),
            )
            .unwrap();
            asm.bind(neg);
            // c4 <- self negated ; return c4
            asm.emit_three(
                Opcode::NEG,
                Operand::Cur(4),
                Operand::Cur(1),
                Operand::Cur(1),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(4),
                Operand::Cur(4),
            )
            .unwrap();
        });
        assert_eq!(run(&img, "abs", Word::Int(-5), &[]).result, Word::Int(5));
        assert_eq!(run(&img, "abs", Word::Int(7), &[]).result, Word::Int(7));
    }

    #[test]
    fn recursion_and_deep_calls() {
        // SmallInteger>>sumto — recursive sum 1..self.
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("sumto");
        let mut asm = Assembler::new("SmallInteger>>sumto", 1);
        let k0 = asm.intern_const(Word::Int(0));
        let k1 = asm.intern_const(Word::Int(1));
        // c3 <- self <= 0
        asm.emit_three(
            Opcode::LE,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Const(k0),
        )
        .unwrap();
        let base = asm.label();
        asm.jump_if(Operand::Cur(3), base);
        // c4 <- self - 1 ; c5 <- c4 sumto ; c6 <- self + c5 ; return c6
        asm.emit_three(
            Opcode::SUB,
            Operand::Cur(4),
            Operand::Cur(1),
            Operand::Const(k1),
        )
        .unwrap();
        asm.emit_three(
            Opcode(sel.0),
            Operand::Cur(5),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(6),
            Operand::Cur(1),
            Operand::Cur(5),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(6),
            Operand::Cur(6),
        )
        .unwrap();
        asm.bind(base);
        // B must be context mode; MOVE takes its value from C (= 0).
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Const(k0),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

        let out = run(&img, "sumto", Word::Int(100), &[]);
        assert_eq!(out.result, Word::Int(5050));
        // 100 recursive calls plus the entry send.
        assert!(out.stats.calls >= 101);
        // Every call returns, plus the entry method's own halt-return.
        assert_eq!(out.stats.returns, out.stats.calls + 1);
        // LIFO discipline: every level freed eagerly.
        assert!(out.stats.contexts_freed_lifo >= 100);
    }

    #[test]
    fn call_cost_matches_paper() {
        // A method that immediately returns; called once via 3-operand form.
        let (img, _) = image_with(ClassId::SMALL_INT, "nop:", |asm| {
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(1),
                Operand::Cur(1),
            )
            .unwrap();
        });
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        let out = m.send("nop:", Word::Int(1), &[Word::Int(2)], 1000).unwrap();
        // Entry send is zero-operand: call linkage 2 cycles, no copies.
        // §3.6: zero-operand call delays execution 4 cycles total (2 base +
        // 1 flush + 1 linkage).
        let s = out.stats;
        assert_eq!(s.calls, 1);
        assert_eq!(s.call_linkage_cycles, 2);
        assert_eq!(s.operand_copy_cycles, 0);
    }

    #[test]
    fn captured_context_in_resident_slot_survives_minor_gc() {
        // The pinning-hole regression: a captured (nursery) context whose
        // only reference lives in a *cache-resident, dirty* slot of a
        // tenured context. The store went through the context cache's
        // directory-bypassing path, so no write barrier ran and the holder
        // is not in the remembered set; only pinning (and scanning) the
        // residents keeps the captured context alive through a minor
        // collection.
        let (img, _) = image_with(ClassId::SMALL_INT, "nop:", |asm| {
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(1),
                Operand::Cur(1),
            )
            .unwrap();
        });
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        let sel = m.opcodes().get("nop:").unwrap();
        m.start_send(sel, Word::Int(1), &[Word::Int(2)]).unwrap();
        // A full collection promotes the bootstrap contexts to tenured.
        m.collect_garbage().unwrap();
        // A fresh captured context: nursery, reachable from nothing yet.
        let captured = m
            .space
            .create(m.team, m.context_class, CONTEXT_WORDS, AllocKind::Context)
            .unwrap();
        // Store its pointer into a slot of the (resident, tenured) current
        // context — the cache write path, no barrier.
        let ctx_class = m.context_class;
        m.ctx_write_raw(false, CTX_ARG1 + 4, Word::Ptr(captured), ctx_class)
            .unwrap();
        assert_eq!(
            m.space.barrier_stats().remembered_segments,
            0,
            "the resident-slot store must not have gone through the barrier"
        );
        m.collect_garbage_kind(GcKind::Minor).unwrap();
        assert!(
            m.space.read(m.team, captured).is_ok(),
            "captured context reachable only through a cache-resident slot was swept"
        );
        assert_eq!(m.gc_totals().minor_collections, 1);
    }

    #[test]
    fn full_gc_pins_resident_contexts_instead_of_releasing_them() {
        // Every cache-resident context must keep its backing segment and
        // storage across a full collection — residents are part of the
        // machine state, not sweep-then-release fodder.
        let (img, _) = image_with(ClassId::SMALL_INT, "nop:", |asm| {
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(1),
                Operand::Cur(1),
            )
            .unwrap();
        });
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        let sel = m.opcodes().get("nop:").unwrap();
        m.start_send(sel, Word::Int(1), &[Word::Int(2)]).unwrap();
        m.collect_garbage().unwrap();
        let residents = m.cc.as_ref().expect("cc on").resident();
        assert!(!residents.is_empty());
        for abs in residents {
            assert!(
                m.space.memory().block_words(abs).is_some(),
                "resident context at {abs} lost its storage across a full GC"
            );
            assert!(
                m.space.segment_at_base(abs).is_some(),
                "resident context at {abs} lost its segment across a full GC"
            );
        }
    }

    #[test]
    fn send_of_uninterned_selector_errors_instead_of_panicking() {
        let img = ProgramImage::empty();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        match m.send("neverInterned:", Word::Int(1), &[], 100) {
            Err(MachineError::UnknownSelector(name)) => {
                assert_eq!(name, "neverInterned:");
            }
            other => panic!("expected UnknownSelector, got {other:?}"),
        }
        // The machine is still usable after the refused send.
        let sel = m.intern_selector("stillFine");
        assert!(m.opcodes().get("stillFine").is_some());
        let _ = sel;
    }

    #[test]
    fn repeated_sends_do_not_leak_entry_roots_or_heap() {
        // The per-send leak: every `start_send` used to pin the synthesized
        // entry method in `code_roots` forever, so roots (and the live heap
        // under GC) grew linearly with sends.
        let (img, _) = image_with(ClassId::SMALL_INT, "plus:", |asm| {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Cur(2),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(3),
                Operand::Cur(3),
            )
            .unwrap();
        });
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        // Warm up past the context cache's 32 blocks: cache-resident
        // contexts are pinned across collections (machine state), and each
        // can keep one dead entry-code object alive through its stale RIP
        // until its block is recycled — a *bounded* residual, saturated
        // after a few dozen sends. Anything growing past this warmup is a
        // real leak.
        for _ in 0..40 {
            m.send("plus:", Word::Int(1), &[Word::Int(2)], 10_000)
                .unwrap();
        }
        let roots = m.code_root_count();
        m.collect_garbage().unwrap();
        let live = m.space().memory().buddy().allocated_words();
        for i in 0..50 {
            let out = m
                .send("plus:", Word::Int(i), &[Word::Int(2)], 10_000)
                .unwrap();
            assert_eq!(out.result, Word::Int(i + 2));
            assert_eq!(
                m.code_root_count(),
                roots,
                "code roots grew across completed sends"
            );
        }
        m.collect_garbage().unwrap();
        assert_eq!(
            m.space().memory().buddy().allocated_words(),
            live,
            "live heap grew across 50 completed sends"
        );
    }

    #[test]
    fn run_for_yields_and_resumes_bit_identically() {
        // Driving a program with many tiny budgets must reproduce the
        // one-shot run exactly: same result, same CycleStats, same steps.
        let (img, _) = image_with(ClassId::SMALL_INT, "plus:", |asm| {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Cur(2),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(3),
                Operand::Cur(3),
            )
            .unwrap();
        });
        let one_shot = run(&img, "plus:", Word::Int(20), &[Word::Int(22)]);

        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        let sel = m.opcodes().get("plus:").unwrap();
        m.start_send(sel, Word::Int(20), &[Word::Int(22)]).unwrap();
        let mut yields = 0u32;
        let sliced = loop {
            match m.run_for(1).unwrap() {
                RunOutcome::Done(r) => break r,
                RunOutcome::OutOfBudget => yields += 1,
            }
        };
        assert_eq!(sliced.result, Word::Int(42));
        assert_eq!(sliced.result, one_shot.result);
        assert_eq!(sliced.stats, one_shot.stats);
        assert_eq!(sliced.steps, one_shot.steps);
        assert!(
            yields >= sliced.steps as u32 - 1,
            "budget of 1 must yield per step"
        );
    }

    #[test]
    fn load_image_shares_decoded_bodies_and_matches_lazy_load() {
        // A LoadedImage-booted machine must behave (results + CycleStats)
        // exactly like one that loaded the raw image and decoded lazily.
        let (img, _) = image_with(ClassId::SMALL_INT, "plus:", |asm| {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Cur(2),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(3),
                Operand::Cur(3),
            )
            .unwrap();
        });
        let loaded = crate::LoadedImage::prepare(img.clone());
        assert_eq!(loaded.predecoded(), loaded.methods());

        let mut shared = Machine::new(MachineConfig::default());
        shared.load_image(&loaded).unwrap();
        let mut lazy = Machine::new(MachineConfig::default());
        lazy.load(&img).unwrap();
        for i in 0..10 {
            let a = shared
                .send("plus:", Word::Int(i), &[Word::Int(2)], 10_000)
                .unwrap();
            let b = lazy
                .send("plus:", Word::Int(i), &[Word::Int(2)], 10_000)
                .unwrap();
            assert_eq!(a.result, b.result);
            assert_eq!(a.stats, b.stats, "send {i}: stats diverged");
        }
    }

    #[test]
    fn does_not_understand_traps() {
        let img = ProgramImage::empty();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        let sel = m.intern_selector("frobnicate");
        m.start_send(sel, Word::Int(1), &[]).unwrap();
        match m.run(100) {
            Err(MachineError::DoesNotUnderstand { class, .. }) => {
                assert_eq!(class, ClassId::SMALL_INT);
            }
            other => panic!("expected DNU, got {other:?}"),
        }
    }

    /// An image where SmallInteger installs a `doesNotUnderstand:`
    /// handler that answers the reified message's selector opcode (word
    /// 0), and interns `frobnicate` without defining it anywhere.
    fn dnu_handler_image() -> (ProgramImage, Opcode) {
        let mut img = ProgramImage::empty();
        let missing = img.opcodes.intern("frobnicate");
        let dnu = img
            .opcodes
            .intern(com_obj::TrapSelector::DoesNotUnderstand.name());
        // doesNotUnderstand: msg — c3 <- msg at 0 ; return c3.
        let mut asm = Assembler::new("SmallInteger>>doesNotUnderstand:", 2);
        let k0 = asm.intern_const(Word::Int(0));
        asm.emit_three(
            Opcode::RAWAT,
            Operand::Cur(3),
            Operand::Cur(2),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, dnu, asm.finish().unwrap());
        (img, missing)
    }

    #[test]
    fn dnu_handler_catches_failed_send_and_execution_continues() {
        // The entry send itself fails lookup; the handler's answer (the
        // reified selector opcode) becomes the program result — the
        // trapped-by-default condition ran to a halt instead.
        let (img, missing) = dnu_handler_image();
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        m.start_send(missing, Word::Int(9), &[]).unwrap();
        let out = m.run(10_000).unwrap();
        assert_eq!(out.result, Word::Int(missing.0 as i64));
        assert_eq!(out.stats.soft_traps, 1);
        // The stepwise loop dispatches identically.
        let mut s = Machine::new(MachineConfig::default());
        s.load(&img).unwrap();
        s.start_send(missing, Word::Int(9), &[]).unwrap();
        let b = s.run_stepwise(10_000).unwrap();
        assert_eq!(b.result, out.result);
        assert_eq!(
            b.stats, out.stats,
            "handler dispatch diverged between loops"
        );
    }

    #[test]
    fn bad_operands_handler_catches_divide_by_zero() {
        // div0: c3 <- self / 0 ; return c3 — with a badOperands: handler
        // on SmallInteger answering the reified argument (the zero).
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("div0");
        let bad = img
            .opcodes
            .intern(com_obj::TrapSelector::BadOperands.name());
        let mut asm = Assembler::new("SmallInteger>>div0", 1);
        let k0 = asm.intern_const(Word::Int(0));
        asm.emit_three(
            Opcode::DIV,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Const(k0),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        // badOperands: msg — c3 <- 777 ; return c3 (a recovery value).
        let mut asm = Assembler::new("SmallInteger>>badOperands:", 2);
        let k = asm.intern_const(Word::Int(777));
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Const(k),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, bad, asm.finish().unwrap());

        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        let out = m.send("div0", Word::Int(14), &[], 10_000).unwrap();
        assert_eq!(out.result, Word::Int(777));
        assert_eq!(out.stats.soft_traps, 1);
    }

    #[test]
    fn trap_exit_unwinds_to_a_fresh_machine() {
        // The engine unwind contract: an unhandled trap routes through
        // abort_send, so the next start_send is indistinguishable from
        // one on a freshly booted machine — same answer, same CycleStats
        // delta, and (after a collection) the same live heap and roots.
        let (img, _) = image_with(ClassId::SMALL_INT, "plus:", |asm| {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Cur(2),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(3),
                Operand::Cur(3),
            )
            .unwrap();
        });
        let mut fresh = Machine::new(MachineConfig::default());
        fresh.load(&img).unwrap();
        let baseline = fresh
            .send("plus:", Word::Int(20), &[Word::Int(22)], 10_000)
            .unwrap();

        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        // Trap: an interned selector nothing answers (atom receiver).
        let missing = m.intern_selector("zap:");
        m.start_send(missing, Word::Atom(com_mem::AtomId(5)), &[Word::Int(1)])
            .unwrap();
        match m.run(10_000) {
            Err(MachineError::DoesNotUnderstand { .. }) => {}
            other => panic!("expected DNU, got {other:?}"),
        }
        // Unwound: registers and the trapped call graph are gone...
        assert_eq!(m.code_root_count(), fresh.code_root_count());
        // ...and the follow-up call is bit-identical to the fresh
        // machine's first call (warm-state leaks — ITLB, icache, context
        // pool — would show up here as cheaper lookups or fetches).
        let before = m.stats();
        let out = m
            .send("plus:", Word::Int(20), &[Word::Int(22)], 10_000)
            .unwrap();
        assert_eq!(out.result, baseline.result);
        assert_eq!(
            out.stats.since(&before),
            baseline.stats,
            "post-trap call diverged from a fresh machine's"
        );
        // After a full collection the trapped call left no live residue:
        // both machines hold exactly the same number of allocated words.
        m.collect_garbage().unwrap();
        fresh.collect_garbage().unwrap();
        assert_eq!(
            m.space().memory().buddy().allocated_words(),
            fresh.space().memory().buddy().allocated_words(),
            "the trapped call graph stayed live across GC"
        );
    }

    #[test]
    fn works_without_itlb_and_without_context_cache() {
        let (img, _) = image_with(ClassId::SMALL_INT, "plus:", |asm| {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Cur(2),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(3),
                Operand::Cur(3),
            )
            .unwrap();
        });
        for cfg in [
            MachineConfig::default().without_itlb(),
            MachineConfig::default().without_context_cache(),
            MachineConfig::default()
                .without_itlb()
                .without_context_cache(),
        ] {
            let mut m = Machine::new(cfg);
            m.load(&img).unwrap();
            let out = m
                .send("plus:", Word::Int(1), &[Word::Int(2)], 10_000)
                .unwrap();
            assert_eq!(out.result, Word::Int(3));
        }
    }

    #[test]
    fn itlb_eliminates_repeat_lookups() {
        let (img, _) = image_with(ClassId::SMALL_INT, "plus:", |asm| {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Cur(2),
            )
            .unwrap();
            asm.emit_three_ret(
                Opcode::MOVE,
                Operand::Cur(0),
                Operand::Cur(3),
                Operand::Cur(3),
            )
            .unwrap();
        });
        let mut m = Machine::new(MachineConfig::default());
        m.load(&img).unwrap();
        m.send("plus:", Word::Int(1), &[Word::Int(2)], 10_000)
            .unwrap();
        let first = m.stats().full_lookups;
        m.send("plus:", Word::Int(3), &[Word::Int(4)], 10_000)
            .unwrap();
        let second = m.stats().full_lookups - first;
        assert!(
            second < first,
            "warm ITLB must avoid lookups: {second} vs {first}"
        );
    }
}
