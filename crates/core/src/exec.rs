//! Function units: the data-path side of primitive methods (§3.3).
//!
//! These are the operations the ITLB's method field selects when the
//! primitive bit is on. Control transfer, memory access and allocation need
//! machine state and live in `machine.rs`; everything here is a pure
//! function of the source operands.

use com_isa::{Opcode, PrimOp};
use com_mem::Word;

use crate::MachineError;

/// Executes a pure data operation on source operands `b` and `c`.
///
/// Unary operations (`negated`, `bitNot`, `tag`) take their input from `c`
/// (the compiler duplicates the operand into `b` for ITLB keying).
///
/// # Errors
///
/// Returns [`MachineError::BadOperands`] when the operand tags have no
/// interpretation under `prim` (division by zero included). Because
/// dispatch already checked the class signature, such traps indicate a
/// disagreement between an installed method signature and the function
/// unit — they are *machine* integrity checks, not user-visible type
/// errors (those surface as does-not-understand).
pub fn data_op(prim: PrimOp, opcode: Opcode, b: Word, c: Word) -> Result<Word, MachineError> {
    let bad = |reason: &'static str| MachineError::BadOperands { opcode, reason };
    match prim {
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div => arith(prim, opcode, b, c),
        PrimOp::Mod => match (b, c) {
            (Word::Int(_), Word::Int(0)) => Err(bad("modulo by zero")),
            (Word::Int(x), Word::Int(y)) => Ok(Word::Int(x.rem_euclid(y))),
            _ => Err(bad("modulo requires small integers")),
        },
        PrimOp::Neg => match c {
            Word::Int(x) => Ok(Word::Int(x.wrapping_neg())),
            Word::Float(x) => Ok(Word::Float(-x)),
            _ => Err(bad("negate requires a number")),
        },
        PrimOp::Carry => match (b, c) {
            (Word::Int(x), Word::Int(y)) => Ok(Word::Int(i64::from(x.checked_add(y).is_none()))),
            _ => Err(bad("carry requires small integers")),
        },
        PrimOp::Mult1 => match (b, c) {
            (Word::Int(x), Word::Int(y)) => Ok(Word::Int((x as i128 * y as i128) as i64)),
            _ => Err(bad("mult1 requires small integers")),
        },
        PrimOp::Mult2 => match (b, c) {
            (Word::Int(x), Word::Int(y)) => Ok(Word::Int(((x as i128 * y as i128) >> 64) as i64)),
            _ => Err(bad("mult2 requires small integers")),
        },
        PrimOp::Shift => match (b, c) {
            (Word::Int(x), Word::Int(s)) => Ok(Word::Int(shift_logical(x, s))),
            _ => Err(bad("shift requires small integers")),
        },
        PrimOp::AShift => match (b, c) {
            (Word::Int(x), Word::Int(s)) => Ok(Word::Int(shift_arith(x, s))),
            _ => Err(bad("arithmetic shift requires small integers")),
        },
        PrimOp::Rotate => match (b, c) {
            (Word::Int(x), Word::Int(s)) => {
                // Rotate within the 32-bit field the paper's words carry.
                let v = x as u32;
                let s = (s.rem_euclid(32)) as u32;
                Ok(Word::Int(v.rotate_left(s) as i64))
            }
            _ => Err(bad("rotate requires small integers")),
        },
        PrimOp::Mask => match (b, c) {
            (Word::Int(x), Word::Int(bits)) if (0..=63).contains(&bits) => {
                Ok(Word::Int(x & ((1i64 << bits) - 1)))
            }
            _ => Err(bad("mask requires a small integer and a bit count 0..=63")),
        },
        PrimOp::And => int_bitop(b, c, |x, y| x & y).ok_or_else(|| bad("bitAnd requires ints")),
        PrimOp::Or => int_bitop(b, c, |x, y| x | y).ok_or_else(|| bad("bitOr requires ints")),
        PrimOp::Xor => int_bitop(b, c, |x, y| x ^ y).ok_or_else(|| bad("bitXor requires ints")),
        PrimOp::Not => match c {
            Word::Int(x) => Ok(Word::Int(!x)),
            _ => Err(bad("bitNot requires a small integer")),
        },
        PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge => compare(prim, opcode, b, c),
        PrimOp::EqVal => Ok(Word::from(value_eq(b, c))),
        PrimOp::NeVal => Ok(Word::from(!value_eq(b, c))),
        // Identity: two words are the same object when their tagged bit
        // patterns agree ("the ~ (same object) comparison is defined for all
        // types", §3.3).
        PrimOp::Same => Ok(Word::from(b == c)),
        PrimOp::Move => Ok(c),
        PrimOp::TagOf => Ok(Word::Int(c.tag() as i64)),
        _ => Err(bad("not a pure data operation")),
    }
}

fn arith(prim: PrimOp, opcode: Opcode, b: Word, c: Word) -> Result<Word, MachineError> {
    let bad = |reason: &'static str| MachineError::BadOperands { opcode, reason };
    match (b, c) {
        (Word::Int(x), Word::Int(y)) => match prim {
            PrimOp::Add => Ok(Word::Int(x.wrapping_add(y))),
            PrimOp::Sub => Ok(Word::Int(x.wrapping_sub(y))),
            PrimOp::Mul => Ok(Word::Int(x.wrapping_mul(y))),
            PrimOp::Div => {
                if y == 0 {
                    Err(bad("division by zero"))
                } else {
                    Ok(Word::Int(x.wrapping_div(y)))
                }
            }
            _ => unreachable!("arith called with non-arith prim"),
        },
        // Mixed mode is primitive (§3.3): promote to float.
        _ => {
            let (x, y) = match (b.as_number(), c.as_number()) {
                (Some(x), Some(y)) => (x, y),
                _ => return Err(bad("arithmetic requires numbers")),
            };
            match prim {
                PrimOp::Add => Ok(Word::Float(x + y)),
                PrimOp::Sub => Ok(Word::Float(x - y)),
                PrimOp::Mul => Ok(Word::Float(x * y)),
                PrimOp::Div => {
                    if y == 0.0 {
                        Err(bad("division by zero"))
                    } else {
                        Ok(Word::Float(x / y))
                    }
                }
                _ => unreachable!("arith called with non-arith prim"),
            }
        }
    }
}

fn compare(prim: PrimOp, opcode: Opcode, b: Word, c: Word) -> Result<Word, MachineError> {
    // Integer-integer comparisons stay exact; anything else goes through
    // the float path (mixed mode).
    let ord = match (b, c) {
        (Word::Int(x), Word::Int(y)) => x.partial_cmp(&y),
        _ => match (b.as_number(), c.as_number()) {
            (Some(x), Some(y)) => x.partial_cmp(&y),
            _ => {
                return Err(MachineError::BadOperands {
                    opcode,
                    reason: "comparison requires numbers",
                })
            }
        },
    };
    let Some(ord) = ord else {
        // NaN comparisons are false for everything except Ne.
        return Ok(Word::from(false));
    };
    let r = match prim {
        PrimOp::Lt => ord.is_lt(),
        PrimOp::Le => ord.is_le(),
        PrimOp::Gt => ord.is_gt(),
        PrimOp::Ge => ord.is_ge(),
        _ => unreachable!("compare called with non-compare prim"),
    };
    Ok(Word::from(r))
}

fn value_eq(b: Word, c: Word) -> bool {
    match (b, c) {
        (Word::Int(x), Word::Int(y)) => x == y,
        (Word::Float(x), Word::Float(y)) => x == y,
        (Word::Int(x), Word::Float(y)) | (Word::Float(y), Word::Int(x)) => x as f64 == y,
        _ => b == c,
    }
}

fn int_bitop(b: Word, c: Word, f: impl Fn(i64, i64) -> i64) -> Option<Word> {
    match (b, c) {
        (Word::Int(x), Word::Int(y)) => Some(Word::Int(f(x, y))),
        _ => None,
    }
}

fn shift_logical(x: i64, s: i64) -> i64 {
    if s >= 64 || s <= -64 {
        0
    } else if s >= 0 {
        ((x as u64) << s) as i64
    } else {
        ((x as u64) >> (-s)) as i64
    }
}

fn shift_arith(x: i64, s: i64) -> i64 {
    if s >= 64 {
        0
    } else if s <= -64 {
        x >> 63
    } else if s >= 0 {
        x.wrapping_shl(s as u32)
    } else {
        x >> (-s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_mem::AtomId;

    fn op(p: PrimOp, b: Word, c: Word) -> Word {
        data_op(p, Opcode::ADD, b, c).unwrap()
    }

    #[test]
    fn integer_arithmetic() {
        assert_eq!(op(PrimOp::Add, Word::Int(2), Word::Int(3)), Word::Int(5));
        assert_eq!(op(PrimOp::Sub, Word::Int(2), Word::Int(3)), Word::Int(-1));
        assert_eq!(op(PrimOp::Mul, Word::Int(4), Word::Int(3)), Word::Int(12));
        assert_eq!(op(PrimOp::Div, Word::Int(7), Word::Int(2)), Word::Int(3));
        assert_eq!(op(PrimOp::Mod, Word::Int(-7), Word::Int(3)), Word::Int(2));
    }

    #[test]
    fn float_and_mixed_arithmetic() {
        assert_eq!(
            op(PrimOp::Add, Word::Float(1.5), Word::Float(2.0)),
            Word::Float(3.5)
        );
        // "Some mixed mode instructions are primitive."
        assert_eq!(
            op(PrimOp::Mul, Word::Int(2), Word::Float(1.5)),
            Word::Float(3.0)
        );
    }

    #[test]
    fn division_by_zero_traps() {
        assert!(data_op(PrimOp::Div, Opcode::DIV, Word::Int(1), Word::Int(0)).is_err());
        assert!(data_op(PrimOp::Div, Opcode::DIV, Word::Float(1.0), Word::Float(0.0)).is_err());
        assert!(data_op(PrimOp::Mod, Opcode::MOD, Word::Int(1), Word::Int(0)).is_err());
    }

    #[test]
    fn wrong_types_trap() {
        let a = Word::Atom(AtomId(5));
        assert!(data_op(PrimOp::Add, Opcode::ADD, a, Word::Int(1)).is_err());
        assert!(data_op(PrimOp::Mod, Opcode::MOD, Word::Float(1.0), Word::Float(1.0)).is_err());
        assert!(data_op(PrimOp::And, Opcode::AND, a, a).is_err());
    }

    #[test]
    fn multiple_precision_support() {
        assert_eq!(
            op(PrimOp::Carry, Word::Int(i64::MAX), Word::Int(1)),
            Word::Int(1)
        );
        assert_eq!(op(PrimOp::Carry, Word::Int(1), Word::Int(1)), Word::Int(0));
        assert_eq!(
            op(PrimOp::Mult1, Word::Int(1 << 40), Word::Int(1 << 30)),
            Word::Int((1i128 << 70) as i64)
        );
        assert_eq!(
            op(PrimOp::Mult2, Word::Int(1 << 40), Word::Int(1 << 30)),
            Word::Int(((1i128 << 70) >> 64) as i64)
        );
    }

    #[test]
    fn shifts_and_bitfields() {
        assert_eq!(op(PrimOp::Shift, Word::Int(1), Word::Int(4)), Word::Int(16));
        assert_eq!(
            op(PrimOp::Shift, Word::Int(16), Word::Int(-4)),
            Word::Int(1)
        );
        assert_eq!(
            op(PrimOp::AShift, Word::Int(-16), Word::Int(-2)),
            Word::Int(-4)
        );
        assert_eq!(
            op(PrimOp::Rotate, Word::Int(0x8000_0000), Word::Int(1)),
            Word::Int(1)
        );
        assert_eq!(
            op(PrimOp::Mask, Word::Int(0xABCD), Word::Int(8)),
            Word::Int(0xCD)
        );
        assert_eq!(
            op(PrimOp::And, Word::Int(0b1100), Word::Int(0b1010)),
            Word::Int(0b1000)
        );
        assert_eq!(
            op(PrimOp::Or, Word::Int(0b1100), Word::Int(0b1010)),
            Word::Int(0b1110)
        );
        assert_eq!(
            op(PrimOp::Xor, Word::Int(0b1100), Word::Int(0b1010)),
            Word::Int(0b0110)
        );
        assert_eq!(op(PrimOp::Not, Word::Int(0), Word::Int(0)), Word::Int(-1));
    }

    #[test]
    fn comparisons() {
        assert_eq!(op(PrimOp::Lt, Word::Int(1), Word::Int(2)), Word::from(true));
        assert_eq!(
            op(PrimOp::Ge, Word::Int(1), Word::Int(2)),
            Word::from(false)
        );
        assert_eq!(
            op(PrimOp::Le, Word::Float(1.5), Word::Int(2)),
            Word::from(true)
        );
        assert_eq!(
            op(PrimOp::EqVal, Word::Int(2), Word::Float(2.0)),
            Word::from(true)
        );
        assert_eq!(
            op(PrimOp::NeVal, Word::Int(2), Word::Int(2)),
            Word::from(false)
        );
    }

    #[test]
    fn identity_is_bit_equality() {
        assert_eq!(
            op(PrimOp::Same, Word::Int(2), Word::Int(2)),
            Word::from(true)
        );
        // Int 2 and Float 2.0 are equal values but not the same object.
        assert_eq!(
            op(PrimOp::Same, Word::Int(2), Word::Float(2.0)),
            Word::from(false)
        );
        let a = Word::Atom(AtomId(4));
        assert_eq!(op(PrimOp::Same, a, a), Word::from(true));
    }

    #[test]
    fn move_and_tag() {
        assert_eq!(op(PrimOp::Move, Word::Int(9), Word::Int(7)), Word::Int(7));
        assert_eq!(
            op(PrimOp::TagOf, Word::Int(0), Word::Float(1.0)),
            Word::Int(com_mem::Tag::Float as i64)
        );
    }

    #[test]
    fn nan_comparisons_are_false() {
        assert_eq!(
            op(PrimOp::Lt, Word::Float(f64::NAN), Word::Float(1.0)),
            Word::from(false)
        );
        assert_eq!(
            op(PrimOp::Ge, Word::Float(f64::NAN), Word::Float(1.0)),
            Word::from(false)
        );
    }
}
