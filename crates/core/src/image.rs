//! Program images: what the compiler hands the machine.

use com_isa::{CodeObject, Opcode, OpcodeTable};
use com_mem::ClassId;
use com_obj::{AtomTable, ClassTable};

/// One compiled method: which class's dictionary it installs into, under
/// which selector, with its code.
#[derive(Debug, Clone)]
pub struct MethodSource {
    /// The class whose dictionary receives the method.
    pub class: ClassId,
    /// The selector (abstract opcode) it answers.
    pub selector: Opcode,
    /// The compiled code.
    pub code: CodeObject,
}

/// A compiled program: class hierarchy, interning tables, and methods.
///
/// Images contain no memory addresses — code objects are stored into the
/// machine's object space at [`load`](crate::Machine::load) time, so one
/// image can boot any number of machines (the Fith machine consumes the
/// same structure through its own loader).
#[derive(Debug, Clone)]
pub struct ProgramImage {
    /// The class hierarchy (standard primitives installed; defined methods
    /// are added at load time from `methods`).
    pub classes: ClassTable,
    /// Interned atoms.
    pub atoms: AtomTable,
    /// Interned selectors.
    pub opcodes: OpcodeTable,
    /// Compiled methods to install.
    pub methods: Vec<MethodSource>,
}

impl ProgramImage {
    /// An empty image with standard primitives installed — the starting
    /// point for hand-assembled test programs.
    pub fn empty() -> Self {
        let mut classes = ClassTable::new();
        com_obj::install_standard_primitives(&mut classes);
        ProgramImage {
            classes,
            atoms: AtomTable::new(),
            opcodes: OpcodeTable::new(),
            methods: Vec::new(),
        }
    }

    /// Adds a method to the image.
    pub fn add_method(&mut self, class: ClassId, selector: Opcode, code: CodeObject) {
        self.methods.push(MethodSource {
            class,
            selector,
            code,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::Assembler;

    #[test]
    fn empty_image_has_primitives() {
        let img = ProgramImage::empty();
        let d = &img.classes.get(ClassId::SMALL_INT).unwrap().dict;
        assert!(d.lookup(Opcode::ADD).0.is_some());
        assert!(img.methods.is_empty());
    }

    #[test]
    fn add_method_records_source() {
        let mut img = ProgramImage::empty();
        let code = Assembler::new("t", 1).finish().unwrap();
        img.add_method(ClassId::SMALL_INT, Opcode(100), code);
        assert_eq!(img.methods.len(), 1);
        assert_eq!(img.methods[0].selector, Opcode(100));
    }
}
