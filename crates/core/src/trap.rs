//! Machine traps and errors.

use com_fpa::Fpa;
use com_isa::{IsaError, Opcode};
use com_mem::{ClassId, MemError, Word};

/// Traps and fatal conditions raised during execution.
///
/// "Instruction safety … prevents the all too common occurrence of applying
/// an instruction to the wrong datatype, or attempting to execute data"
/// (§2.1) — those conditions surface here rather than corrupting state.
#[derive(Debug, Clone, PartialEq)]
pub enum MachineError {
    /// A memory-system error or trap that was not recoverable in hardware.
    Mem(MemError),
    /// An instruction decoding error.
    Isa(IsaError),
    /// A send named a selector that was never interned in the loaded
    /// image: no class could possibly answer it. Distinct from
    /// [`MachineError::DoesNotUnderstand`], where the selector exists but
    /// the receiver's class chain has no method for it.
    UnknownSelector(String),
    /// No method found for this (selector, receiver class) — the Smalltalk
    /// doesNotUnderstand condition. Raised only when the receiver's class
    /// chain installs no `doesNotUnderstand:` handler: with one installed,
    /// the failed send is reified and re-dispatched to the handler in
    /// software and execution continues (see `Machine`'s trap dispatch).
    DoesNotUnderstand {
        /// The unresolvable selector.
        opcode: Opcode,
        /// The receiver's class.
        class: ClassId,
    },
    /// Method lookup walked a cyclic superclass chain: the class table is
    /// corrupted. Distinct from [`MachineError::DoesNotUnderstand`] — the
    /// method may well exist, but the table cannot be trusted to say so.
    ClassChainCycle {
        /// The selector whose lookup hit the cycle.
        opcode: Opcode,
        /// The receiver's class (the start of the cyclic chain).
        class: ClassId,
    },
    /// An operand word was read before ever being written.
    UninitOperand {
        /// The faulting context slot (operand-biased offset).
        offset: u64,
    },
    /// A branch condition that is neither a boolean atom nor an integer.
    BadBranchCondition(Word),
    /// A word fetched for execution is not an instruction ("attempting to
    /// execute data").
    ExecutingData(Word),
    /// A function unit received operands it has no interpretation for
    /// (e.g. `/` by zero, shift of a pointer). For pure data operations
    /// this is raised only when the receiver's class chain installs no
    /// `badOperands:` handler — with one installed, the faulting
    /// operation re-dispatches to the handler in software.
    BadOperands {
        /// The operation's selector.
        opcode: Opcode,
        /// Description of the violation.
        reason: &'static str,
    },
    /// `as:` executed without privilege (PS privilege bit clear) —
    /// "conditionally privileged to prevent the forging of virtual
    /// addresses" (§3.3).
    Privileged,
    /// Read-after-write hazard in strict mode: instruction `pc` reads the
    /// destination of its predecessor (§3.6 requires the compiler to
    /// prevent this).
    Hazard {
        /// The program counter of the offending instruction.
        pc: u64,
    },
    /// The step budget given to [`run`](crate::Machine::run) was exhausted.
    StepLimit,
    /// Return executed with no caller: the program halted. Carries the
    /// program result.
    Halted(Word),
    /// A context operation needed a context but none was active.
    NoContext,
    /// A call or xfer targeted something that is not a code pointer.
    BadMethod(Fpa),
    /// An operand named a context slot beyond the fixed context geometry
    /// (`CONTEXT_WORDS`). A machine-integrity fault, not an operand-type
    /// condition: it is **not** soft-dispatchable through a `badOperands:`
    /// handler, and verified images can never raise it (the static
    /// verifier rejects such methods at load).
    SlotOutOfRange {
        /// The faulting context slot (operand-biased offset).
        offset: u64,
    },
    /// A constant-mode operand indexed past the method's constant table.
    /// Like [`MachineError::SlotOutOfRange`], a machine-integrity fault
    /// that verified images can never raise.
    ConstOutOfRange {
        /// The faulting constant index.
        index: u8,
    },
}

impl From<MemError> for MachineError {
    fn from(e: MemError) -> Self {
        MachineError::Mem(e)
    }
}

impl From<com_fpa::FpaError> for MachineError {
    fn from(e: com_fpa::FpaError) -> Self {
        MachineError::Mem(MemError::Address(e))
    }
}

impl From<IsaError> for MachineError {
    fn from(e: IsaError) -> Self {
        MachineError::Isa(e)
    }
}

impl core::fmt::Display for MachineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MachineError::Mem(e) => write!(f, "memory trap: {e}"),
            MachineError::Isa(e) => write!(f, "instruction error: {e}"),
            MachineError::UnknownSelector(name) => {
                write!(
                    f,
                    "selector {name:?} was never interned in the loaded image"
                )
            }
            MachineError::DoesNotUnderstand { opcode, class } => {
                write!(f, "{class} does not understand {opcode}")
            }
            MachineError::ClassChainCycle { opcode, class } => {
                write!(
                    f,
                    "superclass chain of {class} is cyclic (corrupted class table) while looking up {opcode}"
                )
            }
            MachineError::UninitOperand { offset } => {
                write!(f, "uninitialised operand at context offset {offset}")
            }
            MachineError::BadBranchCondition(w) => write!(f, "bad branch condition {w}"),
            MachineError::ExecutingData(w) => write!(f, "attempt to execute data word {w}"),
            MachineError::BadOperands { opcode, reason } => {
                write!(f, "bad operands for {opcode}: {reason}")
            }
            MachineError::Privileged => write!(f, "privileged instruction (as:) in user mode"),
            MachineError::Hazard { pc } => {
                write!(
                    f,
                    "read-after-write hazard at pc {pc} (compiler contract violated)"
                )
            }
            MachineError::StepLimit => write!(f, "step limit exhausted"),
            MachineError::Halted(w) => write!(f, "halted with result {w}"),
            MachineError::NoContext => write!(f, "no active context"),
            MachineError::BadMethod(a) => write!(f, "call target {a} is not a method"),
            MachineError::SlotOutOfRange { offset } => {
                write!(f, "context slot offset {offset} beyond context geometry")
            }
            MachineError::ConstOutOfRange { index } => {
                write!(f, "constant index {index} beyond method constant table")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Mem(e) => Some(e),
            MachineError::Isa(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_bounds() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<MachineError>();
        let e: MachineError = MemError::UnknownTeam(com_mem::TeamId(1)).into();
        assert!(matches!(e, MachineError::Mem(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_is_specific() {
        let e = MachineError::DoesNotUnderstand {
            opcode: Opcode::MUL,
            class: ClassId::ATOM,
        };
        assert!(e.to_string().contains("does not understand"));
    }
}
