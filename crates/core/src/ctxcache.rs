//! The context cache (§2.3, §3.6 Figure 7).
//!
//! "The Context Cache consists of two parts: the directory and the data
//! memory. Our scheme achieves speed by bypassing the directory on accesses
//! to the current or next context." Four access vectors govern the blocks:
//! *current* and *next* (singleton sets), *free* (unused blocks), and
//! *match* (directory hit). The directory associates on **absolute**
//! addresses, so the cache "need not be invalidated on a process switch",
//! can hold **non-contiguous** (non-LIFO) contexts, and "provides a
//! mechanism to automatically initialise a new context" (block clear in a
//! single operation).
//!
//! Each cached word carries its 16-bit class tag (§3.2): "When a word is
//! cached in the context cache, a 16-bit tag identifying the class of the
//! object is cached with it."

use com_mem::{AbsAddr, ClassId, Word};

use crate::CONTEXT_WORDS;

/// Counters for the context cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtxCacheStats {
    /// Fast-path reads through the current/next vectors.
    pub reads: u64,
    /// Fast-path writes through the current/next vectors.
    pub writes: u64,
    /// Directory (match vector) accesses.
    pub directory_lookups: u64,
    /// Directory hits.
    pub directory_hits: u64,
    /// Blocks faulted in from memory (misses on resident-required access).
    pub faults: u64,
    /// Blocks copied back to memory by the copyback engine.
    pub copybacks: u64,
    /// Blocks cleared for fresh contexts (single-operation clear).
    pub clears: u64,
    /// Blocks released to the free vector.
    pub releases: u64,
}

/// One cached context block plus its directory entry.
#[derive(Debug, Clone)]
struct Block {
    /// Directory entry: the absolute base address of the cached context,
    /// or `None` when the block is in the free vector.
    abs: Option<AbsAddr>,
    /// 32 words, each with its cached class tag.
    words: Vec<(Word, ClassId)>,
    dirty: bool,
    last_used: u64,
}

impl Block {
    fn empty() -> Self {
        Block {
            abs: None,
            words: vec![(Word::Uninit, ClassId::UNINIT); CONTEXT_WORDS as usize],
            dirty: false,
            last_used: 0,
        }
    }
}

/// The context cache. The machine orchestrates fills and write-backs (it
/// owns the memory); the cache owns residency, the access vectors and LRU.
#[derive(Debug)]
pub struct ContextCache {
    blocks: Vec<Block>,
    current: Option<usize>,
    next: Option<usize>,
    clock: u64,
    stats: CtxCacheStats,
}

/// A block evicted to make room: the machine must write it back if dirty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// Absolute base of the evicted context.
    pub abs: AbsAddr,
    /// The block's words (with class tags) at eviction time.
    pub words: Vec<(Word, ClassId)>,
    /// Whether the block held unwritten modifications.
    pub dirty: bool,
}

impl ContextCache {
    /// Creates a cache of `blocks` context-sized blocks (the paper uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `blocks < 3` — call linkage needs current + next + one
    /// free block to make progress.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks >= 3, "context cache needs at least 3 blocks");
        ContextCache {
            blocks: (0..blocks).map(|_| Block::empty()).collect(),
            current: None,
            next: None,
            clock: 0,
            stats: CtxCacheStats::default(),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CtxCacheStats {
        self.stats
    }

    /// Resets counters (contents retained).
    pub fn reset_stats(&mut self) {
        self.stats = CtxCacheStats::default();
    }

    /// Number of blocks in the free vector.
    pub fn free_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.abs.is_none()).count()
    }

    /// Absolute bases of all resident contexts (for GC pinning).
    pub fn resident(&self) -> Vec<AbsAddr> {
        self.blocks.iter().filter_map(|b| b.abs).collect()
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Directory lookup (the match vector): the block caching `abs`, if any.
    pub fn find(&mut self, abs: AbsAddr) -> Option<usize> {
        self.stats.directory_lookups += 1;
        let hit = self.blocks.iter().position(|b| b.abs == Some(abs));
        if hit.is_some() {
            self.stats.directory_hits += 1;
        }
        hit
    }

    /// Non-recording directory probe.
    pub fn peek_find(&self, abs: AbsAddr) -> Option<usize> {
        self.blocks.iter().position(|b| b.abs == Some(abs))
    }

    /// Picks a victim block: a free one if available, else the LRU block
    /// that is neither current nor next. Returns `(index, eviction)`.
    fn victim(&mut self) -> (usize, Option<Eviction>) {
        if let Some(i) = self.blocks.iter().position(|b| b.abs.is_none()) {
            return (i, None);
        }
        let i = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != self.current && Some(*i) != self.next)
            .min_by_key(|(_, b)| b.last_used)
            .map(|(i, _)| i)
            .expect("≥3 blocks, so a victim exists");
        let b = &mut self.blocks[i];
        let ev = Eviction {
            abs: b.abs.expect("occupied"),
            words: b.words.clone(),
            dirty: b.dirty,
        };
        b.abs = None;
        b.dirty = false;
        (i, Some(ev))
    }

    /// Installs a context read from memory into a block (a *fault*).
    /// Returns the block index and any eviction the machine must handle.
    pub fn install(
        &mut self,
        abs: AbsAddr,
        words: Vec<(Word, ClassId)>,
    ) -> (usize, Option<Eviction>) {
        debug_assert_eq!(words.len(), CONTEXT_WORDS as usize);
        self.stats.faults += 1;
        let clock = self.tick();
        let (i, ev) = self.victim();
        let b = &mut self.blocks[i];
        b.abs = Some(abs);
        b.words = words;
        b.dirty = false;
        b.last_used = clock;
        (i, ev)
    }

    /// Allocates a *cleared* block for a brand-new context at `abs`
    /// ("a new context … can be immediately placed in a block of the context
    /// cache and that block can be cleared. With this approach a new context
    /// does not have to be faulted in", §2.3). Marks it the next context.
    pub fn alloc_next(&mut self, abs: AbsAddr) -> (usize, Option<Eviction>) {
        self.stats.clears += 1;
        let clock = self.tick();
        let (i, ev) = self.victim();
        let b = &mut self.blocks[i];
        b.abs = Some(abs);
        for w in &mut b.words {
            *w = (Word::Uninit, ClassId::UNINIT);
        }
        // The cleared block is dirty by construction: memory still holds
        // stale words until copyback.
        b.dirty = true;
        b.last_used = clock;
        self.next = Some(i);
        (i, ev)
    }

    /// The current-vector block index.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The next-vector block index.
    pub fn next(&self) -> Option<usize> {
        self.next
    }

    /// Points the current vector at `block`.
    pub fn set_current(&mut self, block: Option<usize>) {
        self.current = block;
    }

    /// Points the next vector at `block`.
    pub fn set_next(&mut self, block: Option<usize>) {
        self.next = block;
    }

    /// Reads word `off` of `block` (fast path — no directory access).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range offset; operand fields cannot express one
    /// beyond 63 and contexts are 32 words, so this is a machine bug.
    pub fn read(&mut self, block: usize, off: u64) -> (Word, ClassId) {
        let clock = self.tick();
        self.stats.reads += 1;
        let b = &mut self.blocks[block];
        b.last_used = clock;
        b.words[off as usize]
    }

    /// Writes word `off` of `block` with its class tag.
    pub fn write(&mut self, block: usize, off: u64, word: Word, class: ClassId) {
        let clock = self.tick();
        self.stats.writes += 1;
        let b = &mut self.blocks[block];
        b.last_used = clock;
        b.words[off as usize] = (word, class);
        b.dirty = true;
    }

    /// The absolute base the block caches.
    pub fn block_abs(&self, block: usize) -> Option<AbsAddr> {
        self.blocks[block].abs
    }

    /// Releases a block to the free vector *without* write-back (used when
    /// the context it holds is freed — its contents are dead).
    pub fn release(&mut self, abs: AbsAddr) {
        if let Some(i) = self.peek_find(abs) {
            self.stats.releases += 1;
            self.blocks[i].abs = None;
            self.blocks[i].dirty = false;
            if self.current == Some(i) {
                self.current = None;
            }
            if self.next == Some(i) {
                self.next = None;
            }
        }
    }

    /// Recycles an occupied block as the (cleared) next context: on method
    /// return "the current vector is moved back to the next vector" and the
    /// block is re-initialised for the next call.
    pub fn recycle_as_next(&mut self, block: usize) {
        self.stats.clears += 1;
        let clock = self.tick();
        let b = &mut self.blocks[block];
        for w in &mut b.words {
            *w = (Word::Uninit, ClassId::UNINIT);
        }
        b.dirty = true;
        b.last_used = clock;
        self.next = Some(block);
        if self.current == Some(block) {
            self.current = None;
        }
    }

    /// Whether the copyback engine should run: free blocks at or below the
    /// low-water mark (§2.3 uses two).
    pub fn needs_copyback(&self, low_water: usize) -> bool {
        self.free_count() <= low_water
    }

    /// Takes the LRU non-current/non-next block for copyback, returning its
    /// contents for the machine to write to memory. The block becomes free.
    pub fn copyback_victim(&mut self) -> Option<Eviction> {
        let i = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| {
                b.abs.is_some() && Some(*i) != self.current && Some(*i) != self.next
            })
            .min_by_key(|(_, b)| b.last_used)
            .map(|(i, _)| i)?;
        self.stats.copybacks += 1;
        let b = &mut self.blocks[i];
        let ev = Eviction {
            abs: b.abs.take().expect("filtered on occupied"),
            words: b.words.clone(),
            dirty: b.dirty,
        };
        b.dirty = false;
        Some(ev)
    }

    /// Drains every dirty block's contents (without freeing) so memory is
    /// coherent — required before garbage collection scans contexts.
    pub fn dirty_blocks(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for b in &mut self.blocks {
            if b.dirty {
                if let Some(abs) = b.abs {
                    out.push(Eviction {
                        abs,
                        words: b.words.clone(),
                        dirty: true,
                    });
                    b.dirty = false;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> ContextCache {
        ContextCache::new(4)
    }

    #[test]
    fn alloc_next_clears_block() {
        let mut c = cc();
        let (i, ev) = c.alloc_next(AbsAddr(0x100));
        assert!(ev.is_none());
        assert_eq!(c.next(), Some(i));
        assert_eq!(c.read(i, 5), (Word::Uninit, ClassId::UNINIT));
        assert_eq!(c.stats().clears, 1);
    }

    #[test]
    fn read_after_write_with_class_tag() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        c.write(i, 3, Word::Int(7), ClassId::SMALL_INT);
        assert_eq!(c.read(i, 3), (Word::Int(7), ClassId::SMALL_INT));
    }

    #[test]
    fn directory_match_vector() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        assert_eq!(c.find(AbsAddr(0x100)), Some(i));
        assert_eq!(c.find(AbsAddr(0x200)), None);
        let s = c.stats();
        assert_eq!(s.directory_lookups, 2);
        assert_eq!(s.directory_hits, 1);
    }

    #[test]
    fn eviction_prefers_free_then_lru_excluding_vectors() {
        let mut c = cc();
        let (a, _) = c.alloc_next(AbsAddr(0x100));
        c.set_current(Some(a));
        let (b, _) = c.alloc_next(AbsAddr(0x200)); // next
        let (x, _) = c.install(AbsAddr(0x300), vec![(Word::Int(1), ClassId::SMALL_INT); 32]);
        let (y, _) = c.install(AbsAddr(0x400), vec![(Word::Int(2), ClassId::SMALL_INT); 32]);
        assert_eq!(c.free_count(), 0);
        // Touch x so y is LRU among non-vector blocks.
        c.read(x, 0);
        let (_, ev) = c.install(AbsAddr(0x500), vec![(Word::Uninit, ClassId::UNINIT); 32]);
        let ev = ev.expect("cache full, must evict");
        assert_eq!(ev.abs, AbsAddr(0x400));
        // current and next must never be evicted
        assert_eq!(c.block_abs(a), Some(AbsAddr(0x100)));
        assert_eq!(c.block_abs(b), Some(AbsAddr(0x200)));
        let _ = y;
    }

    #[test]
    fn release_frees_without_writeback() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        c.write(i, 0, Word::Int(1), ClassId::SMALL_INT);
        c.release(AbsAddr(0x100));
        assert_eq!(c.free_count(), 4);
        assert_eq!(c.next(), None, "released block leaves the next vector");
        assert!(c.dirty_blocks().is_empty(), "released dirt is dead");
    }

    #[test]
    fn copyback_picks_lru_and_frees() {
        let mut c = cc();
        let (a, _) = c.alloc_next(AbsAddr(0x100));
        c.set_current(Some(a));
        c.alloc_next(AbsAddr(0x200));
        c.install(AbsAddr(0x300), vec![(Word::Int(3), ClassId::SMALL_INT); 32]);
        c.install(AbsAddr(0x400), vec![(Word::Int(4), ClassId::SMALL_INT); 32]);
        assert!(c.needs_copyback(2));
        let ev = c.copyback_victim().unwrap();
        assert_eq!(ev.abs, AbsAddr(0x300), "LRU non-vector block");
        assert_eq!(c.free_count(), 1);
        assert!(!c.needs_copyback(0));
    }

    #[test]
    fn dirty_blocks_drain_once() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        c.write(i, 1, Word::Int(5), ClassId::SMALL_INT);
        let d = c.dirty_blocks();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].abs, AbsAddr(0x100));
        assert!(c.dirty_blocks().is_empty(), "second drain is empty");
    }

    #[test]
    #[should_panic(expected = "at least 3 blocks")]
    fn too_small_cache_panics() {
        let _ = ContextCache::new(2);
    }
}
