//! The context cache (§2.3, §3.6 Figure 7).
//!
//! "The Context Cache consists of two parts: the directory and the data
//! memory. Our scheme achieves speed by bypassing the directory on accesses
//! to the current or next context." Four access vectors govern the blocks:
//! *current* and *next* (singleton sets), *free* (unused blocks), and
//! *match* (directory hit). The directory associates on **absolute**
//! addresses, so the cache "need not be invalidated on a process switch",
//! can hold **non-contiguous** (non-LIFO) contexts, and "provides a
//! mechanism to automatically initialise a new context" (block clear in a
//! single operation).
//!
//! Each cached word carries its 16-bit class tag (§3.2): "When a word is
//! cached in the context cache, a 16-bit tag identifying the class of the
//! object is cached with it."

use com_mem::{AbsAddr, ClassId, Word};

use crate::CONTEXT_WORDS;

/// Counters for the context cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CtxCacheStats {
    /// Fast-path reads through the current/next vectors.
    pub reads: u64,
    /// Fast-path writes through the current/next vectors.
    pub writes: u64,
    /// Directory (match vector) accesses.
    pub directory_lookups: u64,
    /// Directory hits.
    pub directory_hits: u64,
    /// Blocks faulted in from memory (misses on resident-required access).
    pub faults: u64,
    /// Blocks copied back to memory by the copyback engine.
    pub copybacks: u64,
    /// Blocks cleared for fresh contexts (single-operation clear).
    pub clears: u64,
    /// Blocks released to the free vector.
    pub releases: u64,
}

/// One cached context block plus its directory entry.
#[derive(Debug, Clone)]
struct Block {
    /// Directory entry: the absolute base address of the cached context,
    /// or `None` when the block is in the free vector.
    abs: Option<AbsAddr>,
    /// 32 words, each with its cached class tag — a fixed inline array,
    /// so the per-instruction operand accesses do not chase a heap
    /// pointer per block.
    words: [(Word, ClassId); CONTEXT_WORDS as usize],
    /// Bit `i` set ⇒ word `i` has been written since the last block clear.
    /// The single-operation clear (§2.3) then re-initialises only those
    /// words instead of storing all 32.
    written: u32,
    dirty: bool,
    last_used: u64,
}

impl Block {
    const CLEAR: [(Word, ClassId); CONTEXT_WORDS as usize] =
        [(Word::Uninit, ClassId::UNINIT); CONTEXT_WORDS as usize];

    /// The §2.3 single-operation block clear: only words actually written
    /// since the previous clear are re-initialised.
    #[inline]
    fn clear_words(&mut self) {
        let mut m = self.written;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            self.words[i] = (Word::Uninit, ClassId::UNINIT);
            m &= m - 1;
        }
        self.written = 0;
    }

    fn empty() -> Self {
        Block {
            abs: None,
            words: Self::CLEAR,
            written: 0,
            dirty: false,
            last_used: 0,
        }
    }
}

/// The context cache. The machine orchestrates fills and write-backs (it
/// owns the memory); the cache owns residency, the access vectors and LRU.
#[derive(Debug)]
pub struct ContextCache {
    /// Pre-overhaul allocation order: scan the block array for the first
    /// free block instead of popping the free stack (bench baseline).
    reference: bool,
    blocks: Vec<Block>,
    current: Option<usize>,
    next: Option<usize>,
    /// The free vector as a stack of block indices: allocation pops,
    /// release pushes — no scan. Its length is the free count the
    /// per-instruction copyback low-water check reads.
    free_stack: Vec<usize>,
    /// The match vector's associative directory: compact `(absolute base,
    /// block index)` pairs, maintained on every residency change. A probe
    /// (which happens on every indirect context access — notably every
    /// returning instruction's result store) scans at most `blocks`
    /// contiguous words instead of walking the ~800-byte blocks
    /// themselves, and maintenance is push/swap-remove — cheaper than a
    /// hash map at context-cache sizes.
    directory: Vec<(u64, u32)>,
    clock: u64,
    stats: CtxCacheStats,
}

/// A block evicted to make room: the machine must write it back if dirty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Eviction {
    /// Absolute base of the evicted context.
    pub abs: AbsAddr,
    /// The block's words (with class tags) at eviction time.
    pub words: Vec<(Word, ClassId)>,
    /// Whether the block held unwritten modifications.
    pub dirty: bool,
}

impl ContextCache {
    /// Creates a cache of `blocks` context-sized blocks (the paper uses 32).
    ///
    /// # Panics
    ///
    /// Panics if `blocks < 3` — call linkage needs current + next + one
    /// free block to make progress.
    pub fn new(blocks: usize) -> Self {
        assert!(blocks >= 3, "context cache needs at least 3 blocks");
        ContextCache {
            reference: false,
            blocks: (0..blocks).map(|_| Block::empty()).collect(),
            current: None,
            next: None,
            free_stack: (0..blocks).rev().collect(),
            directory: Vec::with_capacity(blocks),
            clock: 0,
            stats: CtxCacheStats::default(),
        }
    }

    /// Selects pre-overhaul block-allocation order (first-free scan).
    pub fn set_reference_paths(&mut self, reference: bool) {
        self.reference = reference;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CtxCacheStats {
        self.stats
    }

    /// Resets counters (contents retained).
    pub fn reset_stats(&mut self) {
        self.stats = CtxCacheStats::default();
    }

    /// Number of blocks in the free vector.
    pub fn free_count(&self) -> usize {
        debug_assert_eq!(
            self.free_stack.len(),
            self.blocks.iter().filter(|b| b.abs.is_none()).count()
        );
        self.free_stack.len()
    }

    /// Absolute bases of all resident contexts (for GC pinning).
    pub fn resident(&self) -> Vec<AbsAddr> {
        self.blocks.iter().filter_map(|b| b.abs).collect()
    }

    #[inline]
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Directory lookup (the match vector): the block caching `abs`, if any.
    pub fn find(&mut self, abs: AbsAddr) -> Option<usize> {
        self.stats.directory_lookups += 1;
        let hit = self.peek_find(abs);
        if hit.is_some() {
            self.stats.directory_hits += 1;
        }
        hit
    }

    /// Non-recording directory probe.
    #[inline]
    pub fn peek_find(&self, abs: AbsAddr) -> Option<usize> {
        let hit = self
            .directory
            .iter()
            .find(|(a, _)| *a == abs.0)
            .map(|(_, i)| *i as usize);
        debug_assert_eq!(hit, self.blocks.iter().position(|b| b.abs == Some(abs)));
        hit
    }

    fn directory_insert(&mut self, abs: AbsAddr, block: usize) {
        debug_assert!(self.directory.iter().all(|(a, _)| *a != abs.0));
        self.directory.push((abs.0, block as u32));
    }

    fn directory_remove(&mut self, abs: AbsAddr) {
        if let Some(i) = self.directory.iter().position(|(a, _)| *a == abs.0) {
            self.directory.swap_remove(i);
        }
    }

    /// Directory lookup through the pre-overhaul linear scan of the block
    /// array (the reference-interpreter baseline). Same result and stats
    /// as [`find`](Self::find); only the simulator-side cost differs.
    pub fn find_reference(&mut self, abs: AbsAddr) -> Option<usize> {
        self.stats.directory_lookups += 1;
        let hit = self.blocks.iter().position(|b| b.abs == Some(abs));
        if hit.is_some() {
            self.stats.directory_hits += 1;
        }
        hit
    }

    /// The free count by the pre-overhaul scan (reference baseline).
    pub fn free_count_reference(&self) -> usize {
        self.blocks.iter().filter(|b| b.abs.is_none()).count()
    }

    /// Picks a victim block: a free one if available, else the LRU block
    /// that is neither current nor next. Returns `(index, eviction)`.
    fn victim(&mut self) -> (usize, Option<Eviction>) {
        if self.reference {
            // Pre-overhaul order: first free block by scan.
            if let Some(i) = self.blocks.iter().position(|b| b.abs.is_none()) {
                self.free_stack.retain(|&f| f != i);
                return (i, None);
            }
        } else if let Some(i) = self.free_stack.pop() {
            // The caller occupies the block immediately.
            return (i, None);
        }
        let i = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != self.current && Some(*i) != self.next)
            .min_by_key(|(_, b)| b.last_used)
            .map(|(i, _)| i)
            .expect("≥3 blocks, so a victim exists");
        let b = &mut self.blocks[i];
        let ev = Eviction {
            abs: b.abs.expect("occupied"),
            words: b.words.to_vec(),
            dirty: b.dirty,
        };
        b.abs = None;
        b.dirty = false;
        self.directory_remove(ev.abs);
        (i, Some(ev))
    }

    /// Installs a context read from memory into a block (a *fault*).
    /// Returns the block index and any eviction the machine must handle.
    pub fn install(
        &mut self,
        abs: AbsAddr,
        words: Vec<(Word, ClassId)>,
    ) -> (usize, Option<Eviction>) {
        debug_assert_eq!(words.len(), CONTEXT_WORDS as usize);
        self.stats.faults += 1;
        let clock = self.tick();
        let (i, ev) = self.victim();
        self.directory_insert(abs, i);
        let b = &mut self.blocks[i];
        b.abs = Some(abs);
        b.words.copy_from_slice(&words);
        b.written = u32::MAX;
        b.dirty = false;
        b.last_used = clock;
        (i, ev)
    }

    /// Allocates a *cleared* block for a brand-new context at `abs`
    /// ("a new context … can be immediately placed in a block of the context
    /// cache and that block can be cleared. With this approach a new context
    /// does not have to be faulted in", §2.3). Marks it the next context.
    pub fn alloc_next(&mut self, abs: AbsAddr) -> (usize, Option<Eviction>) {
        self.stats.clears += 1;
        let clock = self.tick();
        let (i, ev) = self.victim();
        self.directory_insert(abs, i);
        let b = &mut self.blocks[i];
        b.abs = Some(abs);
        b.clear_words();
        // The cleared block is dirty by construction: memory still holds
        // stale words until copyback.
        b.dirty = true;
        b.last_used = clock;
        self.next = Some(i);
        (i, ev)
    }

    /// The current-vector block index.
    pub fn current(&self) -> Option<usize> {
        self.current
    }

    /// The next-vector block index.
    pub fn next(&self) -> Option<usize> {
        self.next
    }

    /// Points the current vector at `block`.
    pub fn set_current(&mut self, block: Option<usize>) {
        self.current = block;
    }

    /// Points the next vector at `block`.
    pub fn set_next(&mut self, block: Option<usize>) {
        self.next = block;
    }

    /// Reads word `off` of `block` (fast path — no directory access).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range offset; operand fields cannot express one
    /// beyond 63 and contexts are 32 words, so this is a machine bug.
    #[inline(always)]
    pub fn read(&mut self, block: usize, off: u64) -> (Word, ClassId) {
        let clock = self.tick();
        self.stats.reads += 1;
        let b = &mut self.blocks[block];
        b.last_used = clock;
        b.words[off as usize]
    }

    /// Writes word `off` of `block` with its class tag.
    #[inline(always)]
    pub fn write(&mut self, block: usize, off: u64, word: Word, class: ClassId) {
        let clock = self.tick();
        self.stats.writes += 1;
        let b = &mut self.blocks[block];
        b.last_used = clock;
        b.words[off as usize] = (word, class);
        b.written |= 1 << off;
        b.dirty = true;
    }

    /// The absolute base the block caches.
    #[inline]
    pub fn block_abs(&self, block: usize) -> Option<AbsAddr> {
        self.blocks.get(block).and_then(|b| b.abs)
    }

    /// Releases `block` directly (caller already knows the block index —
    /// the validated fast path of [`release`](Self::release)).
    #[inline]
    pub fn release_block(&mut self, block: usize) {
        let Some(abs) = self.blocks[block].abs else {
            return;
        };
        self.stats.releases += 1;
        self.free_stack.push(block);
        self.directory_remove(abs);
        self.blocks[block].abs = None;
        self.blocks[block].dirty = false;
        if self.current == Some(block) {
            self.current = None;
        }
        if self.next == Some(block) {
            self.next = None;
        }
    }

    /// Writes the three §3.5 linkage words (arg0, arg1, arg2) of `block`
    /// in one directory-bypassing access: one recency update, three word
    /// writes, three counted references.
    #[inline]
    pub fn write_linkage(
        &mut self,
        block: usize,
        arg0: (Word, ClassId),
        arg1: (Word, ClassId),
        arg2: (Word, ClassId),
    ) {
        let clock = self.tick();
        self.stats.writes += 3;
        let b = &mut self.blocks[block];
        b.last_used = clock;
        b.words[crate::CTX_ARG0 as usize] = arg0;
        b.words[crate::CTX_ARG1 as usize] = arg1;
        b.words[crate::CTX_ARG1 as usize + 1] = arg2;
        b.written |= (1 << crate::CTX_ARG0) | (0b11 << crate::CTX_ARG1);
        b.dirty = true;
    }

    /// Releases a block to the free vector *without* write-back (used when
    /// the context it holds is freed — its contents are dead).
    pub fn release(&mut self, abs: AbsAddr) {
        if let Some(i) = self.peek_find(abs) {
            self.stats.releases += 1;
            self.free_stack.push(i);
            self.directory_remove(abs);
            self.blocks[i].abs = None;
            self.blocks[i].dirty = false;
            if self.current == Some(i) {
                self.current = None;
            }
            if self.next == Some(i) {
                self.next = None;
            }
        }
    }

    /// Recycles an occupied block as the (cleared) next context: on method
    /// return "the current vector is moved back to the next vector" and the
    /// block is re-initialised for the next call.
    pub fn recycle_as_next(&mut self, block: usize) {
        self.stats.clears += 1;
        let clock = self.tick();
        let b = &mut self.blocks[block];
        b.clear_words();
        b.dirty = true;
        b.last_used = clock;
        self.next = Some(block);
        if self.current == Some(block) {
            self.current = None;
        }
    }

    /// Whether the copyback engine should run: free blocks at or below the
    /// low-water mark (§2.3 uses two).
    pub fn needs_copyback(&self, low_water: usize) -> bool {
        self.free_count() <= low_water
    }

    /// Takes the LRU non-current/non-next block for copyback, returning its
    /// contents for the machine to write to memory. The block becomes free.
    pub fn copyback_victim(&mut self) -> Option<Eviction> {
        let i = self
            .blocks
            .iter()
            .enumerate()
            .filter(|(i, b)| b.abs.is_some() && Some(*i) != self.current && Some(*i) != self.next)
            .min_by_key(|(_, b)| b.last_used)
            .map(|(i, _)| i)?;
        self.stats.copybacks += 1;
        self.free_stack.push(i);
        let b = &mut self.blocks[i];
        let ev = Eviction {
            abs: b.abs.take().expect("filtered on occupied"),
            words: b.words.to_vec(),
            dirty: b.dirty,
        };
        b.dirty = false;
        self.directory_remove(ev.abs);
        Some(ev)
    }

    /// Drains every dirty block's contents (without freeing) so memory is
    /// coherent — required before garbage collection scans contexts.
    pub fn dirty_blocks(&mut self) -> Vec<Eviction> {
        let mut out = Vec::new();
        for b in &mut self.blocks {
            if b.dirty {
                if let Some(abs) = b.abs {
                    out.push(Eviction {
                        abs,
                        words: b.words.to_vec(),
                        dirty: true,
                    });
                    b.dirty = false;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc() -> ContextCache {
        ContextCache::new(4)
    }

    #[test]
    fn alloc_next_clears_block() {
        let mut c = cc();
        let (i, ev) = c.alloc_next(AbsAddr(0x100));
        assert!(ev.is_none());
        assert_eq!(c.next(), Some(i));
        assert_eq!(c.read(i, 5), (Word::Uninit, ClassId::UNINIT));
        assert_eq!(c.stats().clears, 1);
    }

    #[test]
    fn read_after_write_with_class_tag() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        c.write(i, 3, Word::Int(7), ClassId::SMALL_INT);
        assert_eq!(c.read(i, 3), (Word::Int(7), ClassId::SMALL_INT));
    }

    #[test]
    fn directory_match_vector() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        assert_eq!(c.find(AbsAddr(0x100)), Some(i));
        assert_eq!(c.find(AbsAddr(0x200)), None);
        let s = c.stats();
        assert_eq!(s.directory_lookups, 2);
        assert_eq!(s.directory_hits, 1);
    }

    #[test]
    fn eviction_prefers_free_then_lru_excluding_vectors() {
        let mut c = cc();
        let (a, _) = c.alloc_next(AbsAddr(0x100));
        c.set_current(Some(a));
        let (b, _) = c.alloc_next(AbsAddr(0x200)); // next
        let (x, _) = c.install(AbsAddr(0x300), vec![(Word::Int(1), ClassId::SMALL_INT); 32]);
        let (y, _) = c.install(AbsAddr(0x400), vec![(Word::Int(2), ClassId::SMALL_INT); 32]);
        assert_eq!(c.free_count(), 0);
        // Touch x so y is LRU among non-vector blocks.
        c.read(x, 0);
        let (_, ev) = c.install(AbsAddr(0x500), vec![(Word::Uninit, ClassId::UNINIT); 32]);
        let ev = ev.expect("cache full, must evict");
        assert_eq!(ev.abs, AbsAddr(0x400));
        // current and next must never be evicted
        assert_eq!(c.block_abs(a), Some(AbsAddr(0x100)));
        assert_eq!(c.block_abs(b), Some(AbsAddr(0x200)));
        let _ = y;
    }

    #[test]
    fn release_frees_without_writeback() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        c.write(i, 0, Word::Int(1), ClassId::SMALL_INT);
        c.release(AbsAddr(0x100));
        assert_eq!(c.free_count(), 4);
        assert_eq!(c.next(), None, "released block leaves the next vector");
        assert!(c.dirty_blocks().is_empty(), "released dirt is dead");
    }

    #[test]
    fn copyback_picks_lru_and_frees() {
        let mut c = cc();
        let (a, _) = c.alloc_next(AbsAddr(0x100));
        c.set_current(Some(a));
        c.alloc_next(AbsAddr(0x200));
        c.install(AbsAddr(0x300), vec![(Word::Int(3), ClassId::SMALL_INT); 32]);
        c.install(AbsAddr(0x400), vec![(Word::Int(4), ClassId::SMALL_INT); 32]);
        assert!(c.needs_copyback(2));
        let ev = c.copyback_victim().unwrap();
        assert_eq!(ev.abs, AbsAddr(0x300), "LRU non-vector block");
        assert_eq!(c.free_count(), 1);
        assert!(!c.needs_copyback(0));
    }

    #[test]
    fn dirty_blocks_drain_once() {
        let mut c = cc();
        let (i, _) = c.alloc_next(AbsAddr(0x100));
        c.write(i, 1, Word::Int(5), ClassId::SMALL_INT);
        let d = c.dirty_blocks();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].abs, AbsAddr(0x100));
        assert!(c.dirty_blocks().is_empty(), "second drain is empty");
    }

    #[test]
    #[should_panic(expected = "at least 3 blocks")]
    fn too_small_cache_panics() {
        let _ = ContextCache::new(2);
    }
}
