//! Loaded images: a compiled program with every method pre-decoded.
//!
//! A [`ProgramImage`] is what the compiler emits; a [`LoadedImage`] is the
//! same program after the one-time decode work — each method's instruction
//! stream lowered to the interpreter's fast-path form and its constant
//! table pre-classed. Bodies are position-independent (no memory
//! addresses), so a `LoadedImage` is immutable and shareable: wrap it in an
//! [`std::sync::Arc`] and any number of machines can be booted from it via
//! [`Machine::load_image`](crate::Machine::load_image) without compiling
//! or decoding anything — each machine only stores the code words into its
//! own object space and binds the shared bodies to the stored addresses.
//!
//! This is the engine-level substrate of the `com-vm` embedding facade
//! (one image, many cheap tenant sessions).

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use com_cache::FxBuildHasher;
use com_fpa::{Fpa, FpaFormat};
use com_mem::{AbsAddr, ClassId, MemError, ObjectSpace, TeamId};
use com_obj::{ClassTable, DefinedMethod, MethodRef};

use crate::machine::DecodedBody;
use crate::{MachineConfig, ProgramImage};

/// A fully pre-booted machine state for one space geometry: the image's
/// code objects already stored into a pristine object space, the class
/// table already populated with resolved method references, and the
/// decoded-method slab laid out. Booting a session from the template is a
/// handful of clones — no allocation walk, no dictionary installs, no
/// decoding.
///
/// The template is geometry-specific (address format + space size); a
/// machine with a different geometry takes the store-per-method path
/// instead.
#[derive(Debug)]
pub(crate) struct BootTemplate {
    pub(crate) format: FpaFormat,
    pub(crate) space_log2: u8,
    /// The pre-stored space. Behind a mutex only so the template stays
    /// `Sync` (the space's bounds-check memo is interior-mutable); boots
    /// take the lock briefly to clone.
    pub(crate) space: Mutex<ObjectSpace>,
    pub(crate) classes: ClassTable,
    pub(crate) context_class: ClassId,
    pub(crate) code_roots: Vec<Fpa>,
    /// The decoded-method slab: base, absolute base, shared body.
    pub(crate) slab: Vec<(Fpa, AbsAddr, Arc<DecodedBody>)>,
    /// Code virtual base → slab slot.
    pub(crate) index: HashMap<u64, u32, FxBuildHasher>,
}

impl BootTemplate {
    fn build(
        image: &ProgramImage,
        bodies: &[Option<Arc<DecodedBody>>],
        format: FpaFormat,
        space_log2: u8,
    ) -> Result<BootTemplate, MemError> {
        let mut space = ObjectSpace::new(space_log2, format);
        let mut classes = image.classes.clone();
        let context_class = match classes.by_name("Context") {
            Some(c) => c,
            None => classes
                .define("Context", Some(ClassTable::OBJECT), 0)
                .expect("name free"),
        };
        let mut code_roots = Vec::new();
        let mut slab = Vec::new();
        let mut index: HashMap<u64, u32, FxBuildHasher> = HashMap::default();
        store_and_install(
            &mut space,
            TeamId(0),
            &mut classes,
            image,
            |i| bodies[i].clone(),
            &mut code_roots,
            |base, abs, body| {
                let id = u32::try_from(slab.len()).expect("slab outgrew u32");
                slab.push((base, abs, body));
                index.insert(base.raw(), id);
                id
            },
        )?;
        Ok(BootTemplate {
            format,
            space_log2,
            space: Mutex::new(space),
            classes,
            context_class,
            code_roots,
            slab,
            index,
        })
    }
}

/// The one boot sequence for storing an image's methods into a machine's
/// space: store each code object, pin it as a GC root, bind its shared
/// pre-decoded body (when one exists) into the caller's slab via `bind`,
/// and install the (then pre-resolved) method reference. Both the
/// template build and `Machine::load_image`'s store-per-method path run
/// exactly this function, so the two boot paths cannot drift.
pub(crate) fn store_and_install(
    space: &mut ObjectSpace,
    team: TeamId,
    classes: &mut ClassTable,
    image: &ProgramImage,
    body_of: impl Fn(usize) -> Option<Arc<DecodedBody>>,
    code_roots: &mut Vec<Fpa>,
    mut bind: impl FnMut(Fpa, AbsAddr, Arc<DecodedBody>) -> u32,
) -> Result<(), MemError> {
    for (i, m) in image.methods.iter().enumerate() {
        let base = m.code.store(space, team)?;
        code_roots.push(base);
        let mut dm = DefinedMethod::new(base, m.code.n_args);
        if let Some(body) = body_of(i) {
            let base = base.base();
            let abs = space.translate(team, base)?.abs;
            dm = dm.resolved(bind(base, abs, body));
        }
        classes.install(m.class, m.selector, MethodRef::Defined(dm));
    }
    Ok(())
}

/// An immutable, shareable compiled program: the [`ProgramImage`] plus a
/// pre-decoded body for every method that can be decoded
/// position-independently, plus a pre-booted boot template (space with
/// code stored, installed class table, decoded slab) for the prepared
/// machine geometry.
#[derive(Debug)]
pub struct LoadedImage {
    image: ProgramImage,
    /// Parallel to `image.methods`: `None` when the method's constants
    /// need a machine to classify (pointer constants) and the owning
    /// machine must decode lazily instead.
    bodies: Vec<Option<Arc<DecodedBody>>>,
    /// Pre-booted state for the prepared geometry (absent only if the
    /// image cannot be stored in a space of that geometry).
    template: Option<BootTemplate>,
}

impl LoadedImage {
    /// Pre-decodes every method of `image` and pre-boots the default
    /// machine geometry. This is the one-time cost that
    /// [`Machine::load_image`](crate::Machine::load_image) amortises
    /// across machines.
    pub fn prepare(image: ProgramImage) -> LoadedImage {
        Self::prepare_for(image, &MachineConfig::default())
    }

    /// [`prepare`](Self::prepare) with the template pre-booted for
    /// `config`'s space geometry (sessions booting with a different
    /// geometry still work — they take the store-per-method path).
    pub fn prepare_for(image: ProgramImage, config: &MachineConfig) -> LoadedImage {
        let bodies: Vec<Option<Arc<DecodedBody>>> = image
            .methods
            .iter()
            .map(|m| DecodedBody::from_code(&m.code).map(Arc::new))
            .collect();
        let template = BootTemplate::build(&image, &bodies, config.format, config.space_log2).ok();
        LoadedImage {
            image,
            bodies,
            template,
        }
    }

    /// The pre-booted template, when it matches the asked-for geometry.
    pub(crate) fn template_for(&self, format: FpaFormat, space_log2: u8) -> Option<&BootTemplate> {
        self.template
            .as_ref()
            .filter(|t| t.format == format && t.space_log2 == space_log2)
    }

    /// The underlying compiled program.
    pub fn image(&self) -> &ProgramImage {
        &self.image
    }

    /// Number of methods in the image.
    pub fn methods(&self) -> usize {
        self.image.methods.len()
    }

    /// Number of methods with a shared pre-decoded body (the rest decode
    /// lazily, per machine).
    pub fn predecoded(&self) -> usize {
        self.bodies.iter().filter(|b| b.is_some()).count()
    }

    /// The shared body for method `i`, if it decoded position-independently.
    pub(crate) fn body(&self, i: usize) -> Option<Arc<DecodedBody>> {
        self.bodies.get(i).and_then(|b| b.clone())
    }
}

impl From<ProgramImage> for LoadedImage {
    fn from(image: ProgramImage) -> Self {
        LoadedImage::prepare(image)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use com_isa::{Assembler, Opcode, Operand};
    use com_mem::{ClassId, Word};

    fn sample_image() -> ProgramImage {
        let mut img = ProgramImage::empty();
        let sel = img.opcodes.intern("double");
        let mut asm = Assembler::new("SmallInteger>>double", 1);
        let k2 = asm.intern_const(Word::Int(2));
        asm.emit_three(
            Opcode::MUL,
            Operand::Cur(2),
            Operand::Cur(1),
            Operand::Const(k2),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
        img
    }

    #[test]
    fn prepare_predecodes_every_plain_method() {
        let li = LoadedImage::prepare(sample_image());
        assert_eq!(li.methods(), 1);
        assert_eq!(li.predecoded(), 1);
        assert!(li.body(0).is_some());
        assert!(li.body(1).is_none());
    }

    #[test]
    fn loaded_image_is_send_and_sync() {
        fn assert_shareable<T: Send + Sync>() {}
        assert_shareable::<LoadedImage>();
    }
}
