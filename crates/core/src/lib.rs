//! The Caltech Object Machine (COM) — functional simulator with a
//! cycle-accounting pipeline model (§3 of Dally & Kajiya, ISCA 1985).
//!
//! The machine is deliberately spare: "the processor state of the COM
//! consists of only six registers: the context pointer (CP), the next
//! context pointer (NCP), the free context pointer (FP), the instruction
//! pointer (IP), the team space number (SN), and process status (PS)"
//! (§3.2). "There are no registers, all accesses are to one name space" —
//! operands live in 32-word contexts served by a **context cache** as fast
//! as registers, instructions are **abstract** and resolve through the
//! **ITLB**, and every quantitative claim of §3.6 (two clocks per
//! instruction, call = 4 cycles + 1 per operand, return = 2 cycles, one
//! branch delay slot) is charged by the [`CycleStats`] model.
//!
//! Main types:
//!
//! * [`Machine`] — registers, execution loop, traps.
//! * [`ContextCache`] — directory + access vectors (current/next/free/match)
//!   per §3.6 Figure 7, with copyback for deep nesting.
//! * [`MachineConfig`] — geometry and ablation switches (ITLB off, context
//!   cache off, copyback, strict hazards).
//! * [`ProgramImage`] — a compiled program (classes, methods, entry point)
//!   as produced by the `com-stc` compiler.
//! * [`CycleStats`] — CPI decomposition by stall source (experiment T6).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod config;
mod ctxcache;
mod exec;
mod image;
mod loaded;
mod machine;
mod pipeline;
mod trap;

pub use config::MachineConfig;
pub use ctxcache::{ContextCache, CtxCacheStats};
pub use exec::data_op;
pub use image::{MethodSource, ProgramImage};
pub use loaded::LoadedImage;
pub use machine::{DispatchEvent, DispatchObserver, GcTotals, Machine, RunOutcome, RunResult};

// Re-exported so machine drivers can pick a collection scope without
// depending on `com-mem` directly.
pub use com_mem::gc::GcKind;
pub use pipeline::CycleStats;
pub use trap::MachineError;

/// Fixed context size: "In the COM, we chose a size of 32 words" (§2.3).
pub const CONTEXT_WORDS: u64 = 32;

/// Context layout (§4 Figure 8): link to the sending context.
pub const CTX_RCP: u64 = 0;
/// Context layout: return instruction pointer (method + offset).
pub const CTX_RIP: u64 = 1;
/// Context layout: arg0, "where to store the result".
pub const CTX_ARG0: u64 = 2;
/// Context layout: arg1, the receiver of the message.
pub const CTX_ARG1: u64 = 3;

/// Operand offsets are biased past the two linkage words: `Cur(0)` names
/// arg0 (context word 2), matching the paper's Figure 9 compiled code where
/// `c0` is the result pointer and `c1` is `self`.
pub const OPERAND_BIAS: u64 = 2;
