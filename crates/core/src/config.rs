//! Machine configuration: geometry, cost parameters and ablation switches.

use com_cache::CacheConfig;
use com_fpa::FpaFormat;
use com_obj::{ItlbConfig, LookupCost};

/// Configuration of one COM instance.
///
/// The defaults reproduce the paper's machine: a 512×2-way ITLB (§5), a
/// 4096-entry 2-way instruction cache (§5 Figure 11), a 32-block context
/// cache (§2.3: "a context cache of this modest size would almost never
/// miss") with copyback enabled, and the §3.6 stall penalties. Every switch
/// exists for one of the DESIGN.md ablations.
#[derive(Debug, Clone, Copy)]
pub struct MachineConfig {
    /// Virtual address format (COM 36-bit by default).
    pub format: FpaFormat,
    /// log2 of the absolute space size in words.
    pub space_log2: u8,
    /// ITLB geometry; `None` disables the ITLB entirely (ablation A1:
    /// every send pays the full association cost).
    pub itlb: Option<ItlbConfig>,
    /// Instruction cache geometry; `None` disables it (every fetch pays the
    /// miss penalty).
    pub icache: Option<CacheConfig>,
    /// Use the legacy generic cache as icache storage (the pre-overhaul
    /// simulator structure). Access-for-access identical to the flat
    /// probe array used by default (both index by `addr % sets`) — the
    /// wall-clock bench baseline opts in.
    pub icache_reference: bool,
    /// Route method residency, the copyback low-water check and the
    /// context-directory probe through the pre-overhaul data paths
    /// (translation + SipHash map per call/return, per-step block scans).
    /// Architecturally identical; only simulator wall-clock differs.
    pub reference_interpreter: bool,
    /// Number of context cache blocks; `None` disables the context cache
    /// (ablation A2: contexts live in plain memory).
    pub ctx_blocks: Option<usize>,
    /// Enable the §2.3 copyback mechanism ("when only two blocks are free …
    /// the cache begins copying the LRU context back").
    pub copyback: bool,
    /// Free blocks at or below which copyback engages.
    pub copyback_low_water: usize,
    /// Treat read-after-write hazards (§3.6: the compiler must separate
    /// dependent instructions) as errors instead of one-cycle interlocks.
    pub strict_hazards: bool,
    /// Cycle cost of a full method lookup (charged on ITLB miss).
    pub lookup_cost: LookupCost,
    /// Cycles added by an instruction cache miss.
    pub icache_miss_penalty: u64,
    /// Cycles added by an `at:`/`at:put:` (or `new`/`grow`) memory access.
    pub memory_penalty: u64,
    /// Cycles to fault a context block in from memory (block fill).
    pub ctx_fault_penalty: u64,
    /// Steps between automatic **full** garbage collections; `None`
    /// collects only when the free list and allocator are exhausted.
    /// (The legacy knob; [`gc_full_interval`](Self::gc_full_interval) is
    /// its generational twin — either triggers a full collection.)
    pub gc_interval: Option<u64>,
    /// Steps between **minor** (nursery-only) collections; `None` disables
    /// periodic minor collection. When a step is a multiple of both the
    /// minor and a full interval, the full collection wins.
    pub gc_minor_interval: Option<u64>,
    /// Steps between **full** collections when running generationally
    /// (typically a large multiple of
    /// [`gc_minor_interval`](Self::gc_minor_interval)).
    pub gc_full_interval: Option<u64>,
    /// Eagerly free LIFO contexts at return (§2.3). Disabling leaves every
    /// context to the garbage collector (half of experiment T5).
    pub eager_lifo_free: bool,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            format: FpaFormat::COM,
            space_log2: 26,
            itlb: Some(ItlbConfig::paper_default().expect("paper geometry is valid")),
            icache: Some(CacheConfig::new(4096, 2).expect("paper geometry is valid")),
            icache_reference: false,
            reference_interpreter: false,
            ctx_blocks: Some(32),
            copyback: true,
            copyback_low_water: 2,
            strict_hazards: false,
            lookup_cost: LookupCost::default(),
            icache_miss_penalty: 8,
            memory_penalty: 4,
            ctx_fault_penalty: 32,
            gc_interval: None,
            gc_minor_interval: None,
            gc_full_interval: None,
            eager_lifo_free: true,
        }
    }
}

impl MachineConfig {
    /// The paper's configuration (same as `Default`).
    pub fn paper() -> Self {
        Self::default()
    }

    /// Ablation A1: no ITLB — every abstract instruction pays the full
    /// association cost.
    pub fn without_itlb(mut self) -> Self {
        self.itlb = None;
        self
    }

    /// Ablation A2: no context cache — context words live in memory.
    pub fn without_context_cache(mut self) -> Self {
        self.ctx_blocks = None;
        self
    }

    /// Replaces the context cache block count.
    pub fn with_ctx_blocks(mut self, blocks: usize) -> Self {
        self.ctx_blocks = Some(blocks);
        self
    }

    /// Replaces the absolute-space size (`2^log2` words). Multi-tenant
    /// embeddings size each session's object space to its workload; the
    /// backing store is sparse, so this bounds addressability, not
    /// resident memory.
    pub fn with_space_log2(mut self, log2: u8) -> Self {
        self.space_log2 = log2;
        self
    }

    /// Disables eager LIFO context freeing (T5's GC-burden comparison).
    pub fn without_eager_lifo_free(mut self) -> Self {
        self.eager_lifo_free = false;
        self
    }

    /// Runs the garbage collector generationally: a minor (nursery-only)
    /// collection every `minor` steps and a full collection every `full`
    /// steps. Coincident steps run the full collection.
    pub fn with_generational_gc(mut self, minor: u64, full: u64) -> Self {
        self.gc_minor_interval = Some(minor);
        self.gc_full_interval = Some(full);
        self
    }

    /// Periodic minor collections only (full collections still run on
    /// allocator exhaustion).
    pub fn with_minor_gc_interval(mut self, minor: u64) -> Self {
        self.gc_minor_interval = Some(minor);
        self
    }

    /// The pre-overhaul interpreter's simulator structures: legacy
    /// map-backed ITLB storage, the legacy generic icache, and the
    /// pre-overhaul residency/memory paths. Pair with
    /// [`Machine::run_stepwise`](crate::Machine::run_stepwise) to measure
    /// the pre-overhaul interpreter (the `BENCH_interp.json` baseline).
    /// The reference ITLB storage hashes keys to sets differently, so on
    /// a working set with set conflicts the simulated lookup work may
    /// diverge from the default machine — the bench harness asserts the
    /// full `CycleStats` matched for every workload it reports.
    pub fn reference_interpreter(mut self) -> Self {
        if let Some(itlb) = self.itlb {
            self.itlb = Some(itlb.with_reference_storage());
        }
        self.icache_reference = true;
        self.reference_interpreter = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_geometry() {
        let c = MachineConfig::default();
        let itlb = c.itlb.unwrap();
        assert_eq!(itlb.l1.entries(), 512);
        assert_eq!(itlb.l1.ways(), 2);
        let icache = c.icache.unwrap();
        assert_eq!(icache.entries(), 4096);
        assert_eq!(c.ctx_blocks, Some(32));
        assert!(c.copyback);
        assert!(c.eager_lifo_free);
    }

    #[test]
    fn generational_gc_builders() {
        let c = MachineConfig::paper().with_generational_gc(101, 809);
        assert_eq!(c.gc_minor_interval, Some(101));
        assert_eq!(c.gc_full_interval, Some(809));
        let c = MachineConfig::paper().with_minor_gc_interval(53);
        assert_eq!(c.gc_minor_interval, Some(53));
        assert_eq!(c.gc_full_interval, None);
    }

    #[test]
    fn ablation_builders() {
        let c = MachineConfig::paper()
            .without_itlb()
            .without_context_cache();
        assert!(c.itlb.is_none());
        assert!(c.ctx_blocks.is_none());
        let c = MachineConfig::paper().with_ctx_blocks(8);
        assert_eq!(c.ctx_blocks, Some(8));
    }
}
