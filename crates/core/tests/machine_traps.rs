//! Machine-level trap and accounting tests: the conditions §2.1 and §3
//! promise the hardware catches, plus cycle-accounting invariants.

use com_core::{Machine, MachineConfig, MachineError, ProgramImage};
use com_isa::{Assembler, Instr, Opcode, Operand};
use com_mem::{ClassId, Word};

fn image_with(selector: &str, n_args: u8, build: impl FnOnce(&mut Assembler)) -> ProgramImage {
    let mut img = ProgramImage::empty();
    let sel = img.opcodes.intern(selector);
    let mut asm = Assembler::new(format!("SmallInteger>>{selector}"), n_args);
    build(&mut asm);
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
    img
}

fn machine(img: &ProgramImage) -> Machine {
    let mut m = Machine::new(MachineConfig::default());
    m.load(img).unwrap();
    m
}

#[test]
fn privileged_as_traps_in_user_mode_and_works_privileged() {
    // as: retags an Int as an Atom — capability forging unless privileged.
    let img = image_with("forge", 1, |asm| {
        let k3 = asm.intern_const(Word::Int(3)); // Atom tag code
        asm.emit_three(
            Opcode::AS,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Const(k3),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    assert!(matches!(
        m.send("forge", Word::Int(7), &[], 1000),
        Err(MachineError::Privileged)
    ));
    let mut m = machine(&img);
    m.set_privileged(true);
    let out = m.send("forge", Word::Int(7), &[], 1000).unwrap();
    assert_eq!(out.result, Word::Atom(com_mem::AtomId(7)));
}

#[test]
fn tag_instruction_reads_tags() {
    let img = image_with("tagOf:", 2, |asm| {
        asm.emit_three(
            Opcode::TAG,
            Operand::Cur(3),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    let out = m
        .send("tagOf:", Word::Int(0), &[Word::Float(2.5)], 1000)
        .unwrap();
    assert_eq!(out.result, Word::Int(com_mem::Tag::Float as i64));
    let mut m = machine(&img);
    let out = m
        .send("tagOf:", Word::Int(0), &[Word::Int(1)], 1000)
        .unwrap();
    assert_eq!(out.result, Word::Int(com_mem::Tag::Int as i64));
}

#[test]
fn strict_hazard_mode_rejects_dependent_pairs() {
    // c3 <- c1 + c1 ; c4 <- c3 + c1 — reads the previous destination.
    let img = image_with("hazard", 1, |asm| {
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(4),
            Operand::Cur(3),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
    });
    // Default: a one-cycle interlock is charged, execution proceeds.
    let mut m = machine(&img);
    let out = m.send("hazard", Word::Int(5), &[], 1000).unwrap();
    assert_eq!(out.result, Word::Int(15));
    assert!(out.stats.interlock_cycles >= 1);
    // Strict: the compiler contract violation is a trap.
    let cfg = MachineConfig {
        strict_hazards: true,
        ..MachineConfig::default()
    };
    let mut m = Machine::new(cfg);
    m.load(&img).unwrap();
    assert!(matches!(
        m.send("hazard", Word::Int(5), &[], 1000),
        Err(MachineError::Hazard { .. })
    ));
}

#[test]
fn taken_branches_charge_exactly_one_delay_cycle() {
    // A counted loop with a known number of taken branches.
    let img = image_with("spin", 1, |asm| {
        let k0 = asm.intern_const(Word::Int(0));
        let k1 = asm.intern_const(Word::Int(1));
        // c3 <- self
        asm.emit_three(
            Opcode::MOVE,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        let top = asm.label();
        let out_l = asm.label();
        asm.bind(top);
        // c4 <- c3 > 0 ; exit when false
        asm.emit_three(
            Opcode::GT,
            Operand::Cur(4),
            Operand::Cur(3),
            Operand::Const(k0),
        )
        .unwrap();
        let body = asm.label();
        asm.jump_if(Operand::Cur(4), body);
        asm.jump(out_l);
        asm.bind(body);
        asm.emit_three(
            Opcode::SUB,
            Operand::Cur(3),
            Operand::Cur(3),
            Operand::Const(k1),
        )
        .unwrap();
        asm.jump(top);
        asm.bind(out_l);
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Const(k0),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    let n = 10i64;
    let out = m.send("spin", Word::Int(n), &[], 10_000).unwrap();
    assert_eq!(out.result, Word::Int(0));
    // Taken branches: n iterations × (cond-jump taken + back-jump) + final
    // exit jump = 2n + 1.
    assert_eq!(out.stats.taken_branches, 2 * n as u64 + 1);
    assert_eq!(out.stats.branch_delay_cycles, out.stats.taken_branches);
}

#[test]
fn executing_past_method_end_is_trapped() {
    // A method with no return: falls off the end.
    let img = image_with("felloff", 1, |asm| {
        asm.emit_three(
            Opcode::ADD,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    assert!(matches!(
        m.send("felloff", Word::Int(1), &[], 1000),
        Err(MachineError::BadMethod(_))
    ));
}

#[test]
fn zero_format_data_op_without_return_is_rejected() {
    let mut img = ProgramImage::empty();
    let sel = img.opcodes.intern("weird");
    let mut asm = Assembler::new("SmallInteger>>weird", 1);
    // ADD in zero format with no return bit: no destination exists.
    asm.emit(Instr::zero(Opcode::ADD, 2, false).unwrap());
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(1),
        Operand::Cur(1),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
    let mut m = machine(&img);
    // The implicit next-context operands are Uninit -> dispatch gives
    // UndefinedObject; either DNU or the no-destination trap is acceptable,
    // but it must not corrupt state or succeed.
    assert!(m.send("weird", Word::Int(1), &[], 1000).is_err());
}

#[test]
fn division_by_zero_surfaces_as_bad_operands() {
    let img = image_with("div:", 2, |asm| {
        asm.emit_three(
            Opcode::DIV,
            Operand::Cur(3),
            Operand::Cur(1),
            Operand::Cur(2),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    assert!(matches!(
        m.send("div:", Word::Int(1), &[Word::Int(0)], 1000),
        Err(MachineError::BadOperands { .. })
    ));
    let mut m = machine(&img);
    let out = m
        .send("div:", Word::Int(12), &[Word::Int(4)], 1000)
        .unwrap();
    assert_eq!(out.result, Word::Int(3));
}

#[test]
fn instruction_counts_balance_cycles() {
    // CPI identity: total cycles == sum of the breakdown categories, and
    // base cycles == 2 × instructions.
    let img = image_with("work", 1, |asm| {
        let k1 = asm.intern_const(Word::Int(1));
        for _ in 0..10 {
            asm.emit_three(
                Opcode::ADD,
                Operand::Cur(3),
                Operand::Cur(1),
                Operand::Const(k1),
            )
            .unwrap();
            asm.emit_three(
                Opcode::MUL,
                Operand::Cur(4),
                Operand::Cur(1),
                Operand::Const(k1),
            )
            .unwrap();
        }
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(4),
            Operand::Cur(4),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    let out = m.send("work", Word::Int(3), &[], 10_000).unwrap();
    let s = out.stats;
    assert_eq!(s.base_cycles, 2 * s.instructions);
    let sum: u64 = s.breakdown().iter().map(|(_, c)| c).sum();
    assert_eq!(sum, s.total_cycles());
}

#[test]
fn out_of_geometry_slot_traps_typed_not_panicking() {
    // Operand offset 63 encodes but lies past the 32-word context: a
    // machine-integrity fault with the offending offset, not a panic
    // and not a soft-dispatchable badOperands:.
    let img = image_with("wild", 1, |asm| {
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(63),
            Operand::Cur(63),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    match m.send("wild", Word::Int(7), &[], 1000) {
        Err(MachineError::SlotOutOfRange { offset }) => assert!(offset >= 32, "{offset}"),
        other => panic!("expected SlotOutOfRange, got {other:?}"),
    }
}

#[test]
fn out_of_range_constant_traps_typed_not_panicking() {
    // Constant index 9 with an empty table: the fetch must surface the
    // index in a typed trap instead of indexing past the table.
    let img = image_with("wildc", 1, |asm| {
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Const(9),
            Operand::Const(9),
        )
        .unwrap();
    });
    let mut m = machine(&img);
    match m.send("wildc", Word::Int(7), &[], 1000) {
        Err(MachineError::ConstOutOfRange { index: 9 }) => {}
        other => panic!("expected ConstOutOfRange, got {other:?}"),
    }
}

#[test]
fn negative_jump_displacement_traps_typed() {
    // A hand-built FJMP with a negative displacement constant must trap
    // as BadOperands (displacement magnitudes are non-negative by
    // construction), on both interpreters.
    let img = image_with("negj", 1, |asm| {
        let k = asm.intern_const(Word::Int(-3));
        asm.emit_three(
            Opcode::FJMP,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Const(k),
        )
        .unwrap();
        asm.emit_three_ret(
            Opcode::MOVE,
            Operand::Cur(0),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
    });
    for stepwise in [false, true] {
        let mut m = machine(&img);
        let sel = m.opcodes().get("negj").unwrap();
        m.start_send(sel, Word::Int(7), &[]).unwrap();
        let r = if stepwise {
            m.run_stepwise(1000)
        } else {
            m.run(1000)
        };
        match r {
            Err(MachineError::BadOperands { reason, .. }) => {
                assert!(reason.contains("non-negative"), "{reason}");
            }
            other => panic!("stepwise={stepwise}: expected BadOperands, got {other:?}"),
        }
    }
}
