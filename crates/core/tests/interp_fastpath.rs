//! Regression tests for the threaded interpreter fast paths.
//!
//! The architectural contract (see `com_core::machine` module docs): the
//! threaded loop ([`Machine::run`]) and the reference single-step loop
//! ([`Machine::run_stepwise`]) must be *bit-identical* in everything the
//! simulation models — results, instruction counts, [`CycleStats`], and
//! cache statistics. Only wall-clock may differ.

use com_core::{CycleStats, Machine, MachineConfig, MachineError, ProgramImage};
use com_isa::{Assembler, Opcode, Operand};
use com_mem::{ClassId, Word};
use com_obj::ClassTable;

/// A recursive sum-to-n: calls, returns, branches, constants, interlocks.
fn sumto_image() -> (ProgramImage, &'static str) {
    let mut img = ProgramImage::empty();
    let sel = img.opcodes.intern("sumto");
    let mut asm = Assembler::new("SmallInteger>>sumto", 1);
    let k0 = asm.intern_const(Word::Int(0));
    let k1 = asm.intern_const(Word::Int(1));
    asm.emit_three(
        Opcode::LE,
        Operand::Cur(3),
        Operand::Cur(1),
        Operand::Const(k0),
    )
    .unwrap();
    let base = asm.label();
    asm.jump_if(Operand::Cur(3), base);
    asm.emit_three(
        Opcode::SUB,
        Operand::Cur(4),
        Operand::Cur(1),
        Operand::Const(k1),
    )
    .unwrap();
    asm.emit_three(
        Opcode(sel.0),
        Operand::Cur(5),
        Operand::Cur(4),
        Operand::Cur(4),
    )
    .unwrap();
    asm.emit_three(
        Opcode::ADD,
        Operand::Cur(6),
        Operand::Cur(1),
        Operand::Cur(5),
    )
    .unwrap();
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(6),
        Operand::Cur(6),
    )
    .unwrap();
    asm.bind(base);
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(1),
        Operand::Const(k0),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
    (img, "sumto")
}

/// An image whose `answer` method returns `value` (for reload tests).
fn answer_image(value: i64) -> ProgramImage {
    let mut img = ProgramImage::empty();
    let sel = img.opcodes.intern("answer");
    let mut asm = Assembler::new("SmallInteger>>answer", 1);
    let k = asm.intern_const(Word::Int(value));
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(1),
        Operand::Const(k),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());
    img
}

struct Observed {
    result: Result<(Word, u64), MachineError>,
    stats: CycleStats,
    itlb: Option<com_cache::CacheStats>,
    icache: Option<com_cache::CacheStats>,
    cc: Option<com_core::CtxCacheStats>,
}

fn observe(
    img: &ProgramImage,
    selector: &str,
    recv: Word,
    cfg: MachineConfig,
    max_steps: u64,
    stepwise: bool,
) -> Observed {
    let mut m = Machine::new(cfg);
    m.load(img).unwrap();
    let sel = m.opcodes().get(selector).unwrap();
    m.start_send(sel, recv, &[]).unwrap();
    let result = if stepwise {
        m.run_stepwise(max_steps)
    } else {
        m.run(max_steps)
    }
    .map(|r| (r.result, r.steps));
    Observed {
        result,
        stats: m.stats(),
        itlb: m.itlb_stats(),
        icache: m.icache_stats(),
        cc: m.ctx_cache_stats(),
    }
}

fn assert_bit_identical(
    img: &ProgramImage,
    selector: &str,
    recv: Word,
    cfg: MachineConfig,
    max_steps: u64,
) {
    let a = observe(img, selector, recv, cfg, max_steps, false);
    let b = observe(img, selector, recv, cfg, max_steps, true);
    assert_eq!(a.result, b.result, "results diverged");
    assert_eq!(a.stats, b.stats, "CycleStats diverged");
    assert_eq!(a.itlb, b.itlb, "ITLB stats diverged");
    assert_eq!(a.icache, b.icache, "icache stats diverged");
    assert_eq!(a.cc, b.cc, "context cache stats diverged");
}

#[test]
fn threaded_and_stepwise_loops_are_bit_identical() {
    let (img, sel) = sumto_image();
    for cfg in [
        MachineConfig::default(),
        MachineConfig::default().without_itlb(),
        MachineConfig::default().without_context_cache(),
        MachineConfig::default()
            .without_itlb()
            .without_context_cache(),
        MachineConfig::default().with_ctx_blocks(4), // deep nesting: copyback engages
        MachineConfig::default().without_eager_lifo_free(),
    ] {
        assert_bit_identical(&img, sel, Word::Int(150), cfg, 1_000_000);
    }
}

#[test]
fn loops_agree_at_step_limit_cutoff() {
    // The batched counters must flush exactly at the budget boundary.
    let (img, sel) = sumto_image();
    for max_steps in [1, 2, 3, 7, 50, 123] {
        let a = observe(
            &img,
            sel,
            Word::Int(100),
            MachineConfig::default(),
            max_steps,
            false,
        );
        let b = observe(
            &img,
            sel,
            Word::Int(100),
            MachineConfig::default(),
            max_steps,
            true,
        );
        assert!(matches!(a.result, Err(MachineError::StepLimit)));
        assert_eq!(a.result, b.result, "cutoff at {max_steps}");
        assert_eq!(a.stats, b.stats, "stats at cutoff {max_steps}");
        assert_eq!(a.stats.instructions, max_steps);
    }
}

#[test]
fn loops_agree_with_periodic_gc() {
    let (img, sel) = sumto_image();
    let cfg = MachineConfig {
        gc_interval: Some(97),
        ..MachineConfig::default()
    };
    let a = observe(&img, sel, Word::Int(80), cfg, 1_000_000, false);
    let b = observe(&img, sel, Word::Int(80), cfg, 1_000_000, true);
    assert_eq!(a.result, b.result);
    assert_eq!(a.stats, b.stats);
    assert!(a.stats.gc_runs > 0, "interval GC must actually run");
}

#[test]
fn loops_agree_with_generational_gc() {
    // The write barrier and the minor/full cadence must not perturb the
    // architectural contract: CycleStats (including `gc_cycles` from
    // `GcStats::cost_cycles`) bit-identical between the threaded loop and
    // the stepwise reference loop. Prime intervals land collections in the
    // middle of call bursts rather than on convenient boundaries.
    let (img, sel) = sumto_image();
    let configs = [
        // Minor-only cadence.
        MachineConfig {
            gc_minor_interval: Some(101),
            ..MachineConfig::default()
        },
        // Generational cadence: minor every 101 steps, full every 809.
        MachineConfig {
            gc_minor_interval: Some(101),
            gc_full_interval: Some(809),
            ..MachineConfig::default()
        },
        // Legacy full knob and the minor knob together.
        MachineConfig {
            gc_interval: Some(613),
            gc_minor_interval: Some(97),
            ..MachineConfig::default()
        },
        // Contexts left to the collector: the generational sweep carries
        // the whole reclamation load.
        MachineConfig {
            gc_minor_interval: Some(89),
            gc_full_interval: Some(89 * 7),
            ..MachineConfig::default().without_eager_lifo_free()
        },
        // No context cache: every context store takes the barrier path.
        MachineConfig {
            gc_minor_interval: Some(103),
            gc_full_interval: Some(103 * 5),
            ..MachineConfig::default().without_context_cache()
        },
    ];
    for cfg in configs {
        let a = observe(&img, sel, Word::Int(400), cfg, 1_000_000, false);
        let b = observe(&img, sel, Word::Int(400), cfg, 1_000_000, true);
        assert_eq!(a.result, b.result, "results diverged under {cfg:?}");
        assert_eq!(a.stats, b.stats, "CycleStats diverged under {cfg:?}");
        assert_eq!(a.itlb, b.itlb, "ITLB stats diverged");
        assert_eq!(a.icache, b.icache, "icache stats diverged");
        assert_eq!(a.cc, b.cc, "context cache stats diverged");
        assert!(
            a.stats.gc_minor_runs > 0,
            "minor collections must actually run"
        );
        assert!(a.stats.gc_cycles > 0, "GC cost must be charged");
        if cfg.gc_full_interval.is_some() || cfg.gc_interval.is_some() {
            assert!(
                a.stats.gc_runs > a.stats.gc_minor_runs,
                "full collections must actually run"
            );
        }
    }
}

#[test]
fn reference_interpreter_agrees_under_generational_gc() {
    // The pre-overhaul data paths see the same collections at the same
    // boundaries (the bench baseline must stay comparable).
    let (img, sel) = sumto_image();
    let cfg = MachineConfig {
        gc_minor_interval: Some(101),
        gc_full_interval: Some(809),
        ..MachineConfig::default()
    };
    let fast = observe(&img, sel, Word::Int(120), cfg, 1_000_000, false);
    let reference = observe(
        &img,
        sel,
        Word::Int(120),
        MachineConfig {
            gc_minor_interval: Some(101),
            gc_full_interval: Some(809),
            ..MachineConfig::default().reference_interpreter()
        },
        1_000_000,
        true,
    );
    assert_eq!(fast.result, reference.result);
    assert_eq!(fast.stats, reference.stats);
}

#[test]
fn reference_interpreter_is_architecturally_identical() {
    // The bench baseline (pre-overhaul data paths) models the same
    // machine: same answers, same cycle accounting on a fixed workload.
    let (img, sel) = sumto_image();
    let fast = observe(
        &img,
        sel,
        Word::Int(150),
        MachineConfig::default(),
        1_000_000,
        false,
    );
    let reference = observe(
        &img,
        sel,
        Word::Int(150),
        MachineConfig::default().reference_interpreter(),
        1_000_000,
        true,
    );
    assert_eq!(fast.result, reference.result);
    assert_eq!(fast.stats, reference.stats);
}

#[test]
fn decoded_slab_invalidated_across_load() {
    let mut m = Machine::new(MachineConfig::default());
    m.load(&answer_image(1)).unwrap();
    let out = m.send("answer", Word::Int(0), &[], 10_000).unwrap();
    assert_eq!(out.result, Word::Int(1));

    // Replace the program: the slab and every cached translation must be
    // dropped, or the warm ITLB would dispatch into the old image's code.
    m.load(&answer_image(2)).unwrap();
    let out = m.send("answer", Word::Int(0), &[], 10_000).unwrap();
    assert_eq!(
        out.result,
        Word::Int(2),
        "stale decoded method survived load()"
    );

    // Reloading the same program is also fine (fresh copies, fresh slab).
    m.load(&answer_image(2)).unwrap();
    let out = m.send("answer", Word::Int(0), &[], 10_000).unwrap();
    assert_eq!(out.result, Word::Int(2));
}

#[test]
fn warm_resends_reuse_the_slab_and_agree() {
    // Several sends on one machine: the second and later go through the
    // ITLB-resolved slab path end-to-end.
    let (img, sel) = sumto_image();
    let mut fast = Machine::new(MachineConfig::default());
    fast.load(&img).unwrap();
    let mut slow = Machine::new(MachineConfig::default());
    slow.load(&img).unwrap();
    for n in [10, 40, 160] {
        let s = fast.opcodes().get(sel).unwrap();
        fast.start_send(s, Word::Int(n), &[]).unwrap();
        let a = fast.run(1_000_000).unwrap();
        let s = slow.opcodes().get(sel).unwrap();
        slow.start_send(s, Word::Int(n), &[]).unwrap();
        let b = slow.run_stepwise(1_000_000).unwrap();
        assert_eq!(a.result, Word::Int(n * (n + 1) / 2));
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats, b.stats);
    }
}

/// Every trap path, through both loops: the threaded loop and the
/// stepwise reference must agree on the error, the statistics accrued up
/// to the faulting instruction, and every cache's counters — and both
/// must unwind to machines that answer a follow-up send identically.
#[test]
fn trap_paths_are_bit_identical_between_loops() {
    use com_isa::Instr;

    // One image holding a trap-path method per trap kind, plus a healthy
    // method for the post-trap follow-up send.
    let mut img = ProgramImage::empty();
    let k = |asm: &mut Assembler, v: i64| asm.intern_const(Word::Int(v));

    // dnu: sends an interned-but-nowhere-defined selector.
    let missing = img.opcodes.intern("missingSelector:");
    let sel = img.opcodes.intern("dnu:");
    let mut asm = Assembler::new("SmallInteger>>dnu:", 2);
    asm.emit_three(
        Opcode(missing.0),
        Operand::Cur(3),
        Operand::Cur(1),
        Operand::Cur(2),
    )
    .unwrap();
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(3),
        Operand::Cur(3),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    // div0: divide by zero (BadOperands from the function unit).
    let sel = img.opcodes.intern("div0:");
    let mut asm = Assembler::new("SmallInteger>>div0:", 2);
    let k0 = k(&mut asm, 0);
    asm.emit_three(
        Opcode::DIV,
        Operand::Cur(3),
        Operand::Cur(1),
        Operand::Const(k0),
    )
    .unwrap();
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(3),
        Operand::Cur(3),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    // uninit: an unwritten slot flows into dispatch — the receiver
    // classes as UndefinedObject and the add fails lookup.
    let sel = img.opcodes.intern("uninit:");
    let mut asm = Assembler::new("SmallInteger>>uninit:", 2);
    let k1 = k(&mut asm, 1);
    asm.emit_three(
        Opcode::ADD,
        Operand::Cur(4),
        Operand::Cur(9),
        Operand::Const(k1),
    )
    .unwrap();
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(4),
        Operand::Cur(4),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    // badbranch: a jump whose condition is a pointer-free non-boolean.
    let sel = img.opcodes.intern("badbranch:");
    let mut asm = Assembler::new("SmallInteger>>badbranch:", 2);
    let kf = asm.intern_const(Word::Float(1.5));
    asm.emit(
        Instr::three(
            Opcode::FJMP,
            Operand::Cur(3),
            Operand::Const(kf),
            Operand::Const(kf),
        )
        .unwrap(),
    );
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(1),
        Operand::Cur(1),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    // felloff: no return — the pc leaves the method body.
    let sel = img.opcodes.intern("felloff:");
    let mut asm = Assembler::new("SmallInteger>>felloff:", 2);
    asm.emit_three(
        Opcode::ADD,
        Operand::Cur(3),
        Operand::Cur(1),
        Operand::Cur(2),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    // A healthy method for the post-trap follow-up.
    let sel = img.opcodes.intern("plus:");
    let mut asm = Assembler::new("SmallInteger>>plus:", 2);
    asm.emit_three(
        Opcode::ADD,
        Operand::Cur(3),
        Operand::Cur(1),
        Operand::Cur(2),
    )
    .unwrap();
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(3),
        Operand::Cur(3),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    for trap_sel in ["dnu:", "div0:", "uninit:", "badbranch:", "felloff:"] {
        for cfg in [
            MachineConfig::default(),
            MachineConfig::default().without_itlb(),
            MachineConfig::default().without_context_cache(),
        ] {
            let drive = |stepwise: bool| {
                let mut m = Machine::new(cfg);
                m.load(&img).unwrap();
                let s = m.opcodes().get(trap_sel).unwrap();
                m.start_send(s, Word::Int(6), &[Word::Int(3)]).unwrap();
                let trap = if stepwise {
                    m.run_stepwise(10_000)
                } else {
                    m.run(10_000)
                }
                .map(|r| (r.result, r.steps));
                let trap_stats = m.stats();
                // The unwound machine must serve a follow-up send.
                let s = m.opcodes().get("plus:").unwrap();
                m.start_send(s, Word::Int(2), &[Word::Int(40)]).unwrap();
                let after = if stepwise {
                    m.run_stepwise(10_000)
                } else {
                    m.run(10_000)
                }
                .unwrap();
                (
                    trap,
                    trap_stats,
                    after.result,
                    m.stats(),
                    m.itlb_stats(),
                    m.icache_stats(),
                    m.ctx_cache_stats(),
                )
            };
            let a = drive(false);
            let b = drive(true);
            assert!(a.0.is_err(), "{trap_sel} must trap");
            assert_eq!(a.0, b.0, "{trap_sel}: errors diverged");
            assert_eq!(a.1, b.1, "{trap_sel}: trap-point stats diverged");
            assert_eq!(a.2, Word::Int(42), "{trap_sel}: follow-up wrong");
            assert_eq!(a.3, b.3, "{trap_sel}: post-trap stats diverged");
            assert_eq!(a.4, b.4, "{trap_sel}: ITLB stats diverged");
            assert_eq!(a.5, b.5, "{trap_sel}: icache stats diverged");
            assert_eq!(a.6, b.6, "{trap_sel}: ctx cache stats diverged");
        }
    }
}

/// The handler-dispatch paths (`doesNotUnderstand:` catching a failed
/// send, `badOperands:` catching a divide by zero) through both loops:
/// dispatch must be bit-identical, not just trap exits.
#[test]
fn handler_dispatch_is_bit_identical_between_loops() {
    let mut img = ProgramImage::empty();
    let missing = img.opcodes.intern("missingSelector:");
    let dnu = img
        .opcodes
        .intern(com_obj::TrapSelector::DoesNotUnderstand.name());
    let bad = img
        .opcodes
        .intern(com_obj::TrapSelector::BadOperands.name());

    // proxyBench: n failed sends + one handled divide by zero, looped.
    let sel = img.opcodes.intern("proxyBench");
    let mut asm = Assembler::new("SmallInteger>>proxyBench", 1);
    let k0 = asm.intern_const(Word::Int(0));
    let k1 = asm.intern_const(Word::Int(1));
    // c3 <- self (counter), c4 <- 0 (acc)
    asm.emit_three(
        Opcode::MOVE,
        Operand::Cur(3),
        Operand::Cur(1),
        Operand::Cur(1),
    )
    .unwrap();
    asm.emit_three(
        Opcode::MOVE,
        Operand::Cur(4),
        Operand::Cur(1),
        Operand::Const(k0),
    )
    .unwrap();
    let top = asm.label();
    let body = asm.label();
    let done = asm.label();
    asm.bind(top);
    asm.emit_three(
        Opcode::GT,
        Operand::Cur(5),
        Operand::Cur(3),
        Operand::Const(k0),
    )
    .unwrap();
    asm.jump_if(Operand::Cur(5), body);
    asm.jump(done);
    asm.bind(body);
    // c6 <- self missingSelector: c3   (DNU -> handler answers selector)
    asm.emit_three(
        Opcode(missing.0),
        Operand::Cur(6),
        Operand::Cur(1),
        Operand::Cur(3),
    )
    .unwrap();
    // c7 <- c6 / 0                      (BadOperands -> handler answers 5)
    asm.emit_three(
        Opcode::DIV,
        Operand::Cur(7),
        Operand::Cur(6),
        Operand::Const(k0),
    )
    .unwrap();
    // acc <- acc + c7 ; counter -= 1
    asm.emit_three(
        Opcode::ADD,
        Operand::Cur(4),
        Operand::Cur(4),
        Operand::Cur(7),
    )
    .unwrap();
    asm.emit_three(
        Opcode::SUB,
        Operand::Cur(3),
        Operand::Cur(3),
        Operand::Const(k1),
    )
    .unwrap();
    asm.jump(top);
    asm.bind(done);
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(4),
        Operand::Cur(4),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    // doesNotUnderstand: msg — answer the reified selector opcode.
    let mut asm = Assembler::new("SmallInteger>>doesNotUnderstand:", 2);
    let kz = asm.intern_const(Word::Int(0));
    asm.emit_three(
        Opcode::RAWAT,
        Operand::Cur(3),
        Operand::Cur(2),
        Operand::Const(kz),
    )
    .unwrap();
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(3),
        Operand::Cur(3),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, dnu, asm.finish().unwrap());

    // badOperands: msg — answer 5.
    let mut asm = Assembler::new("SmallInteger>>badOperands:", 2);
    let k5 = asm.intern_const(Word::Int(5));
    asm.emit_three(
        Opcode::MOVE,
        Operand::Cur(3),
        Operand::Cur(1),
        Operand::Const(k5),
    )
    .unwrap();
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(3),
        Operand::Cur(3),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, bad, asm.finish().unwrap());

    for cfg in [
        MachineConfig::default(),
        MachineConfig::default().without_itlb(),
        MachineConfig::default().without_context_cache(),
        MachineConfig {
            gc_minor_interval: Some(101),
            gc_full_interval: Some(809),
            ..MachineConfig::default()
        },
    ] {
        let a = observe(&img, "proxyBench", Word::Int(25), cfg, 1_000_000, false);
        let b = observe(&img, "proxyBench", Word::Int(25), cfg, 1_000_000, true);
        let (result, _) = a.result.clone().unwrap();
        assert_eq!(result, Word::Int(25 * 5), "handlers must carry the loop");
        assert_eq!(a.result, b.result);
        assert_eq!(a.stats, b.stats, "handler dispatch stats diverged");
        assert_eq!(a.itlb, b.itlb);
        assert_eq!(a.icache, b.icache);
        assert_eq!(a.cc, b.cc);
        assert_eq!(a.stats.soft_traps, 50, "25 DNUs + 25 handled divides");
    }
}

#[test]
fn class_chain_cycle_traps_as_corruption_not_dnu() {
    let mut img = ProgramImage::empty();
    img.opcodes.intern("frobnicate");
    // Corrupt the superclass chain: Object loops back to SmallInteger, so
    // looking anything up from an integer receiver walks a cycle.
    img.classes.get_mut(ClassTable::OBJECT).unwrap().superclass = Some(ClassId::SMALL_INT);
    let mut m = Machine::new(MachineConfig::default());
    m.load(&img).unwrap();
    let sel = m.opcodes().get("frobnicate").unwrap();
    m.start_send(sel, Word::Int(1), &[]).unwrap();
    match m.run(100) {
        Err(MachineError::ClassChainCycle { class, .. }) => {
            assert_eq!(class, ClassId::SMALL_INT);
        }
        other => panic!("expected ClassChainCycle, got {other:?}"),
    }
}
