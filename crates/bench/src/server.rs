//! The service-runtime bench pipeline (`BENCH_server.json`).
//!
//! Measures what `com_vm::server::Server` promises under sustained
//! multi-tenant load: requests/second and p50/p99 service latency at
//! many concurrent tenants, **with and without injected faults** — the
//! robustness headline being that a 1% seeded fault rate (traps, stalls,
//! worker panics, fuel exhaustion via [`FaultPlan`]) must not blow up
//! tail latency for everyone else: `p99_faults ≤ 2 × p99_without`.
//!
//! Protocol: paired rounds, like the other pipelines. Each round runs
//! the identical tenant/request schedule twice back to back — once
//! fault-free, once under the seeded plan — on a fresh server each
//! phase; the reported round is the one with the median p99 ratio.
//! Latency is measured server-side per request (admission to terminal
//! response, queue wait included), so backpressure is part of the
//! number, not hidden by it.

use std::time::Duration;

use com_vm::server::{
    FaultPlan, Request, RetryPolicy, Server, ServerConfig, ServerStats, TenantConfig, Ticket,
};
use com_vm::{Vm, VmError};

/// Default concurrent tenants (the ISSUE 6 headline scale).
pub const TENANTS: usize = 1000;

/// Requests each tenant submits per phase.
pub const REQUESTS_PER_TENANT: usize = 4;

/// Default worker threads.
pub const WORKERS: usize = 4;

/// Admission-queue depth — deliberately far below the request count so
/// the bench exercises real backpressure, not an unbounded buffer.
pub const QUEUE_DEPTH: usize = 256;

/// Instructions per weight-1 scheduling turn.
pub const BASE_SLICE: u64 = 500;

/// Injected-fault rate for the faulted phase, in per-mille (10 = 1%).
pub const FAULT_PER_MILLE: u32 = 10;

/// Seed of the fault plan (fixed: the same requests fault every run).
pub const SEED: u64 = 0x5EED_5EED;

/// The bench program: small, self-checked arithmetic loops so the bench
/// measures the *service runtime* (admission, scheduling, retry, fault
/// paths), not raw interpreter throughput.
const PROGRAM: &str = r#"
    class SmallInteger
      method tri | acc |
        acc := 0. 1 to: self do: [ :i | acc := acc + i ]. ^acc
      end
    end
"#;

/// The workload tenant `t` sends as its request `r`: `tri(n)` with n in
/// 40..=102, so every request comfortably crosses the fault plan's step
/// range and runs a few hundred instructions.
fn workload(tenant: usize, request: usize) -> i64 {
    40 + ((tenant * 7 + request * 13) % 63) as i64
}

/// One measured phase (fault-free or faulted) of one round.
#[derive(Debug, Clone, Copy)]
pub struct PhaseRow {
    /// Whether this phase ran under the seeded fault plan.
    pub faults: bool,
    /// Wall nanoseconds from first submission to last response.
    pub wall_ns: u64,
    /// Terminal responses per second over the phase.
    pub req_per_s: f64,
    /// Median service latency (admission → response), microseconds.
    pub p50_us: f64,
    /// 99th-percentile service latency, microseconds.
    pub p99_us: f64,
    /// Requests that completed with a result.
    pub completed: u64,
    /// Requests that ended in a terminal typed error.
    pub failed: u64,
    /// Retry attempts issued.
    pub retries: u64,
    /// Faults fired from the plan.
    pub faults_injected: u64,
    /// Admission-queue high-water mark.
    pub max_queued: usize,
}

/// The whole pipeline's output: the median round's two phases.
#[derive(Debug, Clone)]
pub struct ServerReport {
    /// The fault-free phase of the median round.
    pub without: PhaseRow,
    /// The faulted phase of the median round.
    pub with_faults: PhaseRow,
    /// Tenants per phase.
    pub tenants: usize,
    /// Requests per tenant per phase.
    pub requests_per_tenant: usize,
    /// Worker threads.
    pub workers: usize,
    /// Paired rounds timed.
    pub rounds: u32,
    /// Cores the host exposes.
    pub host_cores: usize,
}

impl ServerReport {
    /// `p99_faults / p99_without` — the robustness headline.
    pub fn p99_ratio(&self) -> f64 {
        self.with_faults.p99_us / self.without.p99_us.max(f64::MIN_POSITIVE)
    }

    /// Whether the ≤2× tail-latency bar is met.
    pub fn target_met(&self) -> bool {
        self.p99_ratio() <= 2.0
    }

    /// Whether the host has fewer cores than the configured workers, so
    /// wall-clock figures reflect time-slicing rather than true
    /// parallelism. The p99 *ratio* is still meaningful (both phases are
    /// equally limited), which is why the bar is judged on it.
    pub fn host_limited(&self) -> bool {
        self.host_cores < self.workers
    }
}

fn percentile_us(sorted: &[Duration], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1].as_secs_f64() * 1e6
}

/// Runs one phase: fresh server, the full tenant/request schedule,
/// latencies gathered from every terminal response.
fn phase(
    vm: &Vm,
    tenants: usize,
    workers: usize,
    plan: FaultPlan,
) -> Result<(PhaseRow, ServerStats), VmError> {
    let faulted = !plan.is_empty();
    let server = Server::with_faults(
        vm.clone(),
        ServerConfig {
            workers,
            queue_depth: QUEUE_DEPTH,
            base_slice: BASE_SLICE,
            retry: RetryPolicy {
                // Injected fuel faults exhaust tiny budgets (< 64); real
                // grants here are unlimited, so only injections retry.
                retry_fuel_limit: 64,
                ..RetryPolicy::default()
            },
        },
        plan,
    );
    for t in 0..tenants {
        server.register(&format!("t{t}"), TenantConfig::default())?;
    }
    let t0 = std::time::Instant::now();
    let mut tickets: Vec<Ticket> = Vec::with_capacity(tenants * REQUESTS_PER_TENANT);
    for r in 0..REQUESTS_PER_TENANT {
        for t in 0..tenants {
            let req = Request::new("tri", workload(t, r)).idempotent(true);
            let ticket = server
                .submit_within(&format!("t{t}"), req, Duration::from_secs(120))
                .expect("blocking submit must admit within the bench budget");
            tickets.push(ticket);
        }
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(tickets.len());
    let mut completed = 0u64;
    for ticket in tickets {
        let resp = ticket.wait();
        if resp.is_ok() {
            completed += 1;
        }
        latencies.push(resp.latency);
    }
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let stats = server.stats();
    let report = server.drain(Duration::from_secs(30));
    assert_eq!(
        report.sessions.len(),
        tenants,
        "drain lost sessions (faulted: {faulted})"
    );
    assert_eq!(stats.completed, completed);
    latencies.sort_unstable();
    let total = latencies.len() as u64;
    Ok((
        PhaseRow {
            faults: faulted,
            wall_ns,
            req_per_s: total as f64 / (wall_ns.max(1) as f64 / 1e9),
            p50_us: percentile_us(&latencies, 0.50),
            p99_us: percentile_us(&latencies, 0.99),
            completed: stats.completed,
            failed: stats.failed,
            retries: stats.retries,
            faults_injected: stats.faults_injected,
            max_queued: stats.max_queued,
        },
        stats,
    ))
}

/// Runs the whole pipeline: `repeats` paired (fault-free, faulted)
/// rounds at `tenants` tenants × [`REQUESTS_PER_TENANT`] requests over
/// `workers` workers, keeping the round with the median p99 ratio.
///
/// # Errors
///
/// Propagates compile, boot, and registration errors.
///
/// # Panics
///
/// Panics if a phase loses a session on drain, sheds work (the blocking
/// submit path never outruns the queue), or fails to answer every
/// admitted request.
pub fn report(tenants: usize, workers: usize, repeats: u32) -> Result<ServerReport, VmError> {
    FaultPlan::silence_injected_panics();
    let vm = Vm::new(PROGRAM)?;
    let names: Vec<String> = (0..tenants).map(|t| format!("t{t}")).collect();
    let plan = FaultPlan::seeded(
        SEED,
        &names,
        REQUESTS_PER_TENANT as u64,
        FAULT_PER_MILLE,
        40,
    );

    // Warm-up: one small paired run (thread-spawn paths, allocator).
    let warm = tenants.min(16);
    let warm_plan = FaultPlan::seeded(SEED, &names[..warm], REQUESTS_PER_TENANT as u64, 50, 40);
    phase(&vm, warm, workers, FaultPlan::new())?;
    phase(&vm, warm, workers, warm_plan)?;

    let mut rounds: Vec<(PhaseRow, PhaseRow)> = Vec::new();
    for _ in 0..repeats.max(1) {
        let (without, stats_a) = phase(&vm, tenants, workers, FaultPlan::new())?;
        assert_eq!(stats_a.failed, 0, "the fault-free phase must not fail");
        assert_eq!(stats_a.shed, 0, "blocking submits must not shed");
        let (with_faults, stats_b) = phase(&vm, tenants, workers, plan.clone())?;
        assert_eq!(
            stats_b.completed + stats_b.failed,
            (tenants * REQUESTS_PER_TENANT) as u64,
            "every admitted request must terminate"
        );
        rounds.push((without, with_faults));
    }
    let ratio = |r: &(PhaseRow, PhaseRow)| r.1.p99_us / r.0.p99_us.max(f64::MIN_POSITIVE);
    rounds.sort_by(|a, b| ratio(a).partial_cmp(&ratio(b)).expect("finite ratios"));
    let (without, with_faults) = rounds[rounds.len() / 2];
    Ok(ServerReport {
        without,
        with_faults,
        tenants,
        requests_per_tenant: REQUESTS_PER_TENANT,
        workers,
        rounds: repeats.max(1),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
    })
}

/// Renders the report as the machine-readable `BENCH_server.json`.
pub fn report_to_json(r: &ServerReport) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "null".to_string()
        }
    }
    fn row(p: &PhaseRow) -> String {
        format!(
            "    {{\"faults\": {}, \"wall_ns\": {}, \"req_per_s\": {}, \"p50_us\": {}, \"p99_us\": {}, \"completed\": {}, \"failed\": {}, \"retries\": {}, \"faults_injected\": {}, \"max_queued\": {}}}",
            p.faults,
            p.wall_ns,
            num(p.req_per_s),
            num(p.p50_us),
            num(p.p99_us),
            p.completed,
            p.failed,
            p.retries,
            p.faults_injected,
            p.max_queued,
        )
    }
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"server\",\n  \"schema\": 1,\n");
    s.push_str(&format!(
        "  \"protocol\": {{\"tenants\": {}, \"requests_per_tenant\": {}, \"workers\": {}, \"queue_depth\": {}, \"base_slice\": {}, \"fault_per_mille\": {}, \"seed\": {}, \"paired_rounds\": {}, \"host_cores\": {}}},\n",
        r.tenants,
        r.requests_per_tenant,
        r.workers,
        QUEUE_DEPTH,
        BASE_SLICE,
        FAULT_PER_MILLE,
        SEED,
        r.rounds,
        r.host_cores,
    ));
    s.push_str("  \"unit\": {\"latency\": \"microseconds from admission to terminal response, queue wait included, measured server-side; paired fault-free/faulted phases per round, median p99-ratio round kept\"},\n");
    s.push_str("  \"rows\": [\n");
    s.push_str(&row(&r.without));
    s.push_str(",\n");
    s.push_str(&row(&r.with_faults));
    s.push_str("\n  ],\n");
    s.push_str(&format!(
        "  \"summary\": {{\"req_per_s\": {}, \"p99_ratio\": {}, \"target_2x_met\": {}, \"host_cores\": {}, \"host_limited\": {}}}\n}}\n",
        num(r.without.req_per_s),
        num(r.p99_ratio()),
        r.target_met(),
        r.host_cores,
        r.host_limited(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_paired_round_terminates_and_reports() {
        // A miniature version of the real pipeline: 12 tenants, 1 round.
        let r = report(12, 2, 1).unwrap();
        let total = (12 * REQUESTS_PER_TENANT) as u64;
        assert_eq!(r.without.completed, total);
        assert_eq!(r.without.failed, 0);
        assert_eq!(
            r.with_faults.completed + r.with_faults.failed,
            total,
            "every faulted-phase request must terminate"
        );
        assert!(r.without.p99_us >= r.without.p50_us);
        assert!(r.without.req_per_s > 0.0);
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let p = PhaseRow {
            faults: false,
            wall_ns: 5_000_000,
            req_per_s: 800.0,
            p50_us: 120.0,
            p99_us: 900.0,
            completed: 4000,
            failed: 0,
            retries: 0,
            faults_injected: 0,
            max_queued: 256,
        };
        let q = PhaseRow {
            faults: true,
            p99_us: 1500.0,
            failed: 25,
            retries: 12,
            faults_injected: 40,
            ..p
        };
        let r = ServerReport {
            without: p,
            with_faults: q,
            tenants: 1000,
            requests_per_tenant: 4,
            workers: 4,
            rounds: 5,
            host_cores: 8,
        };
        assert!((r.p99_ratio() - 1.666).abs() < 0.01);
        assert!(r.target_met());
        assert!(!r.host_limited());
        let j = report_to_json(&r);
        assert!(j.contains("\"bench\": \"server\""));
        assert!(j.contains("\"p99_ratio\": 1.667"));
        assert!(j.contains("\"target_2x_met\": true"));
        assert!(j.contains("\"host_cores\": 8"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn percentiles_index_from_the_sorted_tail() {
        let lat: Vec<Duration> = (1..=100).map(Duration::from_micros).collect();
        assert_eq!(percentile_us(&lat, 0.50), 50.0);
        assert_eq!(percentile_us(&lat, 0.99), 99.0);
        assert_eq!(percentile_us(&lat, 1.0), 100.0);
        assert_eq!(percentile_us(&[], 0.99), 0.0);
    }
}
