//! A1: ITLB ablation — "method lookup overhead may be effectively
//! eliminated" (§1.1).
//!
//! Runs every workload with the paper's ITLB, with a two-level ITLB, and
//! with no ITLB at all (every abstract instruction pays the full hash
//! association), comparing dispatch cost.

use com_bench::{pct, print_table};
use com_core::MachineConfig;
use com_obj::ItlbConfig;
use com_workloads as workloads;

fn main() {
    println!("A1 reproduction — ITLB on / two-level / off");
    let mut rows = Vec::new();
    for w in workloads::all() {
        let (on, m_on) = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let two_level_cfg = MachineConfig {
            itlb: Some(
                ItlbConfig::paper_default()
                    .expect("valid")
                    .with_l2(4096, 4)
                    .expect("valid"),
            ),
            ..MachineConfig::default()
        };
        let (two, _) = workloads::run_com(&w, two_level_cfg, workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let (off, _) = workloads::run_com(
            &w,
            MachineConfig::default().without_itlb(),
            workloads::MAX_STEPS,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let itlb = m_on.itlb_stats().expect("enabled");
        rows.push(vec![
            w.name.to_string(),
            pct(itlb.hit_ratio()),
            format!("{}", on.stats.full_lookups),
            format!("{}", two.stats.full_lookups),
            format!("{}", off.stats.full_lookups),
            format!("{:.3}", on.stats.cpi().unwrap_or(f64::NAN)),
            format!("{:.3}", off.stats.cpi().unwrap_or(f64::NAN)),
            format!(
                "{:.2}x",
                off.stats.total_cycles() as f64 / on.stats.total_cycles() as f64
            ),
        ]);
    }
    print_table(
        "Dispatch cost with and without the ITLB",
        &[
            "workload",
            "ITLB hit",
            "lookups (on)",
            "lookups (2-level)",
            "lookups (off)",
            "CPI (on)",
            "CPI (off)",
            "slowdown off/on",
        ],
        &rows,
    );
    println!(
        "\npaper: with a modest ITLB, 'method lookup overhead may be effectively eliminated' —\n\
         the on-column lookups collapse to the compulsory misses and CPI approaches the base rate."
    );
}
