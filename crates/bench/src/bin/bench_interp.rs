//! Interpreter wall-clock bench: emits `BENCH_interp.json`.
//!
//! ```sh
//! cargo run --release --bin bench_interp            # writes BENCH_interp.json
//! cargo run --release --bin bench_interp -- out.json
//! ```
//!
//! Measures nanoseconds per simulated instruction for the pre-overhaul
//! interpreter (stepwise loop + map-backed ITLB) and the threaded hot
//! loop (decode-time operand resolution + direct-mapped ITLB probe
//! array + batched cycle accounting), per workload. The simulated
//! `CycleStats` are semantics and identical across loops; only wall
//! clock differs.

use com_bench::interp::{interp_rows, rows_to_json};
use com_bench::print_table;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_interp.json".to_string());
    let repeats = 3;
    println!("interpreter bench — {repeats} repeats per loop, best kept");

    let rows = interp_rows(repeats, com_workloads::MAX_STEPS)
        .unwrap_or_else(|e| panic!("bench workload failed: {e}"));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                format!("{}", r.baseline.instructions),
                format!("{:.1}", r.baseline.ns_per_instr()),
                format!("{:.1}", r.threaded.ns_per_instr()),
                format!("{:.2}x", r.speedup()),
                format!("{:.0}k/s", r.threaded.instr_per_sec() / 1e3),
            ]
        })
        .collect();
    print_table(
        "Interpreter wall-clock (baseline = pre-overhaul loop)",
        &[
            "workload",
            "instrs",
            "base ns/instr",
            "threaded ns/instr",
            "speedup",
            "threaded rate",
        ],
        &table,
    );

    let json = rows_to_json(&rows);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");

    for need in ["tab_call_cost", "tab_pipeline"] {
        let r = rows.iter().find(|r| r.name == need).expect("row present");
        let s = r.speedup();
        println!(
            "{need}: {s:.2}x {}",
            if s >= 2.0 {
                "(target ≥2x: MET)"
            } else {
                "(target ≥2x: MISSED)"
            }
        );
    }
}
