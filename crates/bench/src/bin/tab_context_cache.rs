//! T2 + A2: context cache behaviour (§2.3).
//!
//! Paper: "most programs rarely exceed a stack depth of 1024 words or 32
//! contexts. Thus a context cache of this modest size would almost never
//! miss"; copyback handles deeper nesting by keeping part of the cache free.

use com_bench::print_table;
use com_core::MachineConfig;
use com_workloads as workloads;

fn main() {
    println!("T2 reproduction — context cache block sweep (deep-call workload: calls/fib)");
    let w = workloads::CALLS; // fib(15): call depth ~15, dense call traffic
    let mut rows = Vec::new();
    for blocks in [4usize, 8, 16, 32, 64] {
        for copyback in [true, false] {
            let cfg = MachineConfig {
                copyback,
                ..MachineConfig::default().with_ctx_blocks(blocks)
            };
            let (out, m) = workloads::run_com(&w, cfg, workloads::MAX_STEPS)
                .unwrap_or_else(|e| panic!("blocks={blocks}: {e}"));
            let cc = m.ctx_cache_stats().expect("context cache enabled");
            rows.push(vec![
                format!("{blocks}"),
                if copyback { "on" } else { "off" }.to_string(),
                format!("{}", cc.faults),
                format!("{}", cc.copybacks),
                format!("{}", out.stats.ctx_fault_cycles),
                format!("{:.3}", out.stats.cpi().unwrap_or(f64::NAN)),
            ]);
        }
    }
    print_table(
        "Context cache: faults vs block count (calls workload)",
        &[
            "blocks",
            "copyback",
            "faults",
            "copybacks",
            "fault cycles",
            "CPI",
        ],
        &rows,
    );

    // A2: context cache on vs off across all workloads.
    let mut rows = Vec::new();
    for w in workloads::all() {
        let (with_cc, m1) = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let (no_cc, _) = workloads::run_com(
            &w,
            MachineConfig::default().without_context_cache(),
            workloads::MAX_STEPS,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let cc = m1.ctx_cache_stats().expect("enabled");
        let miss_ratio = cc.faults as f64 / (cc.reads + cc.writes).max(1) as f64;
        rows.push(vec![
            w.name.to_string(),
            format!("{}", cc.reads + cc.writes),
            format!("{}", cc.faults),
            format!("{:.4}%", miss_ratio * 100.0),
            format!("{:.3}", with_cc.stats.cpi().unwrap_or(f64::NAN)),
            format!("{:.3}", no_cc.stats.cpi().unwrap_or(f64::NAN)),
        ]);
    }
    print_table(
        "A2: 32-block context cache vs contexts in plain memory",
        &[
            "workload",
            "ctx accesses",
            "faults",
            "fault ratio",
            "CPI (cache)",
            "CPI (no cache)",
        ],
        &rows,
    );
    println!("\npaper: a 32-block context cache 'would almost never miss' -> fault ratios above should be ~0 at 32 blocks");
}
