//! Figure 10: ITLB hit ratio vs log2 of cache size, per associativity.
//!
//! Paper: "The hit ratio in the ITLB for cache sizes varying from 8 to 4096
//! … a 99% hit ratio can be realized with a 512 entry 2-way associative
//! cache. … a great deal can be gained by having at least a 2-way
//! associative cache. It is not clear that adding more associativity
//! improves the hit ratio much."

use com_bench::{merged_fith_trace, pct, print_table};
use com_trace::sweep;

fn main() {
    let trace = merged_fith_trace();
    println!(
        "Figure 10 reproduction — ITLB hit ratio vs cache size\n\
         trace: {} instructions from all portable workloads (20% warmup)",
        trace.len()
    );
    let sizes = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let ways = [1, 2, 4, 8];
    let rows =
        sweep(&trace, &sizes, &ways, 0.2, |e| (e.opcode, e.tos_class)).expect("valid geometries");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                format!("{}", r.entries),
                format!("{:.0}", (r.entries as f64).log2()),
            ];
            row.extend(r.ratios.iter().map(|(_, h)| pct(*h)));
            row
        })
        .collect();
    print_table(
        "ITLB hit ratio",
        &["entries", "log2", "1-way", "2-way", "4-way", "8-way"],
        &table,
    );
    // Headline checks (the paper's stated reading of the figure).
    let r512_2 = rows
        .iter()
        .find(|r| r.entries == 512)
        .and_then(|r| r.ratios[1].1)
        .unwrap_or(0.0);
    println!(
        "\npaper: 99% at 512 entries 2-way; measured: {:.2}% -> {}",
        r512_2 * 100.0,
        if r512_2 >= 0.99 {
            "REPRODUCED"
        } else {
            "CHECK"
        }
    );
}
