//! T4: floating point addresses vs fixed segmentation — the small object
//! problem (§2.2).
//!
//! Paper: MULTICS' 18/18 split allows 256K segments of ≤256K words — "both
//! these limits are too restrictive". A 36-bit floating point address
//! (5-bit exponent, 31-bit mantissa) names billions of segments and
//! segments up to 2^31 words.

use com_bench::print_table;
use com_fpa::{AddressScheme, FixedFormat, FpaFormat, NamingOutcome};

/// Deterministic splitmix64 generator (no external dependencies).
struct Rng64(u64);

impl Rng64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next() % (hi - lo + 1)
    }
}

fn scheme_rows(schemes: &mut [(&str, Box<dyn AddressScheme>)]) -> Vec<Vec<String>> {
    // A Smalltalk-flavoured object mix: mostly tiny objects, occasional
    // large images (the paper's image-processing motivation).
    let mut rng = Rng64(1985);
    let mut sizes = Vec::new();
    for _ in 0..400_000 {
        let r: f64 = rng.unit();
        let words: u64 = if r < 0.80 {
            rng.range(1, 8) // tiny: points, pairs, cons cells
        } else if r < 0.97 {
            rng.range(9, 64) // small: contexts, small arrays
        } else if r < 0.999 {
            rng.range(65, 4096) // medium collections
        } else {
            rng.range(1 << 18, 1 << 22) // images
        };
        sizes.push(words);
    }
    let mut rows = Vec::new();
    for (name, scheme) in schemes.iter_mut() {
        scheme.reset();
        let mut named = 0u64;
        let mut out_of_names = 0u64;
        let mut too_large = 0u64;
        let mut slack: u128 = 0;
        let mut payload: u128 = 0;
        for &words in &sizes {
            match scheme.name_object(words) {
                NamingOutcome::Named { slack_words } => {
                    named += 1;
                    slack += slack_words as u128;
                    payload += words as u128;
                }
                NamingOutcome::OutOfNames => out_of_names += 1,
                NamingOutcome::TooLarge => too_large += 1,
            }
        }
        let overhead = if payload > 0 {
            slack as f64 / payload as f64
        } else {
            f64::INFINITY
        };
        rows.push(vec![
            name.to_string(),
            format!("{named}"),
            format!("{out_of_names}"),
            format!("{too_large}"),
            format!("{:.2}x", overhead),
        ]);
    }
    rows
}

fn main() {
    println!("T4 reproduction — the small object problem");

    // Address-space capacities (paper's comparison table).
    let fpa = FpaFormat::COM;
    let multics = FixedFormat::MULTICS;
    let cap_rows = vec![
        vec![
            "fixed 18/18 (MULTICS)".to_string(),
            format!("{}", multics.max_segments()),
            format!("{}", multics.max_segment_words()),
        ],
        vec![
            "floating point 5/31 (COM)".to_string(),
            format!("{}", fpa.total_segment_names()),
            format!("{}", fpa.max_segment_words()),
        ],
    ];
    print_table(
        "36-bit address formats",
        &["scheme", "nameable segments", "max segment words"],
        &cap_rows,
    );

    let mut schemes: Vec<(&str, Box<dyn AddressScheme>)> = vec![
        ("fixed 18/18", Box::new(com_fpa::FixedScheme::new(multics))),
        (
            "fixed 12/24",
            Box::new(com_fpa::FixedScheme::new(
                FixedFormat::new(12, 24).expect("valid"),
            )),
        ),
        (
            "fixed 24/12",
            Box::new(com_fpa::FixedScheme::new(
                FixedFormat::new(24, 12).expect("valid"),
            )),
        ),
        ("fpa 5/31", Box::new(com_fpa::FpaScheme::new(fpa))),
    ];
    let rows = scheme_rows(&mut schemes);
    print_table(
        "Naming 400,000 objects (80% tiny / 17% small / 3% medium / 0.1% image)",
        &[
            "scheme",
            "named",
            "out of names",
            "too large",
            "naming slack",
        ],
        &rows,
    );
    println!(
        "\npaper: fixed splits fail on one tail or the other (too few names, or large objects \
         unaddressable, or enormous per-object slack); the floating point format handles both. \
         fpa slack stays ~1x (power-of-two rounding) while naming everything."
    );
}
