//! Service-runtime bench: emits `BENCH_server.json`.
//!
//! ```sh
//! cargo run --release --bin bench_server                  # writes BENCH_server.json
//! cargo run --release --bin bench_server -- out.json
//! cargo run --release --bin bench_server -- out.json --tenants 1000 --workers 4 --repeats 5
//! ```
//!
//! Paired phases per round — the identical tenant/request schedule
//! fault-free and under a seeded 1% fault plan (traps, stalls, worker
//! panics, fuel exhaustion) — median p99-ratio round kept. Acceptance
//! bar: `p99_with_faults ≤ 2 × p99_without`. The JSON records
//! `host_cores`/`host_limited` honestly; the ratio bar is judged on the
//! ratio precisely because both phases share whatever hardware limits
//! exist.

use com_bench::print_table;
use com_bench::server::{report, report_to_json};

fn parse_args() -> (String, usize, usize, u32) {
    let mut out = "BENCH_server.json".to_string();
    let mut tenants = com_bench::server::TENANTS;
    let mut workers = com_bench::server::WORKERS;
    let mut repeats = 5u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tenants" => {
                tenants = args
                    .next()
                    .expect("--tenants needs a count")
                    .parse()
                    .expect("tenants must be an integer");
            }
            "--workers" => {
                workers = args
                    .next()
                    .expect("--workers needs a count")
                    .parse()
                    .expect("workers must be an integer");
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .expect("--repeats needs a count")
                    .parse()
                    .expect("repeats must be an integer");
            }
            other if other.starts_with("--") => {
                panic!("unknown flag {other}; supported: --tenants n --workers n --repeats n")
            }
            other => out = other.to_string(),
        }
    }
    (out, tenants, workers, repeats)
}

fn main() {
    let (out_path, tenants, workers, repeats) = parse_args();
    println!(
        "server bench — {tenants} tenants x {} requests over {workers} workers, {repeats} paired rounds, median p99-ratio kept",
        com_bench::server::REQUESTS_PER_TENANT,
    );

    let r =
        report(tenants, workers, repeats).unwrap_or_else(|e| panic!("server bench failed: {e}"));

    let table: Vec<Vec<String>> = [&r.without, &r.with_faults]
        .iter()
        .map(|p| {
            vec![
                if p.faults { "1%" } else { "none" }.to_string(),
                format!("{:.0}", p.req_per_s),
                format!("{:.0}", p.p50_us),
                format!("{:.0}", p.p99_us),
                format!("{}", p.completed),
                format!("{}", p.failed),
                format!("{}", p.retries),
                format!("{}", p.faults_injected),
                format!("{}", p.max_queued),
            ]
        })
        .collect();
    print_table(
        "Sustained service latency (median round)",
        &[
            "faults",
            "req/s",
            "p50 us",
            "p99 us",
            "completed",
            "failed",
            "retries",
            "injected",
            "max queued",
        ],
        &table,
    );

    println!(
        "\ntail latency: p99 {:.0}us fault-free vs {:.0}us at 1% faults = {:.2}x on a {}-core host {}",
        r.without.p99_us,
        r.with_faults.p99_us,
        r.p99_ratio(),
        r.host_cores,
        if r.target_met() {
            "(target ≤2x: MET)"
        } else {
            "(target ≤2x: MISSED)"
        }
    );
    if r.host_limited() {
        println!(
            "note: host has fewer cores than workers; absolute throughput is time-sliced, the p99 ratio remains comparable"
        );
    }

    let json = report_to_json(&r);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    assert!(
        r.target_met(),
        "acceptance: p99 with faults must stay within 2x of fault-free (got {:.2}x)",
        r.p99_ratio()
    );
}
