//! T6: CPI decomposition by stall source (§3.6).
//!
//! Paper: the pipeline issues one instruction every two clocks; CPI above
//! 2.0 comes only from the enumerated stall sources (branch delays, call
//! linkage, operand copies, lookup, cache misses, memory operations,
//! interlocks, GC).

use com_bench::print_table;
use com_core::MachineConfig;
use com_workloads as workloads;

fn main() {
    println!("T6 reproduction — CPI decomposition");
    let mut rows = Vec::new();
    for w in workloads::all() {
        let (out, _) = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let s = out.stats;
        let total = s.total_cycles() as f64;
        let part = |c: u64| format!("{:.1}%", 100.0 * c as f64 / total);
        rows.push(vec![
            w.name.to_string(),
            format!("{}", s.instructions),
            format!("{:.3}", s.cpi().unwrap_or(f64::NAN)),
            part(s.base_cycles),
            part(s.branch_delay_cycles),
            part(s.call_linkage_cycles + s.operand_copy_cycles),
            part(s.lookup_cycles),
            part(s.icache_miss_cycles),
            part(s.ctx_fault_cycles),
            part(s.memory_op_cycles),
            part(s.interlock_cycles),
        ]);
    }
    print_table(
        "Cycle breakdown per workload",
        &[
            "workload",
            "instrs",
            "CPI",
            "base",
            "branch",
            "call",
            "lookup",
            "icache",
            "ctxfault",
            "memory",
            "interlock",
        ],
        &rows,
    );
    println!(
        "\npaper: base rate is 1 instruction / 2 clocks; every workload's base share is 2/CPI.\n\
         Lookup share stays small because the ITLB absorbs dispatch (see abl_itlb for the converse)."
    );
}
