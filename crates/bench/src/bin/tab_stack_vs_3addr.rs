//! T3: stack machine vs three-address machine (§5).
//!
//! Paper: "Stack machines while offering small code size require almost
//! twice as many instructions to implement a given source language program
//! than a three address machine. Our initial design studies indicated that
//! executing a stack machine instruction would take about the same amount
//! of time as executing a three address instruction. From this analysis,
//! the three address COM should offer a significant performance
//! improvement over a stack machine."

use com_bench::print_table;
use com_core::MachineConfig;
use com_workloads as workloads;

fn main() {
    println!("T3 reproduction — Fith (stack) vs COM (three-address)");
    let mut rows = Vec::new();
    let mut total_ratio = 0.0;
    let mut n = 0.0;
    for w in workloads::portable() {
        let (com, _) = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let (fith, _) = workloads::run_fith(&w, workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(com.result, fith.result, "{} disagreement", w.name);
        let ratio = fith.stats.instructions as f64 / com.stats.instructions as f64;
        let cycle_ratio = fith.stats.cycles as f64 / com.stats.total_cycles() as f64;
        total_ratio += ratio;
        n += 1.0;
        rows.push(vec![
            w.name.to_string(),
            format!("{}", com.stats.instructions),
            format!("{}", fith.stats.instructions),
            format!("{ratio:.2}x"),
            format!("{:.2}", com.stats.cpi().unwrap_or(f64::NAN)),
            format!("{:.2}", fith.stats.cpi().unwrap_or(f64::NAN)),
            format!("{cycle_ratio:.2}x"),
        ]);
    }
    print_table(
        "Instruction and cycle counts per workload",
        &[
            "workload",
            "COM instrs",
            "Fith instrs",
            "instr ratio",
            "COM CPI",
            "Fith CPI",
            "cycle ratio",
        ],
        &rows,
    );
    let mean = total_ratio / n;
    println!(
        "\nmean instruction ratio (stack / three-address): {:.2}x (paper: ~2x) -> {}",
        mean,
        if (1.5..=3.0).contains(&mean) {
            "REPRODUCED"
        } else {
            "CHECK"
        }
    );
}
