//! A3: control-flow inlining ablation (§4).
//!
//! The paper's compiler inlines common control-flow messages. Turning that
//! off makes every conditional build a real block object (heap allocation,
//! an escaping home context, a `value` send) — measuring exactly the
//! overhead the inlining avoids and the non-LIFO context traffic it
//! suppresses.

use com_bench::print_table;
use com_core::MachineConfig;
use com_stc::CompileOptions;
use com_workloads as workloads;

fn main() {
    println!("A3 reproduction — control-flow inlining on/off");
    let mut rows = Vec::new();
    for w in workloads::all() {
        let (inl, _) = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let opts = CompileOptions {
            inline_control_flow: false,
            with_stdlib: true,
        };
        let (noinl, _) = workloads::run_com_with_options(
            &w,
            MachineConfig::default(),
            opts,
            workloads::MAX_STEPS,
        )
        .unwrap_or_else(|e| panic!("{} (no-inline): {e}", w.name));
        assert_eq!(inl.result, noinl.result, "{} result changed", w.name);
        rows.push(vec![
            w.name.to_string(),
            format!("{}", inl.stats.instructions),
            format!("{}", noinl.stats.instructions),
            format!("{}", inl.stats.calls),
            format!("{}", noinl.stats.calls),
            format!("{}", inl.stats.contexts_left_to_gc),
            format!("{}", noinl.stats.contexts_left_to_gc),
            format!(
                "{:.2}x",
                noinl.stats.total_cycles() as f64 / inl.stats.total_cycles() as f64
            ),
        ]);
    }
    print_table(
        "Inlined vs real-block conditionals",
        &[
            "workload",
            "instrs (inline)",
            "instrs (blocks)",
            "calls (inline)",
            "calls (blocks)",
            "nonLIFO (inline)",
            "nonLIFO (blocks)",
            "slowdown",
        ],
        &rows,
    );
    println!("\nconditionals as real blocks multiply sends, allocations and non-LIFO contexts — the overhead §4's compiler avoids by inlining.");
}
