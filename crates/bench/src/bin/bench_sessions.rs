//! Multi-tenant session bench: emits `BENCH_sessions.json`.
//!
//! ```sh
//! cargo run --release --bin bench_sessions                 # writes BENCH_sessions.json
//! cargo run --release --bin bench_sessions -- out.json
//! cargo run --release --bin bench_sessions -- out.json --sessions 16 --repeats 5
//! ```
//!
//! Two measurements:
//!
//! * **Spin-up** (paired-median wall clock): a tenant `Session` over the
//!   shared pre-decoded image vs a fresh compile + load of the same
//!   program. Acceptance bar: ≥ 10× cheaper.
//! * **Round-robin fidelity**: N tenants interleaved by the cooperative
//!   scheduler must finish every workload with results and `CycleStats`
//!   bit-identical to sequential execution (asserted exactly).

use com_bench::print_table;
use com_bench::sessions::{report, report_to_json};

fn parse_args() -> (String, usize, u32) {
    let mut out = "BENCH_sessions.json".to_string();
    let mut sessions = 16usize;
    let mut repeats = 5u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sessions" => {
                sessions = args
                    .next()
                    .expect("--sessions needs a count")
                    .parse()
                    .expect("sessions must be an integer");
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .expect("--repeats needs a count")
                    .parse()
                    .expect("repeats must be an integer");
            }
            other if other.starts_with("--") => {
                panic!("unknown flag {other}; supported: --sessions n --repeats n")
            }
            other => out = other.to_string(),
        }
    }
    (out, sessions, repeats)
}

fn main() {
    let (out_path, sessions, repeats) = parse_args();
    println!("sessions bench — {sessions} tenants, {repeats} paired spin-up rounds, median kept");

    let r = report(sessions, repeats).unwrap_or_else(|e| panic!("sessions bench failed: {e}"));

    println!(
        "\nspin-up: fresh compile+load {} ns, shared-image session() {} ns — {:.1}x {}",
        r.spinup.fresh_ns,
        r.spinup.session_ns,
        r.spinup.speedup(),
        if r.spinup.speedup() >= 10.0 {
            "(target ≥10x: MET)"
        } else {
            "(target ≥10x: MISSED)"
        }
    );

    let table: Vec<Vec<String>> = r
        .tenants
        .iter()
        .map(|t| {
            vec![
                format!("{}", t.tenant),
                t.workload.to_string(),
                format!("{}", t.result),
                format!("{}", t.instructions),
                format!("{}", t.slices),
                if t.matches_sequential { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    print_table(
        &format!(
            "{}-session round-robin ({} rounds) vs sequential",
            r.sessions, r.rounds
        ),
        &[
            "tenant",
            "workload",
            "result",
            "instructions",
            "slices",
            "bit-identical",
        ],
        &table,
    );
    println!(
        "\nround-robin fidelity: {}",
        if r.all_match() {
            "every tenant bit-identical to its sequential run"
        } else {
            "DIVERGENCE DETECTED"
        }
    );

    let json = report_to_json(&r);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");
    assert!(r.all_match(), "round-robin diverged from sequential");
}
