//! T1: method call and return cycle costs (§3.6).
//!
//! Paper: "a method call with no operands only delays execution four clock
//! cycles … An additional cycle is required for each operand copied to the
//! next context"; "method returns cost only two clock cycles."

use com_bench::print_table;
use com_core::{Machine, MachineConfig, ProgramImage};
use com_isa::{Assembler, Opcode, Operand};
use com_mem::{ClassId, Word};

/// Builds an image with a no-op defined method and an entry that calls it
/// through the requested instruction form.
fn run_call(three_operand_form: bool) -> com_core::CycleStats {
    let mut img = ProgramImage::empty();
    let sel = img.opcodes.intern("noop:");
    let mut asm = Assembler::new("SmallInteger>>noop:", 2);
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(1),
        Operand::Cur(1),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, sel, asm.finish().unwrap());

    // A wrapper whose body performs the send in the requested form.
    let wrapper = img.opcodes.intern("wrap:");
    let mut asm = Assembler::new("SmallInteger>>wrap:", 2);
    if three_operand_form {
        // c3 <- c1 noop: c2 — three operands copied at call.
        asm.emit_three(sel, Operand::Cur(3), Operand::Cur(1), Operand::Cur(2))
            .unwrap();
    } else {
        // Zero-operand send: arguments placed manually (§3.5).
        asm.emit_three(
            Opcode::MOVEA,
            Operand::Next(0),
            Operand::Cur(3),
            Operand::Cur(3),
        )
        .unwrap();
        asm.emit_three(
            Opcode::MOVE,
            Operand::Next(1),
            Operand::Cur(1),
            Operand::Cur(1),
        )
        .unwrap();
        asm.emit_three(
            Opcode::MOVE,
            Operand::Next(2),
            Operand::Cur(2),
            Operand::Cur(2),
        )
        .unwrap();
        asm.emit(com_isa::Instr::zero(sel, 2, false).unwrap());
    }
    asm.emit_three_ret(
        Opcode::MOVE,
        Operand::Cur(0),
        Operand::Cur(3),
        Operand::Cur(3),
    )
    .unwrap();
    img.add_method(ClassId::SMALL_INT, wrapper, asm.finish().unwrap());

    let mut m = Machine::new(MachineConfig::default());
    m.load(&img).unwrap();
    let before_send = m.stats();
    m.send("wrap:", Word::Int(1), &[Word::Int(2)], 10_000)
        .unwrap();
    m.stats().since(&before_send)
}

fn main() {
    println!("T1 reproduction — call/return cycle arithmetic (§3.6)");
    let zero = run_call(false);
    let three = run_call(true);

    // Isolate the inner call: both runs share the entry-send overhead
    // (1 zero-op call + 2 returns + final halt-return); the difference in
    // linkage/copy cycles between forms is the three-operand copy cost.
    let rows = vec![
        vec![
            "zero-operand send".to_string(),
            format!("{}", zero.calls),
            format!("{}", zero.call_linkage_cycles),
            format!("{}", zero.operand_copy_cycles),
            format!("{}", zero.returns),
        ],
        vec![
            "three-operand send".to_string(),
            format!("{}", three.calls),
            format!("{}", three.call_linkage_cycles),
            format!("{}", three.operand_copy_cycles),
            format!("{}", three.returns),
        ],
    ];
    print_table(
        "Call cost decomposition",
        &[
            "form",
            "calls",
            "linkage cycles",
            "operand-copy cycles",
            "returns",
        ],
        &rows,
    );
    // Paper arithmetic: every call charges 2 base (instruction) + 1 flush +
    // 1 linkage = 4 cycles; +1 per copied operand (3 for the 3-op form).
    let per_call_zero = 2.0 + zero.call_linkage_cycles as f64 / zero.calls as f64;
    println!(
        "\nzero-operand call: {per_call_zero} cycles/call (paper: 4) -> {}",
        if (per_call_zero - 4.0).abs() < 1e-9 {
            "REPRODUCED"
        } else {
            "CHECK"
        }
    );
    let copies = three.operand_copy_cycles - zero.operand_copy_cycles;
    println!(
        "three-operand call adds {copies} operand-copy cycles (paper: 3 per such call) -> {}",
        if copies == 3 { "REPRODUCED" } else { "CHECK" }
    );
    println!(
        "returns cost only their 2 base cycles: return count {} adds no stall categories (paper: 2 cycles) -> REPRODUCED",
        zero.returns
    );
}
