//! Garbage-collection bench: emits `BENCH_gc.json`.
//!
//! ```sh
//! cargo run --release --bin bench_gc                     # writes BENCH_gc.json
//! cargo run --release --bin bench_gc -- out.json
//! cargo run --release --bin bench_gc -- out.json --sizes 60,120 --repeats 1
//! ```
//!
//! Compares a full-mark-sweep-only collection cadence against the
//! generational (minor + occasional full) cadence on the `churn`
//! workload, at several live-heap sizes. The headline metric is words
//! scanned per word reclaimed; the acceptance bar is ≥2× in the
//! generational configuration's favour with `run`/`run_stepwise`
//! `CycleStats` bit-identical (asserted per size).

use com_bench::gc::{gc_rows, rows_to_json, GcRow};
use com_bench::print_table;

fn parse_args() -> (String, Vec<i64>, u32) {
    let mut out = "BENCH_gc.json".to_string();
    let mut sizes = vec![120, 240, 480];
    let mut repeats = 3;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--sizes" => {
                let v = args.next().expect("--sizes needs a comma-separated list");
                sizes = v
                    .split(',')
                    .map(|s| s.trim().parse().expect("size must be an integer"))
                    .collect();
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .expect("--repeats needs a count")
                    .parse()
                    .expect("repeats must be an integer");
            }
            other if other.starts_with("--") => {
                panic!("unknown flag {other}; supported: --sizes a,b,c --repeats n")
            }
            other => out = other.to_string(),
        }
    }
    (out, sizes, repeats)
}

fn main() {
    let (out_path, sizes, repeats) = parse_args();
    println!("gc bench — sizes {sizes:?}, {repeats} paired rounds, median kept");

    let rows: Vec<GcRow> =
        gc_rows(&sizes, repeats).unwrap_or_else(|e| panic!("gc bench failed: {e}"));

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.size),
                format!("{}", r.live_words),
                format!("{:.1}", r.full.scanned_per_freed()),
                format!("{:.1}", r.generational.scanned_per_freed()),
                format!("{:.0}", r.full.scanned_per_collection()),
                format!("{:.0}", r.generational.scanned_per_collection()),
                format!("{:.2}x", r.scan_efficiency()),
            ]
        })
        .collect();
    print_table(
        "GC scanning cost (full mark-sweep vs generational)",
        &[
            "size",
            "live words",
            "full scan/freed",
            "gen scan/freed",
            "full scan/gc",
            "gen scan/gc",
            "efficiency",
        ],
        &table,
    );

    let json = rows_to_json(&rows);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");

    for r in &rows {
        let e = r.scan_efficiency();
        println!(
            "size {}: {e:.2}x {}",
            r.size,
            if e >= 2.0 {
                "(target ≥2x: MET)"
            } else {
                "(target ≥2x: MISSED)"
            }
        );
    }
}
