//! Parallel-executor bench: emits `BENCH_parallel.json`.
//!
//! ```sh
//! cargo run --release --bin bench_parallel                 # writes BENCH_parallel.json
//! cargo run --release --bin bench_parallel -- out.json
//! cargo run --release --bin bench_parallel -- out.json --tenants 32 --workers 1,2,4,8 --repeats 5
//! ```
//!
//! Two measurements:
//!
//! * **Fidelity**: every tenant, at every worker count, must finish with
//!   a result and `CycleStats` bit-identical to solo execution (asserted
//!   exactly — a divergence aborts the bench).
//! * **Scaling**: aggregate drain throughput at 4 workers vs 1 worker,
//!   paired rounds, median kept. Acceptance bar: ≥ 2×. Wall-clock
//!   scaling requires real cores; the JSON records `host_cores` and
//!   flags `host_limited` when the machine cannot express parallelism
//!   (1 core), so the bar is judged on capable hardware.

use com_bench::parallel::{report, report_to_json};
use com_bench::print_table;

fn parse_args() -> (String, usize, Vec<usize>, u32) {
    let mut out = "BENCH_parallel.json".to_string();
    let mut tenants = com_bench::parallel::TENANTS;
    let mut workers: Vec<usize> = com_bench::parallel::WORKER_COUNTS.to_vec();
    let mut repeats = 5u32;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--tenants" => {
                tenants = args
                    .next()
                    .expect("--tenants needs a count")
                    .parse()
                    .expect("tenants must be an integer");
            }
            "--workers" => {
                workers = args
                    .next()
                    .expect("--workers needs a comma-separated list")
                    .split(',')
                    .map(|w| w.parse().expect("worker counts must be integers"))
                    .collect();
            }
            "--repeats" => {
                repeats = args
                    .next()
                    .expect("--repeats needs a count")
                    .parse()
                    .expect("repeats must be an integer");
            }
            other if other.starts_with("--") => {
                panic!("unknown flag {other}; supported: --tenants n --workers a,b,c --repeats n")
            }
            other => out = other.to_string(),
        }
    }
    (out, tenants, workers, repeats)
}

fn main() {
    let (out_path, tenants, workers, repeats) = parse_args();
    println!(
        "parallel bench — {tenants} tenants over workers {workers:?}, {repeats} paired rounds, median kept"
    );

    let r =
        report(tenants, &workers, repeats).unwrap_or_else(|e| panic!("parallel bench failed: {e}"));

    let table: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|row| {
            vec![
                format!("{}", row.workers),
                format!("{}", row.wall_ns),
                format!("{}", row.instructions),
                format!("{:.1}", row.throughput),
                format!("{:.2}x", row.speedup_vs_1),
                format!("{}", row.steals),
                format!("{}", row.migrations),
            ]
        })
        .collect();
    print_table(
        "Aggregate drain throughput (median round)",
        &[
            "workers",
            "wall ns",
            "instructions",
            "instr/us",
            "speedup",
            "steals",
            "migrations",
        ],
        &table,
    );

    println!(
        "\nfidelity: {} tenants x {} worker counts all bit-identical to solo: {}",
        r.tenants,
        r.rows.len(),
        r.all_match,
    );
    println!(
        "scaling: {:.2}x at {} workers on a {}-core host {}",
        r.headline_speedup(),
        r.headline_workers(),
        r.host_cores,
        if r.target_met() {
            "(target ≥2x: MET)"
        } else if r.host_limited() {
            "(target ≥2x: HOST-LIMITED — fewer cores than workers caps wall-clock parallelism)"
        } else {
            "(target ≥2x: MISSED)"
        }
    );

    let json = report_to_json(&r);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("\nwrote {out_path}");
}
