//! Figure 11: instruction cache hit ratio vs log2 of cache size.
//!
//! Paper: "it appears that a 2 or 4-way associative cache with 4096 entries
//! is required to achieve a 99% hit ratio."

use com_bench::{merged_fith_trace, pct, print_table};
use com_trace::sweep;

fn main() {
    let trace = merged_fith_trace();
    println!(
        "Figure 11 reproduction — instruction cache hit ratio vs cache size\n\
         trace: {} instruction addresses (20% warmup)",
        trace.len()
    );
    let sizes = [8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096];
    let ways = [1, 2, 4, 8];
    let rows = sweep(&trace, &sizes, &ways, 0.2, |e| e.addr).expect("valid geometries");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let mut row = vec![
                format!("{}", r.entries),
                format!("{:.0}", (r.entries as f64).log2()),
            ];
            row.extend(r.ratios.iter().map(|(_, h)| pct(*h)));
            row
        })
        .collect();
    print_table(
        "Instruction cache hit ratio",
        &["entries", "log2", "1-way", "2-way", "4-way", "8-way"],
        &table,
    );
    let r4096 = rows
        .iter()
        .find(|r| r.entries == 4096)
        .and_then(|r| r.ratios[1].1)
        .unwrap_or(0.0);
    let r512 = rows
        .iter()
        .find(|r| r.entries == 512)
        .and_then(|r| r.ratios[1].1)
        .unwrap_or(0.0);
    println!(
        "\npaper: 99% needs the largest (4096) cache; measured 4096x2: {:.2}%, 512x2: {:.2}% -> {}",
        r4096 * 100.0,
        r512 * 100.0,
        if r4096 >= 0.99 { "REPRODUCED" } else { "CHECK" }
    );
}
