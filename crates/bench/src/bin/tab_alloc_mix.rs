//! T5: allocation and reference mix; eager LIFO freeing vs GC burden (§2.3).
//!
//! Paper citations re-measured on our workloads: "85% of all object
//! allocations and deallocations involve contexts"; "over 91% of all memory
//! references are to contexts"; "85% of contexts allocated in Smalltalk are
//! indeed LIFO … explicitly freed upon procedure exit, eliminating much of
//! the garbage collection overhead."

use com_bench::print_table;
use com_core::MachineConfig;
use com_mem::AllocKind;
use com_workloads as workloads;

fn main() {
    println!("T5 reproduction — allocation/reference mix and LIFO context recovery");
    let mut rows = Vec::new();
    for w in workloads::all() {
        let (out, m) = workloads::run_com(&w, MachineConfig::default(), workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let st = m.space().stats();
        let s = out.stats;
        let total_ctx = s.contexts_allocated.max(1);
        let lifo_frac = s.contexts_freed_lifo as f64 / total_ctx as f64;
        // Context references are served by the context cache fast path
        // (that is the point of §2.3); count them from the cache, plus the
        // at:/at:put: traffic that reached context objects through memory.
        let cc = m.ctx_cache_stats().expect("context cache enabled");
        let ctx_refs = cc.reads + cc.writes + st.references_of(AllocKind::Context);
        let obj_refs = st.references_of(AllocKind::Object);
        let ref_frac = ctx_refs as f64 / (ctx_refs + obj_refs).max(1) as f64;
        rows.push(vec![
            w.name.to_string(),
            format!("{}", s.contexts_allocated),
            format!("{}", st.allocs_of(AllocKind::Object)),
            format!(
                "{:.1}%",
                100.0 * s.contexts_allocated as f64
                    / (s.contexts_allocated + st.allocs_of(AllocKind::Object)).max(1) as f64
            ),
            format!("{:.1}%", 100.0 * ref_frac),
            format!("{:.1}%", 100.0 * lifo_frac),
            format!("{}", s.contexts_left_to_gc),
        ]);
    }
    print_table(
        "Allocation and reference mix per workload",
        &[
            "workload",
            "ctx allocs",
            "obj allocs",
            "ctx alloc frac (paper 85%)",
            "ctx ref frac (paper 91%)",
            "LIFO frac (paper 85%)",
            "left to GC",
        ],
        &rows,
    );

    // GC burden with vs without eager LIFO freeing: run the closure-heavy
    // workload with a forced GC interval and compare collector work.
    let mut rows = Vec::new();
    for (label, eager) in [
        ("eager LIFO free (paper)", true),
        ("all contexts to GC", false),
    ] {
        let mut cfg = MachineConfig {
            gc_interval: Some(20_000),
            ..MachineConfig::default()
        };
        if !eager {
            cfg = cfg.without_eager_lifo_free();
        }
        let (out, _) = workloads::run_com(&workloads::CLOSURES, cfg, workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("closures: {e}"));
        rows.push(vec![
            label.to_string(),
            format!("{}", out.stats.gc_runs),
            format!("{}", out.stats.gc_cycles),
            format!("{}", out.stats.contexts_freed_lifo),
            format!("{}", out.stats.contexts_left_to_gc),
            format!("{:.3}", out.stats.cpi().unwrap_or(f64::NAN)),
        ]);
    }
    print_table(
        "GC burden: eager LIFO freeing vs collector-only (closures workload)",
        &[
            "mode",
            "gc runs",
            "gc cycles",
            "freed LIFO",
            "left to GC",
            "CPI",
        ],
        &rows,
    );
    println!("\npaper: explicit LIFO freeing eliminates most context GC work -> gc cycles should drop sharply with eager freeing");
}
