//! The parallel-executor bench pipeline (`BENCH_parallel.json`).
//!
//! Measures the two claims the [`com_vm::ParallelExecutor`] makes:
//!
//! 1. **Fidelity** — draining N mixed tenants across a worker pool must
//!    leave every tenant's result *and* [`CycleStats`] bit-identical to
//!    solo execution, at every worker count. Isolation is architectural,
//!    so this is asserted exactly, not approximately — and it is what
//!    makes the throughput comparison meaningful: every configuration
//!    retires the *same* total instruction stream.
//! 2. **Scaling** — aggregate throughput (retired instructions per
//!    wall-second over the whole drain) at 4 workers must be ≥ 2× the
//!    1-worker figure. Wall-clock scaling needs real cores: the JSON
//!    records `host_cores` and flags `host_limited` when the host has
//!    fewer cores than the headline worker count (a 1-core container
//!    caps the honest speedup at ~1×; 2 cores cap 4 workers at 2×), so
//!    a hardware cap is distinguishable from a missed target on capable
//!    hardware.
//!
//! Protocol: paired rounds, like the other three pipelines. Each round
//! boots and starts the full tenant set per worker count and times only
//! the drain, all worker counts back to back; the reported round is the
//! one with the median 4-vs-1 speedup.

use std::time::Instant;

use com_core::{CycleStats, MachineConfig, RunResult};
use com_mem::Word;
use com_stc::CompileOptions;
use com_vm::{ParallelExecutor, Session, Vm, VmError};
use com_workloads::{self as workloads, Workload};

/// Instruction slice per resume (same cadence as the sessions bench).
pub const SLICE_STEPS: u64 = 5_000;

/// Default tenants per drain.
pub const TENANTS: usize = 32;

/// Default worker counts measured, in order (1 must come first: it is
/// the denominator of every speedup).
pub const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The workload set tenants cycle through — varied instruction mixes:
/// call-heavy, pure arithmetic, megamorphic dispatch, allocation +
/// pointer chasing, polymorphic compare-and-swap sorting.
pub fn tenant_workloads() -> Vec<Workload> {
    vec![
        workloads::CALLS,
        workloads::ARITH,
        workloads::DISPATCH,
        workloads::TREES,
        workloads::SORT,
    ]
}

/// One worker-count configuration of the median round.
#[derive(Debug, Clone, Copy)]
pub struct ScalingRow {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Wall nanoseconds to drain the whole tenant set.
    pub wall_ns: u64,
    /// Total instructions retired across tenants (identical at every
    /// worker count — asserted).
    pub instructions: u64,
    /// Aggregate throughput in retired instructions per microsecond.
    pub throughput: f64,
    /// Speedup over the same round's 1-worker drain.
    pub speedup_vs_1: f64,
    /// Successful work steals during the drain.
    pub steals: u64,
    /// Tenant slices that resumed on a different worker than the
    /// previous slice (cross-thread session movement, in production).
    pub migrations: u64,
}

/// The row the acceptance bar reads: 4 workers when measured, else the
/// highest worker count. Every consumer of "the headline number" (the
/// report summary, the round-median selection, the binary's printout)
/// goes through here.
pub fn headline_row(rows: &[ScalingRow]) -> Option<&ScalingRow> {
    rows.iter().find(|r| r.workers == 4).or(rows.last())
}

/// The whole pipeline's output.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Median round, one row per worker count.
    pub rows: Vec<ScalingRow>,
    /// Tenants per drain.
    pub tenants: usize,
    /// Paired rounds timed.
    pub rounds: u32,
    /// Cores the host exposes (`std::thread::available_parallelism`).
    pub host_cores: usize,
    /// Whether every tenant, at every worker count, matched its solo
    /// baseline bit-for-bit (result and `CycleStats`).
    pub all_match: bool,
}

impl ParallelReport {
    /// The 4-worker (or highest-measured) speedup over 1 worker.
    pub fn headline_speedup(&self) -> f64 {
        headline_row(&self.rows).map_or(0.0, |r| r.speedup_vs_1)
    }

    /// The worker count the headline speedup was measured at.
    pub fn headline_workers(&self) -> usize {
        headline_row(&self.rows).map_or(4, |r| r.workers)
    }

    /// Whether the ≥2× bar at 4 workers is met.
    pub fn target_met(&self) -> bool {
        self.headline_speedup() >= 2.0
    }

    /// Whether the host cannot express the headline configuration's
    /// parallelism: fewer cores than headline workers caps the ideal
    /// speedup at `host_cores`× (1 core → ~1×; 2 cores → exactly 2× with
    /// zero overhead, so the ≥2× bar is unreachable in practice). On
    /// such hosts an unmet target is a hardware cap, not a regression.
    pub fn host_limited(&self) -> bool {
        self.host_cores < self.headline_workers()
    }
}

/// Per-tenant workload pick: tenants cycle through the mixed set.
fn pick(i: usize, set: &[Workload]) -> &Workload {
    &set[i % set.len()]
}

/// Boots one Vm per workload (separate images — tenants share an image
/// with the other tenants of the same workload, as a server would).
fn build_vms(set: &[Workload]) -> Vec<Vm> {
    set.iter()
        .map(|w| workloads::vm_for(w, MachineConfig::default(), CompileOptions::default()))
        .collect()
}

/// Solo reference outcomes, one per workload in the set.
fn solo_baselines(set: &[Workload], vms: &[Vm]) -> Result<Vec<(Word, CycleStats)>, VmError> {
    set.iter()
        .zip(vms)
        .map(|(w, vm)| {
            let mut s: Session = vm.session()?;
            let out: RunResult = workloads::run_on(w, &mut s, workloads::MAX_STEPS)?;
            assert_eq!(
                out.result,
                Word::Int(w.expected),
                "{} failed its self-check solo",
                w.name
            );
            Ok((out.result, out.stats))
        })
        .collect()
}

/// Boots and starts the full tenant set (outside the timed region: boot
/// cost is the sessions bench's subject, not this one's).
fn started_tenants(tenants: usize, set: &[Workload], vms: &[Vm]) -> Result<Vec<Session>, VmError> {
    (0..tenants)
        .map(|i| {
            let mut s = vms[i % set.len()].session()?;
            workloads::start_on(pick(i, set), &mut s)?;
            Ok(s)
        })
        .collect()
}

/// One timed drain at one worker count; returns the row (speedup filled
/// in by the caller) after asserting every tenant against its baseline.
fn drain(
    workers: usize,
    tenants: usize,
    set: &[Workload],
    vms: &[Vm],
    baselines: &[(Word, CycleStats)],
) -> Result<ScalingRow, VmError> {
    let sessions = started_tenants(tenants, set, vms)?;
    let pool = ParallelExecutor::new(workers, SLICE_STEPS);
    let t0 = Instant::now();
    let (runs, steals) = pool.run_counting_steals(sessions);
    let wall_ns = t0.elapsed().as_nanos() as u64;
    let mut instructions = 0u64;
    let mut migrations = 0u64;
    for (i, run) in runs.iter().enumerate() {
        let (expected_result, expected_stats) = &baselines[i % set.len()];
        let w = pick(i, set);
        assert!(
            run.error.is_none(),
            "{} (tenant {i}) trapped at {workers} workers: {:?}",
            w.name,
            run.error
        );
        assert_eq!(
            run.result,
            Some(*expected_result),
            "{} (tenant {i}) result diverged at {workers} workers",
            w.name
        );
        let stats = run
            .session
            .last_run()
            .unwrap_or_else(|| panic!("tenant {i} has no run"))
            .stats;
        assert_eq!(
            &stats, expected_stats,
            "{} (tenant {i}) CycleStats diverged at {workers} workers",
            w.name
        );
        instructions += stats.instructions;
        migrations += run.migrations;
    }
    Ok(ScalingRow {
        workers,
        wall_ns,
        instructions,
        throughput: instructions as f64 / (wall_ns.max(1) as f64 / 1_000.0),
        speedup_vs_1: 0.0,
        steals,
        migrations,
    })
}

/// Runs the whole pipeline: `repeats` paired rounds over the given
/// worker counts, keeping the round with the median headline speedup.
///
/// # Errors
///
/// Propagates compile, boot, and machine errors.
///
/// # Panics
///
/// Panics if any tenant's result or `CycleStats` diverges from its solo
/// baseline — fidelity is the precondition of the throughput numbers.
pub fn report(
    tenants: usize,
    worker_counts: &[usize],
    repeats: u32,
) -> Result<ParallelReport, VmError> {
    assert_eq!(
        worker_counts.first(),
        Some(&1),
        "worker counts must start at 1 (the speedup denominator)"
    );
    let set = tenant_workloads();
    let vms = build_vms(&set);
    let baselines = solo_baselines(&set, &vms)?;

    // Warm up: one small drain per worker count (thread spawn paths,
    // allocator, lazy statics).
    for &w in worker_counts {
        drain(w, set.len().min(tenants), &set, &vms, &baselines)?;
    }

    let mut rounds: Vec<Vec<ScalingRow>> = Vec::new();
    for _ in 0..repeats.max(1) {
        let mut round = Vec::new();
        for &w in worker_counts {
            round.push(drain(w, tenants, &set, &vms, &baselines)?);
        }
        let base_ns = round[0].wall_ns.max(1) as f64;
        for row in &mut round {
            row.speedup_vs_1 = base_ns / row.wall_ns.max(1) as f64;
        }
        // The instruction totals are the same work at every worker count
        // — the equivalence assertions above guarantee it; double-check.
        for row in &round[1..] {
            assert_eq!(
                row.instructions, round[0].instructions,
                "worker counts retired different instruction totals"
            );
        }
        rounds.push(round);
    }
    let headline = |round: &[ScalingRow]| headline_row(round).map_or(0.0, |r| r.speedup_vs_1);
    rounds.sort_by(|a, b| {
        headline(a)
            .partial_cmp(&headline(b))
            .expect("finite speedups")
    });
    let median = rounds[rounds.len() / 2].clone();
    Ok(ParallelReport {
        rows: median,
        tenants,
        rounds: repeats.max(1),
        host_cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        all_match: true, // divergence panics inside drain
    })
}

/// Renders the report as the machine-readable `BENCH_parallel.json`.
pub fn report_to_json(r: &ParallelReport) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "null".to_string()
        }
    }
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"parallel\",\n  \"schema\": 1,\n");
    s.push_str(&format!(
        "  \"protocol\": {{\"tenants\": {}, \"slice_steps\": {}, \"workloads\": [{}], \"worker_counts\": [{}], \"paired_rounds\": {}, \"host_cores\": {}}},\n",
        r.tenants,
        SLICE_STEPS,
        tenant_workloads()
            .iter()
            .map(|w| format!("\"{}\"", w.name))
            .collect::<Vec<_>>()
            .join(", "),
        r.rows
            .iter()
            .map(|row| row.workers.to_string())
            .collect::<Vec<_>>()
            .join(", "),
        r.rounds,
        r.host_cores,
    ));
    s.push_str("  \"unit\": {\"throughput\": \"retired instructions per wall-microsecond, aggregate over the whole drain; speedups are within-round ratios, median round kept\"},\n");
    s.push_str("  \"rows\": [\n");
    for (i, row) in r.rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ns\": {}, \"instructions\": {}, \"throughput\": {}, \"speedup_vs_1\": {}, \"steals\": {}, \"migrations\": {}}}{}",
            row.workers,
            row.wall_ns,
            row.instructions,
            num(row.throughput),
            num(row.speedup_vs_1),
            row.steals,
            row.migrations,
            if i + 1 < r.rows.len() { ",\n" } else { "\n" },
        ));
    }
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"equivalence\": {{\"tenants\": {}, \"worker_counts_checked\": {}, \"all_match\": {}}},\n",
        r.tenants,
        r.rows.len(),
        r.all_match,
    ));
    s.push_str(&format!(
        "  \"summary\": {{\"speedup_4w\": {}, \"target_2x_met\": {}, \"host_cores\": {}, \"host_limited\": {}}}\n}}\n",
        num(r.headline_speedup()),
        r.target_met(),
        r.host_cores,
        r.host_limited(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_drain_matches_baselines_at_every_worker_count() {
        // `drain` panics on any divergence, so running it IS the check.
        let set = tenant_workloads();
        let vms = build_vms(&set);
        let baselines = solo_baselines(&set, &vms).unwrap();
        for workers in [1, 3] {
            let row = drain(workers, 7, &set, &vms, &baselines).unwrap();
            assert_eq!(row.workers, workers);
            assert!(row.instructions > 0);
            assert!(row.wall_ns > 0);
        }
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let rows = vec![
            ScalingRow {
                workers: 1,
                wall_ns: 8_000_000,
                instructions: 4_000_000,
                throughput: 500.0,
                speedup_vs_1: 1.0,
                steals: 0,
                migrations: 0,
            },
            ScalingRow {
                workers: 4,
                wall_ns: 2_000_000,
                instructions: 4_000_000,
                throughput: 2000.0,
                speedup_vs_1: 4.0,
                steals: 9,
                migrations: 30,
            },
        ];
        let r = ParallelReport {
            rows,
            tenants: 32,
            rounds: 5,
            host_cores: 8,
            all_match: true,
        };
        assert!(r.target_met());
        assert!(!r.host_limited());
        let j = report_to_json(&r);
        assert!(j.contains("\"speedup_4w\": 4.000"));
        assert!(j.contains("\"target_2x_met\": true"));
        assert!(j.contains("\"all_match\": true"));
        assert!(j.contains("\"host_cores\": 8"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
