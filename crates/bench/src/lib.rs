//! Experiment harness support: shared trace construction and report
//! formatting for the figure/table binaries (see `src/bin/`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod gc;
pub mod interp;
pub mod parallel;
pub mod server;
pub mod sessions;

use com_trace::Trace;
use com_workloads as workloads;

/// Builds the merged Fith trace of all portable workloads — the
/// reproduction's counterpart of the paper's "several traces … the longest
/// of which was about 20,000 instructions" (§5).
///
/// # Panics
///
/// Panics if any workload fails (they are self-checking).
pub fn merged_fith_trace() -> Trace {
    let mut merged = Trace::new();
    for w in workloads::portable() {
        let (t, out) = workloads::trace_fith(&w, workloads::MAX_STEPS)
            .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
        assert_eq!(
            out.result,
            com_mem::Word::Int(w.expected),
            "{} self-check failed",
            w.name
        );
        merged.extend(&t);
    }
    merged
}

/// Per-workload Fith traces with names.
///
/// # Panics
///
/// Panics if any workload fails.
pub fn per_workload_traces() -> Vec<(&'static str, Trace)> {
    workloads::portable()
        .iter()
        .map(|w| {
            let (t, _) = workloads::trace_fith(w, workloads::MAX_STEPS)
                .unwrap_or_else(|e| panic!("{} failed: {e}", w.name));
            (w.name, t)
        })
        .collect()
}

/// Prints a markdown-style table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(" {:w$} |", c, w = widths[i]));
        }
        s
    };
    println!(
        "{}",
        line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("{}", line(&sep));
    for row in rows {
        println!("{}", line(row));
    }
}

/// Formats an optional ratio as a percentage.
pub fn pct(x: Option<f64>) -> String {
    match x {
        Some(v) => format!("{:.2}%", v * 100.0),
        None => "—".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merged_trace_is_large() {
        let t = merged_fith_trace();
        assert!(t.len() > 100_000, "merged trace only {}", t.len());
    }
}
