//! The wall-clock interpreter bench pipeline (`BENCH_interp.json`).
//!
//! Every perf PR from this one onward is judged against the trajectory
//! this harness records: nanoseconds per simulated instruction and
//! simulated instructions per second, per workload, for both interpreter
//! loops:
//!
//! * **baseline** — the pre-overhaul interpreter: the single-step
//!   reference loop ([`com_core::Machine::run_stepwise`]) dispatching
//!   through the legacy map-backed ITLB storage.
//! * **threaded** — the overhauled hot loop ([`com_core::Machine::run`])
//!   dispatching through the direct-mapped ITLB probe array.
//!
//! Architectural results are asserted equal between the two on every
//! workload; the *simulated* cycle counts are semantics and do not change
//! with interpreter speed (see `com_core::machine` module docs).

use std::time::Instant;

use com_core::{Machine, MachineConfig, MachineError, RunResult};
use com_mem::Word;
use com_stc::{compile_com, CompileOptions};
use com_workloads::{self as workloads, Workload};

/// Which interpreter loop a measurement exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loop {
    /// Pre-overhaul: stepwise reference loop + map-backed ITLB storage.
    Baseline,
    /// Overhauled: threaded loop + direct-mapped ITLB probe array.
    Threaded,
}

/// One timed run.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Wall-clock nanoseconds for the run (best of the measured repeats).
    pub wall_ns: u64,
    /// Simulated instructions executed.
    pub instructions: u64,
}

impl Sample {
    /// Wall nanoseconds per simulated instruction.
    pub fn ns_per_instr(&self) -> f64 {
        self.wall_ns as f64 / self.instructions.max(1) as f64
    }

    /// Simulated instructions per wall second.
    pub fn instr_per_sec(&self) -> f64 {
        self.instructions as f64 / (self.wall_ns.max(1) as f64 / 1e9)
    }
}

/// Measurement of one workload under both loops.
#[derive(Debug, Clone)]
pub struct Row {
    /// Bench row name (the experiment the workload stands in for).
    pub name: &'static str,
    /// Pre-overhaul loop.
    pub baseline: Sample,
    /// Overhauled loop.
    pub threaded: Sample,
    /// Simulated CPI (identical across loops by construction).
    pub cpi: f64,
}

impl Row {
    /// Wall-clock speedup of the threaded loop over the baseline.
    pub fn speedup(&self) -> f64 {
        self.baseline.wall_ns as f64 / self.threaded.wall_ns.max(1) as f64
    }
}

fn config_for(l: Loop) -> MachineConfig {
    match l {
        Loop::Baseline => MachineConfig::default().reference_interpreter(),
        Loop::Threaded => MachineConfig::default(),
    }
}

fn run_send(
    m: &mut Machine,
    w: &Workload,
    l: Loop,
    max_steps: u64,
) -> Result<RunResult, MachineError> {
    let sel = m
        .opcodes()
        .get(w.entry)
        .unwrap_or_else(|| panic!("entry {} not interned", w.entry));
    m.start_send(sel, Word::Int(w.size), &[])?;
    let out = match l {
        Loop::Baseline => m.run_stepwise(max_steps)?,
        Loop::Threaded => m.run(max_steps)?,
    };
    assert_eq!(
        out.result,
        Word::Int(w.expected),
        "{} self-check failed under {l:?}",
        w.name
    );
    Ok(out)
}

/// Steady-state paired measurement of `w` under both loops.
///
/// One warm machine per loop; then `repeats` rounds, each timing one
/// window of sends on the baseline machine immediately followed by one on
/// the threaded machine. Pairing the windows cancels machine-wide noise
/// (frequency scaling, neighbours): each round yields a speedup under the
/// same conditions, and the reported row is the round with the median
/// speedup. Steady state is the honest regime for a hot-loop bench —
/// translation caches resident, the decoded slab warm.
///
/// # Errors
///
/// Propagates machine errors.
///
/// # Panics
///
/// Panics if the workload miscompiles, fails its self-check, or executes
/// different instruction counts under the two loops.
pub fn measure_paired(
    w: &Workload,
    repeats: u32,
    max_steps: u64,
) -> Result<(Sample, Sample, RunResult), MachineError> {
    let image = compile_com(w.source, CompileOptions::default())
        .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", w.name));
    let mut machines = Vec::new();
    let mut per_send = 0;
    let mut warm_stats = None;
    for l in [Loop::Baseline, Loop::Threaded] {
        let mut m = Machine::new(config_for(l));
        m.load(&image)?;
        // Warmup: residency established, first-touch page faults taken.
        let warm = run_send(&mut m, w, l, max_steps)?;
        // The two configs must simulate the *same* architectural work —
        // full CycleStats, not just instruction counts. (The reference
        // ITLB storage maps keys to sets differently; a conflicting
        // working set would make the comparison apples-to-oranges, so it
        // is rejected here rather than reported.)
        if let Some(prev) = warm_stats {
            assert_eq!(
                prev, warm.stats,
                "{}: simulated CycleStats diverged between loop configs",
                w.name
            );
        }
        warm_stats = Some(warm.stats);
        per_send = warm.stats.instructions.max(1);
        machines.push(m);
    }
    // Windows of at least ~100k simulated instructions, so a timed region
    // is well past timer jitter.
    let inner = (100_000 / per_send).clamp(2, 64) as u32;
    let window = |m: &mut Machine, l: Loop| -> Result<(u64, RunResult), MachineError> {
        let t0 = Instant::now();
        let mut last = None;
        for _ in 0..inner {
            last = Some(run_send(m, w, l, max_steps)?);
        }
        Ok((
            t0.elapsed().as_nanos() as u64 / u64::from(inner),
            last.expect("inner >= 1"),
        ))
    };
    let mut rounds = Vec::new();
    let mut out = None;
    for _ in 0..repeats.max(1) {
        let (base_ns, _) = window(&mut machines[0], Loop::Baseline)?;
        let (fast_ns, o) = window(&mut machines[1], Loop::Threaded)?;
        rounds.push((base_ns, fast_ns));
        out = Some(o);
    }
    rounds.sort_by(|a, b| {
        let ra = a.0 as f64 / a.1 as f64;
        let rb = b.0 as f64 / b.1 as f64;
        ra.partial_cmp(&rb).expect("finite ratios")
    });
    let (base_ns, fast_ns) = rounds[rounds.len() / 2];
    Ok((
        Sample {
            wall_ns: base_ns,
            instructions: per_send,
        },
        Sample {
            wall_ns: fast_ns,
            instructions: per_send,
        },
        out.expect("at least one round"),
    ))
}

/// The bench rows: experiment-named workloads. `tab_call_cost` is the
/// call-linkage-dominated workload behind the T1 table; `tab_pipeline`
/// the mixed send/arith/branch pipeline workload behind T6; the rest
/// track the remaining hot paths.
pub fn bench_workloads() -> Vec<(&'static str, Workload)> {
    vec![
        ("tab_call_cost", workloads::CALLS),
        ("tab_pipeline", workloads::DISPATCH),
        ("arith", workloads::ARITH),
        ("sort", workloads::SORT),
        ("trees", workloads::TREES),
    ]
}

/// Runs the full pipeline: every bench workload under both loops.
///
/// # Errors
///
/// Propagates machine errors.
///
/// # Panics
///
/// Panics if a workload's architectural result diverges between loops.
pub fn interp_rows(repeats: u32, max_steps: u64) -> Result<Vec<Row>, MachineError> {
    let mut rows = Vec::new();
    for (name, w) in bench_workloads() {
        let (base, fast, fast_out) = measure_paired(&w, repeats, max_steps)?;
        rows.push(Row {
            name,
            baseline: base,
            threaded: fast,
            cpi: fast_out.stats.cpi().unwrap_or(f64::NAN),
        });
    }
    Ok(rows)
}

/// Renders the rows as the machine-readable `BENCH_interp.json` document.
pub fn rows_to_json(rows: &[Row]) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "null".to_string()
        }
    }
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"interp\",\n  \"schema\": 1,\n");
    s.push_str("  \"unit\": {\"ns_per_instr\": \"wall nanoseconds per simulated instruction\", \"instr_per_sec\": \"simulated instructions per wall second\"},\n");
    s.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"instructions\": {}, \"cpi_simulated\": {},\n",
            r.name,
            r.baseline.instructions,
            num(r.cpi)
        ));
        for (label, smp) in [("baseline", r.baseline), ("threaded", r.threaded)] {
            s.push_str(&format!(
                "     \"{}\": {{\"wall_ns\": {}, \"ns_per_instr\": {}, \"instr_per_sec\": {}}},\n",
                label,
                smp.wall_ns,
                num(smp.ns_per_instr()),
                num(smp.instr_per_sec())
            ));
        }
        s.push_str(&format!("     \"speedup\": {}}}", num(r.speedup())));
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let geomean = if rows.is_empty() {
        f64::NAN
    } else {
        (rows.iter().map(|r| r.speedup().ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    s.push_str(&format!(
        "  \"summary\": {{\"geomean_speedup\": {}}}\n}}\n",
        num(geomean)
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid_enough() {
        let rows = vec![Row {
            name: "tab_call_cost",
            baseline: Sample {
                wall_ns: 2_000,
                instructions: 100,
            },
            threaded: Sample {
                wall_ns: 1_000,
                instructions: 100,
            },
            cpi: 2.5,
        }];
        let j = rows_to_json(&rows);
        assert!(j.contains("\"speedup\": 2.000"));
        assert!(j.contains("\"geomean_speedup\": 2.000"));
        assert!(j.contains("\"tab_call_cost\""));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn sample_rates() {
        let s = Sample {
            wall_ns: 2_000_000_000,
            instructions: 1_000_000,
        };
        assert!((s.ns_per_instr() - 2000.0).abs() < 1e-9);
        assert!((s.instr_per_sec() - 500_000.0).abs() < 1e-6);
    }
}
