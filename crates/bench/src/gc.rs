//! The garbage-collection bench pipeline (`BENCH_gc.json`).
//!
//! Measures the §2.3 claim this repo's generational collector targets:
//! reclamation cost should be proportional to *garbage*, not to live-heap
//! size. The `churn` workload allocates a stream of short-lived scratch
//! arrays against a long-lived ballast whose size scales with the problem
//! size. Two machines run it at the same collection cadence:
//!
//! * **full** — every periodic collection is a full mark-sweep
//!   (`gc_interval = P`): each collection re-scans the whole live heap.
//! * **generational** — minor collections at the same cadence with an
//!   occasional full (`gc_minor_interval = P`, `gc_full_interval = 8P`):
//!   minor marks traverse only roots + pinned residents + remembered set
//!   + nursery.
//!
//! The headline metric is **words scanned per word reclaimed** — the
//! architectural cost of the collector per unit of useful work. The
//! acceptance bar: the generational configuration spends ≥2× fewer scanned
//! words per freed word, and its per-collection scan stays flat as the
//! live heap grows (sublinearity). Wall clock is reported with the same
//! paired-median protocol as `BENCH_interp.json`: each round times both
//! configurations back to back, and the round with the median ratio is
//! reported.
//!
//! Architectural integrity is asserted, not assumed: for every size the
//! generational configuration is run through both interpreter loops and
//! the full `CycleStats` must be bit-identical.

use std::time::Instant;

use com_core::{GcTotals, Machine, MachineConfig, MachineError, RunResult};
use com_mem::Word;
use com_stc::{compile_com, CompileOptions};
use com_workloads::{Workload, CHURN};

/// The shared collection cadence (prime, so collections land mid-burst).
pub const MINOR_INTERVAL: u64 = 1009;
/// Generational full collections every `MINOR_INTERVAL * FULL_FACTOR`.
pub const FULL_FACTOR: u64 = 8;

/// One configuration's collector work plus its wall time.
#[derive(Debug, Clone, Copy)]
pub struct GcMeasure {
    /// Collections run (minor + full).
    pub collections: u64,
    /// Minor collections among them.
    pub minor_collections: u64,
    /// Words traversed by marking, both generations.
    pub words_scanned: u64,
    /// Words of storage reclaimed.
    pub words_freed: u64,
    /// Wall nanoseconds for the send (median paired round).
    pub wall_ns: u64,
}

impl GcMeasure {
    /// Words scanned per word reclaimed — the collector's unit cost.
    pub fn scanned_per_freed(&self) -> f64 {
        self.words_scanned as f64 / self.words_freed.max(1) as f64
    }

    /// Words scanned per collection (the sublinearity probe).
    pub fn scanned_per_collection(&self) -> f64 {
        self.words_scanned as f64 / self.collections.max(1) as f64
    }
}

/// Measurements for one churn problem size.
#[derive(Debug, Clone, Copy)]
pub struct GcRow {
    /// Problem size (iterations; ballast is `4 × size` words).
    pub size: i64,
    /// Live heap words at the end of the generational run.
    pub live_words: u64,
    /// Simulated instructions per send.
    pub instructions: u64,
    /// The full-collection-only configuration.
    pub full: GcMeasure,
    /// The generational configuration.
    pub generational: GcMeasure,
}

impl GcRow {
    /// How many times cheaper the generational collector's scanning is per
    /// reclaimed word (the ≥2× acceptance metric).
    pub fn scan_efficiency(&self) -> f64 {
        self.full.scanned_per_freed() / self.generational.scanned_per_freed().max(f64::MIN_POSITIVE)
    }
}

/// Closed-form expected answer of the churn workload for `n` iterations
/// (see the workload's doc comment).
pub fn churn_expected(n: i64) -> i64 {
    let acc_linear = n * (n + 1) / 2;
    let acc_cycle: i64 = (1..=n).map(|i| (i % 8) + 1).sum();
    let m = n / 10;
    let keep = 10 * m * (m + 1) / 2;
    acc_linear + acc_cycle + keep + n
}

/// The churn workload scaled to `size` iterations.
pub fn churn_at(size: i64) -> Workload {
    Workload {
        size,
        expected: churn_expected(size),
        ..CHURN
    }
}

fn full_config() -> MachineConfig {
    MachineConfig {
        gc_interval: Some(MINOR_INTERVAL),
        ..MachineConfig::default()
    }
}

fn generational_config() -> MachineConfig {
    MachineConfig::default().with_generational_gc(MINOR_INTERVAL, MINOR_INTERVAL * FULL_FACTOR)
}

/// Runs `w` once on a fresh machine, returning the result, the GC totals,
/// the final live-heap words and the wall time of the send.
fn run_once(
    w: &Workload,
    cfg: MachineConfig,
    stepwise: bool,
) -> Result<(RunResult, GcTotals, u64, u64), MachineError> {
    let image = compile_com(w.source, CompileOptions::default())
        .unwrap_or_else(|e| panic!("workload {} failed to compile: {e}", w.name));
    let mut m = Machine::new(cfg);
    m.load(&image)?;
    let sel = m
        .opcodes()
        .get(w.entry)
        .unwrap_or_else(|| panic!("entry {} not interned", w.entry));
    m.start_send(sel, Word::Int(w.size), &[])?;
    let t0 = Instant::now();
    let out = if stepwise {
        m.run_stepwise(com_workloads::MAX_STEPS)?
    } else {
        m.run(com_workloads::MAX_STEPS)?
    };
    let wall_ns = t0.elapsed().as_nanos() as u64;
    assert_eq!(
        out.result,
        Word::Int(w.expected),
        "{} self-check failed at size {}",
        w.name,
        w.size
    );
    let live = m.space().memory().buddy().allocated_words();
    Ok((out, m.gc_totals(), live, wall_ns))
}

/// Measures one churn size under both configurations with the
/// paired-median wall protocol, asserting the threaded and stepwise loops
/// stay bit-identical under the generational cadence.
///
/// # Errors
///
/// Propagates machine errors.
///
/// # Panics
///
/// Panics if the workload miscompiles, fails its self-check, never
/// collects, or diverges between interpreter loops.
pub fn measure_size(size: i64, repeats: u32) -> Result<GcRow, MachineError> {
    let w = churn_at(size);

    // Architectural integrity: both loops, bit-identical CycleStats.
    let (fast, gen_totals, live_words, _) = run_once(&w, generational_config(), false)?;
    let (slow, slow_totals, _, _) = run_once(&w, generational_config(), true)?;
    assert_eq!(
        fast.stats, slow.stats,
        "CycleStats diverged between run and run_stepwise under gc_minor_interval (size {size})"
    );
    assert_eq!(gen_totals, slow_totals, "GC totals diverged between loops");
    let (full_out, full_totals, _, _) = run_once(&w, full_config(), false)?;
    assert!(
        full_totals.full_collections > 0 && gen_totals.minor_collections > 0,
        "collections must actually run at size {size}"
    );

    // Paired wall rounds: time full then generational under the same
    // conditions; keep the round with the median ratio.
    let mut rounds: Vec<(u64, u64)> = Vec::new();
    for _ in 0..repeats.max(1) {
        let (_, _, _, full_ns) = run_once(&w, full_config(), false)?;
        let (_, _, _, gen_ns) = run_once(&w, generational_config(), false)?;
        rounds.push((full_ns, gen_ns));
    }
    rounds.sort_by(|a, b| {
        let ra = a.0 as f64 / a.1.max(1) as f64;
        let rb = b.0 as f64 / b.1.max(1) as f64;
        ra.partial_cmp(&rb).expect("finite ratios")
    });
    let (full_ns, gen_ns) = rounds[rounds.len() / 2];

    Ok(GcRow {
        size,
        live_words,
        instructions: full_out.stats.instructions,
        full: GcMeasure {
            collections: full_totals.full_collections + full_totals.minor_collections,
            minor_collections: full_totals.minor_collections,
            words_scanned: full_totals.words_scanned(),
            words_freed: full_totals.words_freed(),
            wall_ns: full_ns,
        },
        generational: GcMeasure {
            collections: gen_totals.full_collections + gen_totals.minor_collections,
            minor_collections: gen_totals.minor_collections,
            words_scanned: gen_totals.words_scanned(),
            words_freed: gen_totals.words_freed(),
            wall_ns: gen_ns,
        },
    })
}

/// Runs the full pipeline across `sizes`.
///
/// # Errors
///
/// Propagates machine errors.
pub fn gc_rows(sizes: &[i64], repeats: u32) -> Result<Vec<GcRow>, MachineError> {
    sizes.iter().map(|s| measure_size(*s, repeats)).collect()
}

/// Renders the rows as the machine-readable `BENCH_gc.json` document.
pub fn rows_to_json(rows: &[GcRow]) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "null".to_string()
        }
    }
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"gc\",\n  \"schema\": 1,\n");
    s.push_str(&format!(
        "  \"protocol\": {{\"workload\": \"churn\", \"minor_interval\": {MINOR_INTERVAL}, \"full_factor\": {FULL_FACTOR}}},\n"
    ));
    s.push_str("  \"unit\": {\"scanned_per_freed\": \"mark-phase words scanned per word of storage reclaimed\", \"scan_efficiency\": \"full scanned_per_freed over generational scanned_per_freed\"},\n");
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"size\": {}, \"live_words\": {}, \"instructions\": {},\n",
            r.size, r.live_words, r.instructions
        ));
        for (label, m) in [("full", r.full), ("generational", r.generational)] {
            s.push_str(&format!(
                "     \"{}\": {{\"collections\": {}, \"minor_collections\": {}, \"words_scanned\": {}, \"words_freed\": {}, \"scanned_per_freed\": {}, \"scanned_per_collection\": {}, \"wall_ns\": {}}},\n",
                label,
                m.collections,
                m.minor_collections,
                m.words_scanned,
                m.words_freed,
                num(m.scanned_per_freed()),
                num(m.scanned_per_collection()),
                m.wall_ns,
            ));
        }
        s.push_str(&format!(
            "     \"scan_efficiency\": {}}}",
            num(r.scan_efficiency())
        ));
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    let geomean = if rows.is_empty() {
        f64::NAN
    } else {
        (rows.iter().map(|r| r.scan_efficiency().ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    s.push_str(&format!(
        "  \"summary\": {{\"geomean_scan_efficiency\": {}, \"target_2x_met\": {}}}\n}}\n",
        num(geomean),
        rows.iter().all(|r| r.scan_efficiency() >= 2.0),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_expected_matches_the_shipped_workload() {
        assert_eq!(churn_expected(CHURN.size), CHURN.expected);
        // Spot checks of the closed form.
        assert_eq!(churn_expected(10), 55 + 41 + 10 + 10);
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let m = GcMeasure {
            collections: 4,
            minor_collections: 0,
            words_scanned: 4000,
            words_freed: 400,
            wall_ns: 1000,
        };
        let g = GcMeasure {
            collections: 4,
            minor_collections: 4,
            words_scanned: 800,
            words_freed: 400,
            wall_ns: 900,
        };
        let rows = vec![GcRow {
            size: 40,
            live_words: 1234,
            instructions: 5678,
            full: m,
            generational: g,
        }];
        let j = rows_to_json(&rows);
        assert!(j.contains("\"scan_efficiency\": 5.000"));
        assert!(j.contains("\"target_2x_met\": true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn smoke_measure_tiny_size() {
        // End-to-end: collections run, loops agree, metrics are sane.
        let row = measure_size(60, 1).unwrap();
        assert!(row.generational.minor_collections > 0);
        assert!(row.full.words_freed > 0);
        assert!(row.generational.words_freed > 0);
    }
}
