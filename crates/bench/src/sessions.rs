//! The multi-tenant session bench pipeline (`BENCH_sessions.json`).
//!
//! Measures the two claims the `com-vm` facade makes:
//!
//! 1. **Spin-up** — spawning a tenant [`Session`] over a shared, immutable
//!    [`com_vm::LoadedImage`] must be ≥ 10× cheaper (wall clock) than the
//!    old one-tenant path, a fresh compile + load of the same program.
//!    Measured with the same paired-median protocol as the other bench
//!    pipelines: each round times both paths back to back, and the round
//!    with the median ratio is reported.
//! 2. **Round-robin fidelity** — a 16-session cooperative round-robin run
//!    (the [`com_vm::Scheduler`] interleaving tenants in fixed instruction
//!    slices) must complete every workload with results *and*
//!    [`CycleStats`] bit-identical to sequential execution. Isolation is
//!    architectural, so this is asserted exactly, not approximately.

use std::time::Instant;

use com_core::{CycleStats, MachineConfig, RunResult};
use com_mem::Word;
use com_stc::CompileOptions;
use com_vm::{Scheduler, Session, Vm, VmError};
use com_workloads::{self as workloads, Workload};

/// Instruction slice each tenant receives per scheduler round.
pub const SLICE_STEPS: u64 = 5_000;

/// The workload set tenants cycle through (fast, varied instruction mixes).
pub fn tenant_workloads() -> Vec<Workload> {
    vec![
        workloads::CALLS,
        workloads::ARITH,
        workloads::DISPATCH,
        workloads::SORT,
    ]
}

/// Sessions spawned (and timed together) per paired round: per-session
/// spin-up is what a multi-tenant server pays at the margin, so each round
/// spawns a batch and reports the mean — single spawns are dominated by
/// the cache pollution of whatever ran before them.
pub const SPAWNS_PER_ROUND: u32 = 16;

/// Wall-clock numbers for the spin-up comparison (median paired round).
#[derive(Debug, Clone, Copy)]
pub struct SpinupMeasure {
    /// Nanoseconds for a fresh compile + load + ready-to-call machine.
    pub fresh_ns: u64,
    /// Nanoseconds per `vm.session()` on the shared image (mean of the
    /// round's batch of [`SPAWNS_PER_ROUND`]).
    pub session_ns: u64,
    /// Paired rounds timed.
    pub rounds: u32,
}

impl SpinupMeasure {
    /// How many times cheaper shared-image session spin-up is.
    pub fn speedup(&self) -> f64 {
        self.fresh_ns as f64 / self.session_ns.max(1) as f64
    }
}

/// Wall-clock and lookup numbers for the ITLB pre-seeding comparison
/// (median paired round): the same workload's first call on a cold
/// session versus a session whose ITLB was pre-seeded at boot from the
/// whole-image analysis's monomorphic send sites.
#[derive(Debug, Clone, Copy)]
pub struct PreseedMeasure {
    /// Pre-seed keys extracted from the analysis (monomorphic sites).
    pub keys: usize,
    /// Full-association lookups the cold session's first call paid.
    pub cold_full_lookups: u64,
    /// Full-association lookups the pre-seeded session's first call paid.
    pub preseeded_full_lookups: u64,
    /// Nanoseconds for the cold session's first call.
    pub cold_first_call_ns: u64,
    /// Nanoseconds for the pre-seeded session's first call.
    pub preseeded_first_call_ns: u64,
    /// Paired rounds timed.
    pub rounds: u32,
}

impl PreseedMeasure {
    /// First-touch lookups the pre-seeding eliminated — the
    /// deterministic signal (wall-clock deltas are host-limited).
    pub fn lookups_avoided(&self) -> u64 {
        self.cold_full_lookups
            .saturating_sub(self.preseeded_full_lookups)
    }
}

/// One tenant's outcome in the round-robin comparison.
#[derive(Debug, Clone)]
pub struct TenantRow {
    /// Tenant index (spawn order).
    pub tenant: usize,
    /// Workload name.
    pub workload: &'static str,
    /// Result word of the interleaved run.
    pub result: Word,
    /// Instructions the tenant executed.
    pub instructions: u64,
    /// Scheduler slices the tenant consumed.
    pub slices: u64,
    /// Whether result and `CycleStats` matched sequential execution
    /// bit-for-bit.
    pub matches_sequential: bool,
}

/// The whole pipeline's output.
#[derive(Debug, Clone)]
pub struct SessionsReport {
    /// The spin-up comparison.
    pub spinup: SpinupMeasure,
    /// The ITLB pre-seeding comparison.
    pub preseed: PreseedMeasure,
    /// Per-tenant round-robin rows.
    pub tenants: Vec<TenantRow>,
    /// Scheduler rounds the interleaved run took.
    pub rounds: u64,
    /// Tenants in the round-robin run.
    pub sessions: usize,
}

impl SessionsReport {
    /// Whether every tenant matched sequential execution.
    pub fn all_match(&self) -> bool {
        self.tenants.iter().all(|t| t.matches_sequential)
    }
}

/// Times one fresh compile + load + ready machine (the old embedding
/// path) for the joined tenant program.
fn time_fresh(source: &str, config: MachineConfig) -> Result<u64, VmError> {
    let t0 = Instant::now();
    // The pre-facade path: compile the program and boot a machine from the
    // raw image (per-machine lazy decode ahead of it).
    let image = com_stc::compile_com(source, CompileOptions::default())?;
    let mut m = com_core::Machine::new(config);
    m.load(&image)?;
    let ns = t0.elapsed().as_nanos() as u64;
    std::hint::black_box(&m);
    Ok(ns)
}

/// Times a batch of `vm.session()` spin-ups on the shared image,
/// returning the mean nanoseconds per session. The sessions stay alive
/// until after timing ends (their teardown is not spin-up).
fn time_session_batch(vm: &Vm, spawns: u32) -> Result<u64, VmError> {
    let mut live = Vec::with_capacity(spawns as usize);
    let t0 = Instant::now();
    for _ in 0..spawns.max(1) {
        live.push(vm.session()?);
    }
    let ns = t0.elapsed().as_nanos() as u64;
    std::hint::black_box(&live);
    Ok(ns / u64::from(spawns.max(1)))
}

/// The paired-median spin-up comparison over `repeats` rounds.
///
/// # Errors
///
/// Propagates compile and boot errors.
pub fn measure_spinup(repeats: u32) -> Result<SpinupMeasure, VmError> {
    let source: String = tenant_workloads()
        .iter()
        .map(|w| w.source)
        .collect::<Vec<_>>()
        .join("\n");
    let config = MachineConfig::default();
    let vm = Vm::builder().source(&source).config(config).build()?;
    // Warm both paths once (allocator, lazy statics).
    time_fresh(&source, config)?;
    time_session_batch(&vm, SPAWNS_PER_ROUND)?;
    let mut rounds: Vec<(u64, u64)> = Vec::new();
    for _ in 0..repeats.max(1) {
        let fresh = time_fresh(&source, config)?;
        let session = time_session_batch(&vm, SPAWNS_PER_ROUND)?;
        rounds.push((fresh, session));
    }
    rounds.sort_by(|a, b| {
        let ra = a.0 as f64 / a.1.max(1) as f64;
        let rb = b.0 as f64 / b.1.max(1) as f64;
        ra.partial_cmp(&rb).expect("finite ratios")
    });
    let (fresh_ns, session_ns) = rounds[rounds.len() / 2];
    Ok(SpinupMeasure {
        fresh_ns,
        session_ns,
        rounds: repeats.max(1),
    })
}

/// The paired-median ITLB pre-seeding comparison over `repeats` rounds:
/// each round times one workload's first call on a freshly spawned cold
/// session, then on a freshly spawned pre-seeded session, and the round
/// with the median wall-clock ratio is reported. Results are asserted
/// identical — pre-seeding may only move cold-start lookup costs.
///
/// # Errors
///
/// Propagates compile and boot errors.
///
/// # Panics
///
/// Panics if either path fails the workload's self-check.
pub fn measure_preseed(repeats: u32) -> Result<PreseedMeasure, VmError> {
    let w = workloads::CALLS;
    let cold_vm = Vm::builder().source(w.source).build()?;
    let seeded_vm = Vm::builder().source(w.source).preseed_itlb(true).build()?;
    let keys = seeded_vm
        .facts()
        .map(|f| f.preseed_keys().len())
        .unwrap_or(0);
    let first_call = |vm: &Vm| -> Result<(u64, u64), VmError> {
        let mut s = vm.session()?;
        let t0 = Instant::now();
        let out = workloads::run_on(&w, &mut s, workloads::MAX_STEPS)?;
        let ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(
            out.result,
            Word::Int(w.expected),
            "{} failed its self-check",
            w.name
        );
        Ok((ns, out.stats.full_lookups))
    };
    // Warm both paths once (lazy analysis, allocator).
    first_call(&cold_vm)?;
    first_call(&seeded_vm)?;
    let mut rounds: Vec<((u64, u64), (u64, u64))> = Vec::new();
    for _ in 0..repeats.max(1) {
        let cold = first_call(&cold_vm)?;
        let seeded = first_call(&seeded_vm)?;
        rounds.push((cold, seeded));
    }
    rounds.sort_by(|a, b| {
        let ra = a.0 .0 as f64 / a.1 .0.max(1) as f64;
        let rb = b.0 .0 as f64 / b.1 .0.max(1) as f64;
        ra.partial_cmp(&rb).expect("finite ratios")
    });
    let ((cold_ns, cold_lookups), (seeded_ns, seeded_lookups)) = rounds[rounds.len() / 2];
    Ok(PreseedMeasure {
        keys,
        cold_full_lookups: cold_lookups,
        preseeded_full_lookups: seeded_lookups,
        cold_first_call_ns: cold_ns,
        preseeded_first_call_ns: seeded_ns,
        rounds: repeats.max(1),
    })
}

/// Runs `sessions` tenants sequentially, then the same tenants under the
/// round-robin scheduler, asserting bit-identical results and statistics.
///
/// # Errors
///
/// Propagates machine errors.
///
/// # Panics
///
/// Panics if a workload fails its self-check or a tenant never finishes.
pub fn measure_roundrobin(sessions: usize) -> Result<(Vec<TenantRow>, u64), VmError> {
    let picks = tenant_workloads();
    let vms: Vec<Vm> = picks
        .iter()
        .map(|w| workloads::vm_for(w, MachineConfig::default(), CompileOptions::default()))
        .collect();
    let tenant_vm = |i: usize| &vms[i % picks.len()];
    let tenant_w = |i: usize| &picks[i % picks.len()];

    // Sequential baselines.
    let mut baseline: Vec<(Word, CycleStats)> = Vec::new();
    for i in 0..sessions {
        let w = tenant_w(i);
        let mut s: Session = tenant_vm(i).session()?;
        let out: RunResult = workloads::run_on(w, &mut s, workloads::MAX_STEPS)?;
        assert_eq!(
            out.result,
            Word::Int(w.expected),
            "{} failed its self-check sequentially",
            w.name
        );
        baseline.push((out.result, out.stats));
    }

    // Interleaved run.
    let mut sched = Scheduler::new(SLICE_STEPS);
    let mut ids = Vec::new();
    for i in 0..sessions {
        let mut s = tenant_vm(i).session()?;
        workloads::start_on(tenant_w(i), &mut s)?;
        ids.push(sched.spawn(s)?);
    }
    sched.run();

    let mut rows = Vec::new();
    for (i, id) in ids.iter().enumerate() {
        let run = sched
            .session(*id)
            .and_then(Session::last_run)
            .unwrap_or_else(|| panic!("tenant {i} never finished"))
            .clone();
        rows.push(TenantRow {
            tenant: i,
            workload: tenant_w(i).name,
            result: run.result,
            instructions: run.stats.instructions,
            slices: sched.slices(*id),
            matches_sequential: run.result == baseline[i].0 && run.stats == baseline[i].1,
        });
    }
    Ok((rows, sched.rounds()))
}

/// Runs the whole pipeline.
///
/// # Errors
///
/// Propagates machine errors.
pub fn report(sessions: usize, repeats: u32) -> Result<SessionsReport, VmError> {
    let spinup = measure_spinup(repeats)?;
    let preseed = measure_preseed(repeats)?;
    let (tenants, rounds) = measure_roundrobin(sessions)?;
    Ok(SessionsReport {
        spinup,
        preseed,
        sessions,
        tenants,
        rounds,
    })
}

/// Renders the report as the machine-readable `BENCH_sessions.json`.
pub fn report_to_json(r: &SessionsReport) -> String {
    fn num(x: f64) -> String {
        if x.is_finite() {
            format!("{x:.3}")
        } else {
            "null".to_string()
        }
    }
    let mut s = String::new();
    s.push_str("{\n  \"bench\": \"sessions\",\n  \"schema\": 1,\n");
    s.push_str(&format!(
        "  \"protocol\": {{\"sessions\": {}, \"slice_steps\": {}, \"workloads\": [{}], \"paired_rounds\": {}, \"spawns_per_round\": {}}},\n",
        r.sessions,
        SLICE_STEPS,
        tenant_workloads()
            .iter()
            .map(|w| format!("\"{}\"", w.name))
            .collect::<Vec<_>>()
            .join(", "),
        r.spinup.rounds,
        SPAWNS_PER_ROUND,
    ));
    s.push_str("  \"unit\": {\"spinup_speedup\": \"fresh compile+load wall-ns over per-session shared-image session() wall-ns (mean of a spawns_per_round batch), median paired round\"},\n");
    s.push_str(&format!(
        "  \"spinup\": {{\"fresh_ns\": {}, \"session_ns\": {}, \"speedup\": {}, \"target_10x_met\": {}}},\n",
        r.spinup.fresh_ns,
        r.spinup.session_ns,
        num(r.spinup.speedup()),
        r.spinup.speedup() >= 10.0,
    ));
    s.push_str(&format!(
        "  \"preseed\": {{\"keys\": {}, \"cold_full_lookups\": {}, \"preseeded_full_lookups\": {}, \"lookups_avoided\": {}, \"cold_first_call_ns\": {}, \"preseeded_first_call_ns\": {}, \"note\": \"wall-clock delta is host-limited; lookups_avoided is the deterministic signal\"}},\n",
        r.preseed.keys,
        r.preseed.cold_full_lookups,
        r.preseed.preseeded_full_lookups,
        r.preseed.lookups_avoided(),
        r.preseed.cold_first_call_ns,
        r.preseed.preseeded_first_call_ns,
    ));
    s.push_str("  \"roundrobin\": {\n");
    s.push_str(&format!(
        "    \"rounds\": {},\n    \"tenants\": [\n",
        r.rounds
    ));
    for (i, t) in r.tenants.iter().enumerate() {
        s.push_str(&format!(
            "      {{\"tenant\": {}, \"workload\": \"{}\", \"result\": \"{}\", \"instructions\": {}, \"slices\": {}, \"matches_sequential\": {}}}{}",
            t.tenant,
            t.workload,
            t.result,
            t.instructions,
            t.slices,
            t.matches_sequential,
            if i + 1 < r.tenants.len() { ",\n" } else { "\n" },
        ));
    }
    s.push_str("    ]\n  },\n");
    s.push_str(&format!(
        "  \"summary\": {{\"spinup_speedup\": {}, \"target_10x_met\": {}, \"roundrobin_matches\": {}, \"preseed_lookups_avoided\": {}}}\n}}\n",
        num(r.spinup.speedup()),
        r.spinup.speedup() >= 10.0,
        r.all_match(),
        r.preseed.lookups_avoided(),
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundrobin_four_tenants_matches_sequential() {
        let (rows, rounds) = measure_roundrobin(4).unwrap();
        assert_eq!(rows.len(), 4);
        assert!(rounds > 1, "workloads must outlast one slice");
        for row in &rows {
            assert!(row.matches_sequential, "{} diverged", row.workload);
        }
    }

    #[test]
    fn preseed_eliminates_first_touch_lookups_without_changing_results() {
        let m = measure_preseed(1).unwrap();
        assert!(m.keys > 0, "analysis must yield monomorphic sites");
        assert!(
            m.preseeded_full_lookups < m.cold_full_lookups,
            "pre-seeding must avoid lookups ({} vs {})",
            m.preseeded_full_lookups,
            m.cold_full_lookups
        );
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let r = SessionsReport {
            spinup: SpinupMeasure {
                fresh_ns: 1_000_000,
                session_ns: 10_000,
                rounds: 3,
            },
            preseed: PreseedMeasure {
                keys: 200,
                cold_full_lookups: 50,
                preseeded_full_lookups: 10,
                cold_first_call_ns: 2_000,
                preseeded_first_call_ns: 1_500,
                rounds: 3,
            },
            sessions: 2,
            tenants: vec![TenantRow {
                tenant: 0,
                workload: "calls",
                result: Word::Int(610),
                instructions: 1234,
                slices: 5,
                matches_sequential: true,
            }],
            rounds: 6,
        };
        let j = report_to_json(&r);
        assert!(j.contains("\"speedup\": 100.000"));
        assert!(j.contains("\"target_10x_met\": true"));
        assert!(j.contains("\"roundrobin_matches\": true"));
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }
}
