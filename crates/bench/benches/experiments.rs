//! Criterion benchmarks: miniature versions of each experiment plus
//! component microbenchmarks. The full tables/figures come from the
//! `src/bin/*` harnesses; these benches track the simulator's own speed
//! and guard the experiment plumbing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use com_cache::{CacheConfig, SetAssocCache};
use com_core::MachineConfig;
use com_fpa::{Fpa, FpaFormat, NameAllocator};
use com_mem::{AllocKind, ClassId, ObjectSpace, TeamId, Word};
use com_obj::{install_standard_primitives, lookup_method, ClassTable};
use com_trace::replay_keys;
use com_workloads as workloads;

fn bench_fpa(c: &mut Criterion) {
    c.bench_function("fpa/decode_segment_offset", |b| {
        let fmt = FpaFormat::COM;
        let addrs: Vec<Fpa> = (0..1024u64)
            .map(|i| Fpa::from_raw((i * 2654435761) & fmt.max_raw(), fmt).unwrap())
            .collect();
        b.iter(|| {
            let mut acc = 0u64;
            for a in &addrs {
                acc = acc.wrapping_add(a.offset()) ^ a.segment().index();
            }
            std::hint::black_box(acc)
        })
    });
    c.bench_function("fpa/name_allocation", |b| {
        b.iter_batched(
            || NameAllocator::new(FpaFormat::COM),
            |mut alloc| {
                for words in 1..256u64 {
                    std::hint::black_box(alloc.alloc_for_size(words).unwrap());
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache/itlb_replay_512x2", |b| {
        let keys: Vec<(u16, u16)> = (0..4096u32)
            .map(|i| ((i % 97) as u16, (i % 13) as u16))
            .collect();
        b.iter(|| {
            let cfg = CacheConfig::new(512, 2).unwrap();
            std::hint::black_box(replay_keys(cfg, keys.iter().copied(), 512).unwrap())
        })
    });
    c.bench_function("cache/lookup_fill", |b| {
        b.iter_batched(
            || SetAssocCache::<u64, u64>::new(CacheConfig::new(1024, 4).unwrap()),
            |mut cache| {
                for k in 0..2048u64 {
                    if cache.lookup(&(k % 1400)).is_none() {
                        cache.fill(k % 1400, k);
                    }
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_lookup(c: &mut Criterion) {
    c.bench_function("obj/full_method_lookup", |b| {
        let mut t = ClassTable::new();
        install_standard_primitives(&mut t);
        let mut leaf = ClassTable::OBJECT;
        for i in 0..6 {
            leaf = t.define(&format!("C{i}"), Some(leaf), 0).unwrap();
        }
        b.iter(|| {
            // Worst case: selector found only at the root.
            std::hint::black_box(lookup_method(&t, leaf, com_isa::Opcode::SAME))
        })
    });
}

fn bench_memory(c: &mut Criterion) {
    c.bench_function("mem/create_write_read_free", |b| {
        b.iter_batched(
            || ObjectSpace::new(22, FpaFormat::COM),
            |mut s| {
                let team = TeamId(0);
                for i in 0..64u64 {
                    let obj = s.create(team, ClassId(9), 8, AllocKind::Object).unwrap();
                    s.write(team, obj.with_offset(i % 8).unwrap(), Word::Int(i as i64))
                        .unwrap();
                    std::hint::black_box(s.read(team, obj.with_offset(i % 8).unwrap()).unwrap());
                    s.free(team, obj, AllocKind::Object).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_machines(c: &mut Criterion) {
    // Simulator throughput on the call-dense workload (small size so each
    // iteration stays in the tens of milliseconds).
    let small_fib = workloads::Workload {
        size: 10,
        expected: 55,
        ..workloads::CALLS
    };
    c.bench_function("com/fib10", |b| {
        b.iter(|| {
            let (out, _) =
                workloads::run_com(&small_fib, MachineConfig::default(), workloads::MAX_STEPS)
                    .unwrap();
            assert_eq!(out.result, Word::Int(55));
        })
    });
    c.bench_function("fith/fib10", |b| {
        b.iter(|| {
            let (out, _) = workloads::run_fith(&small_fib, workloads::MAX_STEPS).unwrap();
            assert_eq!(out.result, Word::Int(55));
        })
    });
    c.bench_function("com/fib10_no_itlb", |b| {
        b.iter(|| {
            let (out, _) = workloads::run_com(
                &small_fib,
                MachineConfig::default().without_itlb(),
                workloads::MAX_STEPS,
            )
            .unwrap();
            assert_eq!(out.result, Word::Int(55));
        })
    });
}

fn bench_compiler(c: &mut Criterion) {
    c.bench_function("stc/compile_stdlib_plus_sort", |b| {
        b.iter(|| {
            std::hint::black_box(
                com_stc::compile_com(workloads::SORT.source, com_stc::CompileOptions::default())
                    .unwrap(),
            )
        })
    });
}

criterion_group!(
    benches,
    bench_fpa,
    bench_cache,
    bench_lookup,
    bench_memory,
    bench_machines,
    bench_compiler
);
criterion_main!(benches);
